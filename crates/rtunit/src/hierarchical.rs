//! Hierarchical (BVH-filtered) neighbour search: the workload shape that motivates the extended
//! RT unit (paper §V-A).
//!
//! The RT-accelerated search systems the paper cites (RTNN, RT-kNNS, Arkade, RT-DBSCAN, …)
//! represent the dataset as tiny spheres grouped into a BVH and express a query as a short ray:
//! the fixed-function traversal hardware filters the dataset down to the few leaves whose bounds
//! the query can possibly reach, and the candidate points surviving the filter are then scored
//! exactly.  With the extended datapath the exact scoring also runs on the RT unit (Euclidean
//! distance operation) instead of being bounced back to the shader core — that is precisely the
//! functionality whose area/power cost the paper's case study evaluates.
//!
//! [`HierarchicalSearch`] reproduces that pipeline on top of this crate's substrates: a [`Bvh4`]
//! over the dataset spheres, ray–box beats for the hierarchy filter, and Euclidean beats for the
//! exact scoring — so a radius query issues *only* datapath operations.  **Both** phases run
//! through the generic batched query engine: the hierarchy filter is the
//! [`QueryKind::Collect`] state machine (one item per radius query, bulk ray–box passes shared
//! across a whole query batch — no scalar per-beat datapath calls), and the exact scoring is one
//! batched distance run per query.  [`CollectStream`] additionally packages the filter for
//! *fused* scheduling, so candidate collection can share passes with traversal and distance
//! streams of unrelated workloads.

use rayflex_core::{Opcode, PipelineConfig, RayFlexDatapath, RayFlexRequest, RayFlexResponse};
use rayflex_geometry::{Ray, Sphere, Vec3};

use crate::error::{PartialResult, QueryError, QueryOutcome};
use crate::policy::{ExecMode, ExecPolicy};
use crate::query::{BatchQuery, FusedScheduler, QueryKind, StreamRunner, WavefrontScheduler};
use crate::{Bvh4, Bvh4Node, KnnEngine, Neighbor};

/// Statistics of one hierarchical query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchicalStats {
    /// Ray–box beats issued while filtering the hierarchy.
    pub box_beats: u64,
    /// Euclidean beats issued while scoring the surviving candidates.
    pub euclidean_beats: u64,
    /// Candidate points that survived the hierarchy filter and were scored exactly.
    pub candidates_scored: u64,
    /// Dataset points in total (for filter-efficiency reporting).
    pub dataset_size: u64,
}

impl HierarchicalStats {
    /// Fraction of the dataset that had to be scored exactly (lower is better filtering).
    #[must_use]
    pub fn scored_fraction(&self) -> f64 {
        if self.dataset_size == 0 {
            0.0
        } else {
            self.candidates_scored as f64 / self.dataset_size as f64
        }
    }

    /// Accumulates another query's counters into this one (`dataset_size` is a property of the
    /// search structure, not a counter, and is left untouched).  Same merge semantics as
    /// [`TraversalStats::merge`](crate::TraversalStats::merge): plain `u64` sums, order-free.
    pub fn merge(&mut self, other: &HierarchicalStats) {
        self.box_beats += other.box_beats;
        self.euclidean_beats += other.euclidean_beats;
        self.candidates_scored += other.candidates_scored;
    }

    /// [`HierarchicalStats::merge`] as a value-returning combinator, for fold-style reductions.
    /// Marked `#[must_use]` because dropping the result silently discards the merge.
    #[must_use]
    pub fn merged(mut self, other: &HierarchicalStats) -> Self {
        self.merge(other);
        self
    }
}

/// Per-query state of a batched candidate-collection run: the filter ray, the inflation radius,
/// the traversal stack and the candidates collected so far.  Pooled by the scheduler.
#[derive(Debug, Default)]
pub struct CollectWork {
    ray: Option<Ray>,
    radius: f32,
    stack: Vec<usize>,
    found: Vec<usize>,
}

/// BVH candidate collection as a batched query ([`QueryKind::Collect`]): one item per radius
/// query, each walking the sphere hierarchy with ray–box beats (the paper's
/// query-as-a-short-ray formulation) and gathering every point whose leaf the query reaches.
///
/// The per-query walk order is exactly the old scalar filter's — nodes pop LIFO, hit children
/// push in slot order — so the collected candidate lists are identical; only the dispatch
/// changes, from one `execute` call per beat to bulk passes shared by every query in the batch
/// (and, under a fused run, by unrelated query kinds).
#[derive(Debug)]
struct CollectQuery<'a> {
    bvh: &'a Bvh4,
    queries: &'a [(Vec3, f32)],
    box_beats: u64,
}

impl<'a> CollectQuery<'a> {
    fn new(bvh: &'a Bvh4, queries: &'a [(Vec3, f32)]) -> Self {
        CollectQuery {
            bvh,
            queries,
            box_beats: 0,
        }
    }
}

impl BatchQuery for CollectQuery<'_> {
    type State = CollectWork;
    type Output = Vec<usize>;

    fn kind(&self) -> QueryKind {
        QueryKind::Collect
    }

    fn items(&self) -> usize {
        self.queries.len()
    }

    fn reset(&mut self, item: usize, state: &mut CollectWork) {
        let (query, radius) = self.queries[item];
        // A short ray through the query point along +x with extent [0, 2r], starting at
        // query - (r, 0, 0): exactly the formulation RTNN-style systems use.  Inflating the
        // child bounds by the radius makes the box test conservative in y/z as well.
        state.ray = Some(Ray::with_extent(
            query - Vec3::new(radius, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            2.0 * radius,
        ));
        state.radius = radius;
        state.stack.clear();
        state.stack.push(self.bvh.root());
        state.found.clear();
    }

    fn build(
        &mut self,
        item: usize,
        state: &mut CollectWork,
        out: &mut Vec<RayFlexRequest>,
    ) -> bool {
        let _ = item;
        while let Some(node) = state.stack.pop() {
            match self.bvh.node(node) {
                Bvh4Node::Leaf { .. } => state.found.extend(self.bvh.leaf_primitives(node)),
                Bvh4Node::Internal {
                    children,
                    child_bounds,
                } => {
                    self.box_beats += 1;
                    let radius = state.radius;
                    // Absent slots already hold the never-hit point box at +MAX (padded at BVH
                    // build time); only occupied slots are inflated by the query radius.
                    let boxes = core::array::from_fn(|i| {
                        if children[i].is_none() {
                            child_bounds[i]
                        } else {
                            child_bounds[i].inflated(radius)
                        }
                    });
                    let Some(ray) = state.ray.as_ref() else {
                        unreachable!("reset built the filter ray");
                    };
                    out.push(RayFlexRequest::ray_box(node as u64, ray, &boxes));
                    return true;
                }
            }
        }
        false
    }

    fn apply(&mut self, _item: usize, state: &mut CollectWork, response: &RayFlexResponse) {
        let Some(result) = response.box_result else {
            unreachable!("a collect beat always carries a box result");
        };
        let Bvh4Node::Internal { children, .. } = self.bvh.node(response.tag as usize) else {
            unreachable!("box beats only test internal nodes");
        };
        for (slot, child) in children.iter().enumerate() {
            if result.hit[slot] {
                if let Some(child) = child {
                    state.stack.push(*child);
                }
            }
        }
    }

    fn finish(&mut self, _item: usize, state: &mut CollectWork) -> Vec<usize> {
        core::mem::take(&mut state.found)
    }
}

/// A candidate-collection stream packaged for **fused** scheduling: BVH filtering of a batch of
/// `(query point, radius)` pairs, runnable side by side with traversal and distance streams in
/// the shared passes of a [`FusedScheduler`](crate::FusedScheduler).
///
/// Per-query candidate lists are identical to [`HierarchicalSearch::radius_query`]'s filter
/// phase over the same sphere hierarchy.
#[derive(Debug)]
pub struct CollectStream<'a> {
    runner: StreamRunner<CollectQuery<'a>>,
}

impl<'a> CollectStream<'a> {
    /// A collection stream of `queries` against a sphere hierarchy.
    #[must_use]
    pub fn new(bvh: &'a Bvh4, queries: &'a [(Vec3, f32)]) -> Self {
        CollectStream {
            runner: StreamRunner::new(CollectQuery::new(bvh, queries)),
        }
    }

    /// One candidate-index list per query (in query order) plus the ray–box beats the filter
    /// issued, after a fused run completed.
    ///
    /// # Panics
    ///
    /// Panics if the stream was never run to completion.
    #[must_use]
    pub fn finish(self) -> (Vec<Vec<usize>>, u64) {
        let (query, candidates) = self.runner.finish();
        (candidates, query.box_beats)
    }
}

crate::query::delegate_fused_stream_to_runner!(CollectStream<'_>);

/// A radius / nearest-neighbour search engine over 3-D points, implemented entirely with
/// datapath beats: BVH filtering through the ray–box operation and exact scoring through the
/// Euclidean-distance operation of the extended datapath.
#[derive(Debug)]
pub struct HierarchicalSearch {
    points: Vec<Vec3>,
    spheres: Vec<Sphere>,
    bvh: Bvh4,
    scorer: KnnEngine,
    /// Scheduler of the candidate-collection query kind (its `CollectWork` pool is recycled
    /// across queries).
    collector: WavefrontScheduler<CollectWork>,
    stats: HierarchicalStats,
    /// Work-stealing pool counters of the parallel filter phase (the scoring phase's counters
    /// live on the embedded [`KnnEngine`]; [`HierarchicalSearch::pool_stats`] merges both).
    pool: crate::parallel::PoolStats,
}

impl HierarchicalSearch {
    /// Builds the search structure over a set of 3-D points, representing each point as a sphere
    /// of radius `point_radius` (the small epsilon the RT-accelerated search systems use).
    ///
    /// # Panics
    ///
    /// Panics if the datapath configuration does not support the Euclidean operation or if
    /// `point_radius` is negative.
    #[must_use]
    pub fn build(points: Vec<Vec3>, point_radius: f32, config: PipelineConfig) -> Self {
        assert!(
            config.supports(Opcode::Euclidean),
            "hierarchical search scores candidates with the extended datapath"
        );
        let spheres: Vec<Sphere> = points
            .iter()
            .map(|&p| Sphere::new(p, point_radius))
            .collect();
        let bvh = Bvh4::build(&spheres);
        let dataset_size = points.len() as u64;
        HierarchicalSearch {
            points,
            spheres,
            bvh,
            scorer: KnnEngine::with_config(config),
            collector: WavefrontScheduler::new(),
            stats: HierarchicalStats {
                dataset_size,
                ..HierarchicalStats::default()
            },
            pool: crate::parallel::PoolStats::default(),
        }
    }

    /// Builds the search structure over the **world-space triangle centroids** of a
    /// [`Scene`](crate::Scene) — the scene-boundary constructor.  Instanced scenes contribute
    /// one centroid per *placed* triangle ([`Scene::centroids`](crate::Scene::centroids)), so a
    /// scene and its [`Scene::flatten`](crate::Scene::flatten)ed form build identical search
    /// structures and answer every query identically.
    ///
    /// # Panics
    ///
    /// As [`HierarchicalSearch::build`].
    #[must_use]
    pub fn from_scene(scene: &crate::Scene, point_radius: f32, config: PipelineConfig) -> Self {
        Self::build(scene.centroids(), point_radius, config)
    }

    /// The dataset points.
    #[must_use]
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// The accumulated statistics across every query so far.
    #[must_use]
    pub fn stats(&self) -> HierarchicalStats {
        self.stats
    }

    /// Work-stealing pool counters accumulated across every parallel run (filter-phase shards
    /// plus the embedded scorer's parallel scoring runs).  Scheduling artefacts — **not**
    /// mode-invariant, unlike [`HierarchicalSearch::stats`].
    #[must_use]
    pub fn pool_stats(&self) -> crate::parallel::PoolStats {
        let mut merged = self.pool;
        merged.merge(&self.scorer.pool_stats());
        merged
    }

    /// Minimum radius queries a parallel filter shard must carry before an extra worker pays
    /// for itself (one query's hierarchy walk is a handful of passes).
    const MIN_QUERIES_PER_SHARD: usize = 8;

    /// Returns every dataset point within `radius` of `query` (squared-Euclidean scored on the
    /// datapath), sorted from nearest to farthest — a one-query
    /// [`HierarchicalSearch::radius_queries`] batch.
    pub fn radius_query(&mut self, query: Vec3, radius: f32, policy: &ExecPolicy) -> Vec<Neighbor> {
        self.radius_queries(&[(query, radius)], policy)
            .pop()
            .unwrap_or_default()
    }

    /// Runs a whole batch of radius queries, returning one sorted neighbour list per query —
    /// **the** radius/collect entry point, dispatched by the execution policy.
    ///
    /// Both phases honour the policy: the hierarchy filter is one [`QueryKind::Collect`] run —
    /// per-beat emulated (scalar reference), bulk wavefront/fused passes shared by every query
    /// of the batch, or sharded across workers (parallel) — and the surviving candidates are
    /// scored through [`KnnEngine::distances`] under the same policy.  Neighbour lists and
    /// [`HierarchicalStats`] are bit-identical across every [`ExecMode`] (pinned by
    /// `rtunit/tests/proptest_policy.rs`).
    pub fn radius_queries(
        &mut self,
        queries: &[(Vec3, f32)],
        policy: &ExecPolicy,
    ) -> Vec<Vec<Neighbor>> {
        let per_query_candidates = self.filter_candidates_batch(queries, policy);
        queries
            .iter()
            .zip(per_query_candidates)
            .map(|(&(query, radius), candidates)| {
                let radius_sq = radius * radius;
                let mut results = self.score_candidates(query, &candidates, policy);
                results.retain(|n| n.distance <= radius_sq);
                results.sort_by(|a, b| {
                    a.distance
                        .partial_cmp(&b.distance)
                        .unwrap_or(core::cmp::Ordering::Equal)
                        .then(a.index.cmp(&b.index))
                });
                results
            })
            .collect()
    }

    /// Returns the nearest dataset point to `query`, searching with an expanding radius (each
    /// round doubles the radius until a neighbour is found), or `None` for an empty dataset.
    pub fn nearest(
        &mut self,
        query: Vec3,
        initial_radius: f32,
        policy: &ExecPolicy,
    ) -> Option<Neighbor> {
        if self.points.is_empty() {
            return None;
        }
        let mut radius = initial_radius.max(f32::EPSILON);
        let scene = self.bvh.scene_bounds();
        let scene_diagonal = (scene.max - scene.min).length().max(1.0);
        loop {
            if let Some(&nearest) = self.radius_query(query, radius, policy).first() {
                return Some(nearest);
            }
            if radius > 2.0 * scene_diagonal {
                // The query is farther from every point than the whole scene extent; fall back to
                // scoring everything once.
                let all: Vec<usize> = (0..self.points.len()).collect();
                return self.score_exactly(query, &all, policy).into_iter().next();
            }
            radius *= 2.0;
        }
    }

    /// Runs one radius query with up-front validation and deadline-aware cancellation — the
    /// `Result`-returning variant of [`HierarchicalSearch::radius_query`].
    ///
    /// A single query either completes within the deadline (its neighbour list bit-identical
    /// to the plain entry point's) or surfaces a typed error; there is no meaningful partial
    /// prefix of one query.  A radius of `0.0` is valid and returns only exact matches.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidRequest`], [`QueryError::DeadlineExceeded`] or
    /// [`QueryError::BudgetExhausted`].
    pub fn try_radius_query(
        &mut self,
        query: Vec3,
        radius: f32,
        policy: &ExecPolicy,
    ) -> Result<Vec<Neighbor>, QueryError> {
        match self.try_radius_queries(&[(query, radius)], policy)? {
            QueryOutcome::Complete(mut lists) => Ok(lists.pop().unwrap_or_default()),
            QueryOutcome::Partial(partial) => Err(QueryError::DeadlineExceeded {
                beats_spent: partial.beats_spent,
                max_total_beats: policy.max_total_beats,
            }),
        }
    }

    /// Runs a batch of radius queries with up-front validation and deadline-aware
    /// cancellation — the `Result`-returning variant of [`HierarchicalSearch::radius_queries`].
    ///
    /// Non-finite query points and non-finite or negative radii surface as
    /// [`QueryError::InvalidRequest`] before any beat is issued.  With
    /// [`ExecPolicy::max_total_beats`] set, the budget spans **both phases** — the hierarchy
    /// filter and the exact scoring — and a fired deadline yields the completed query
    /// **prefix** as [`QueryOutcome::Partial`]: a query appears only when its filter *and* its
    /// scoring finished, with a neighbour list bit-identical to the uncapped run's.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidRequest`], or [`QueryError::BudgetExhausted`] when not even one
    /// query completed within the deadline.
    pub fn try_radius_queries(
        &mut self,
        queries: &[(Vec3, f32)],
        policy: &ExecPolicy,
    ) -> Result<QueryOutcome<Vec<Vec<Neighbor>>>, QueryError> {
        validate_radius_queries(queries)?;
        if policy.max_total_beats == 0 {
            return Ok(QueryOutcome::Complete(self.radius_queries(queries, policy)));
        }
        self.radius_queries_capped(queries, policy)
    }

    /// Finds the nearest dataset point with up-front validation and deadline-aware
    /// cancellation — the `Result`-returning variant of [`HierarchicalSearch::nearest`].
    ///
    /// The nearest neighbour is a **global reduction**, so a deadline that fires mid-search
    /// surfaces as [`QueryError::DeadlineExceeded`] rather than a possibly wrong neighbour.
    /// The budget spans every expanding-radius round, including the brute-force fallback for
    /// far-away queries.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidRequest`] or [`QueryError::DeadlineExceeded`].
    pub fn try_nearest(
        &mut self,
        query: Vec3,
        initial_radius: f32,
        policy: &ExecPolicy,
    ) -> Result<Option<Neighbor>, QueryError> {
        if !query.is_finite() {
            return Err(QueryError::InvalidRequest {
                reason: "nearest-neighbour query point has a non-finite component".to_owned(),
            });
        }
        if !initial_radius.is_finite() || initial_radius < 0.0 {
            return Err(QueryError::InvalidRequest {
                reason: format!("initial radius {initial_radius} must be finite and non-negative"),
            });
        }
        let cap = policy.max_total_beats;
        if cap == 0 {
            return Ok(self.nearest(query, initial_radius, policy));
        }
        if self.points.is_empty() {
            return Ok(None);
        }
        let mut beats_spent = 0u64;
        let mut radius = initial_radius.max(f32::EPSILON);
        let scene = self.bvh.scene_bounds();
        let scene_diagonal = (scene.max - scene.min).length().max(1.0);
        loop {
            let remaining = cap.saturating_sub(beats_spent);
            if remaining == 0 {
                return Err(QueryError::DeadlineExceeded {
                    beats_spent,
                    max_total_beats: cap,
                });
            }
            let before = self.stats;
            let round = self
                .radius_queries_capped(&[(query, radius)], &policy.with_max_total_beats(remaining));
            beats_spent += (self.stats.box_beats + self.stats.euclidean_beats)
                - (before.box_beats + before.euclidean_beats);
            match round {
                Ok(QueryOutcome::Complete(lists)) => {
                    if let Some(&nearest) = lists.first().and_then(|list| list.first()) {
                        return Ok(Some(nearest));
                    }
                }
                // The round itself crossed the line: no later round can be cheaper.
                Ok(QueryOutcome::Partial(_)) | Err(QueryError::BudgetExhausted { .. }) => {
                    return Err(QueryError::DeadlineExceeded {
                        beats_spent,
                        max_total_beats: cap,
                    });
                }
                Err(other) => return Err(other),
            }
            if radius > 2.0 * scene_diagonal {
                // Farther than the whole scene extent: score everything once, under whatever
                // budget is left.
                let remaining = cap.saturating_sub(beats_spent);
                let all: Vec<usize> = (0..self.points.len()).collect();
                let before = self.scorer.stats().beats;
                let scored = if remaining == 0 {
                    None
                } else {
                    self.score_candidates_capped(query, &all, policy, remaining)
                };
                beats_spent += self.scorer.stats().beats - before;
                let Some(mut results) = scored else {
                    return Err(QueryError::DeadlineExceeded {
                        beats_spent,
                        max_total_beats: cap,
                    });
                };
                results.sort_by(|a, b| {
                    a.distance
                        .partial_cmp(&b.distance)
                        .unwrap_or(core::cmp::Ordering::Equal)
                        .then(a.index.cmp(&b.index))
                });
                return Ok(results.into_iter().next());
            }
            radius *= 2.0;
        }
    }

    /// The deadline-capped backend of [`HierarchicalSearch::try_radius_queries`]: a capped
    /// filter run, then per-query capped scoring against the remaining budget.
    fn radius_queries_capped(
        &mut self,
        queries: &[(Vec3, f32)],
        policy: &ExecPolicy,
    ) -> Result<QueryOutcome<Vec<Vec<Neighbor>>>, QueryError> {
        let cap = policy.max_total_beats;
        let (candidates, filter_beats, filter_complete) =
            self.filter_candidates_capped(queries, policy, cap);
        let mut beats_spent = filter_beats;
        let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(candidates.len());
        let mut complete = filter_complete;
        for (&(query, radius), candidates) in queries.iter().zip(&candidates) {
            let remaining = cap.saturating_sub(beats_spent);
            let before = self.scorer.stats().beats;
            let scored = if remaining == 0 {
                None
            } else {
                self.score_candidates_capped(query, candidates, policy, remaining)
            };
            beats_spent += self.scorer.stats().beats - before;
            let Some(mut neighbors) = scored else {
                complete = false;
                break;
            };
            let radius_sq = radius * radius;
            neighbors.retain(|n| n.distance <= radius_sq);
            neighbors.sort_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .unwrap_or(core::cmp::Ordering::Equal)
                    .then(a.index.cmp(&b.index))
            });
            results.push(neighbors);
        }
        if complete && results.len() == queries.len() {
            return Ok(QueryOutcome::Complete(results));
        }
        if results.is_empty() {
            return Err(QueryError::BudgetExhausted {
                max_total_beats: cap,
            });
        }
        let completed = results.len();
        Ok(QueryOutcome::Partial(PartialResult {
            output: results,
            completed,
            total: queries.len(),
            beats_spent,
            progress: self.scorer.beat_mix(),
        }))
    }

    /// The deadline-capped sibling of the filter phase: the same per-mode dispatch disciplines
    /// as [`HierarchicalSearch::filter_candidates_batch`], cancelled cooperatively at pass
    /// boundaries.  Returns the per-query candidate lists of the completed prefix, the beats
    /// spent, and whether every query's walk finished.  Capped runs filter inline on the
    /// scorer's datapath in every mode — cooperative cancellation is a single-unit admission
    /// discipline, so [`ExecMode::Parallel`] does not shard under a deadline.
    fn filter_candidates_capped(
        &mut self,
        queries: &[(Vec3, f32)],
        policy: &ExecPolicy,
        cap: u64,
    ) -> (Vec<Vec<usize>>, u64, bool) {
        match policy.mode {
            ExecMode::Wavefront | ExecMode::Parallel { .. } => {
                let mut collect = CollectQuery::new(&self.bvh, queries);
                let run = self
                    .collector
                    .run_capped(self.scorer.datapath_mut(), &mut collect, cap);
                self.stats.box_beats += collect.box_beats;
                (run.outputs, run.beats, run.complete)
            }
            ExecMode::ScalarReference | ExecMode::Fused => {
                let mut runner = StreamRunner::new(CollectQuery::new(&self.bvh, queries));
                let mut fused =
                    FusedScheduler::new().with_beat_budget(if policy.mode == ExecMode::Fused {
                        policy.beat_budget_per_stream
                    } else {
                        0
                    });
                fused.set_admission_order(policy.admission_order);
                let run = if policy.mode == ExecMode::ScalarReference {
                    fused.run_reference_capped(self.scorer.datapath_mut(), &mut [&mut runner], cap)
                } else {
                    fused.run_capped(self.scorer.datapath_mut(), &mut [&mut runner], cap)
                };
                let (collect, outputs, _total) = runner.finish_partial();
                self.stats.box_beats += collect.box_beats;
                (outputs, run.beats, run.complete)
            }
        }
    }

    /// The deadline-capped sibling of [`HierarchicalSearch::score_candidates`]: `None` when
    /// the scoring run could not complete within `remaining` beats (a partially-scored query
    /// has no meaningful neighbour list).
    fn score_candidates_capped(
        &mut self,
        query: Vec3,
        candidates: &[usize],
        policy: &ExecPolicy,
        remaining: u64,
    ) -> Option<Vec<Neighbor>> {
        let query_vec = [query.x, query.y, query.z];
        let points: Vec<[f32; 3]> = candidates
            .iter()
            .map(|&index| {
                let p = self.points[index];
                [p.x, p.y, p.z]
            })
            .collect();
        let beats_before = self.scorer.stats().beats;
        let outcome = self.scorer.distances_capped(
            &query_vec,
            &points,
            crate::KnnMetric::Euclidean,
            &policy.with_max_total_beats(remaining),
        );
        self.stats.euclidean_beats += self.scorer.stats().beats - beats_before;
        let Ok(QueryOutcome::Complete(distances)) = outcome else {
            return None;
        };
        self.stats.candidates_scored += candidates.len() as u64;
        Some(
            candidates
                .iter()
                .zip(distances)
                .map(|(&index, distance)| Neighbor { index, distance })
                .collect(),
        )
    }

    /// Hierarchy filter of a query batch: one [`QueryKind::Collect`] run walking the sphere BVH
    /// (the paper's query-as-a-short-ray formulation), returning, per query, the indices of
    /// every point whose leaf the query reaches.  The policy selects the dispatch: per-beat
    /// emulated reference, bulk ray–box passes shared by the whole batch (wavefront/fused), or
    /// contiguous query shards on private datapaths (parallel).  The per-query walk order is
    /// policy-invariant, so the candidate lists — and the `box_beats` accounting — never change.
    fn filter_candidates_batch(
        &mut self,
        queries: &[(Vec3, f32)],
        policy: &ExecPolicy,
    ) -> Vec<Vec<usize>> {
        match policy.mode {
            ExecMode::Wavefront => {
                let mut collect = CollectQuery::new(&self.bvh, queries);
                let candidates = self.collector.run(self.scorer.datapath_mut(), &mut collect);
                self.stats.box_beats += collect.box_beats;
                candidates
            }
            ExecMode::ScalarReference | ExecMode::Fused => {
                let mut runner = StreamRunner::new(CollectQuery::new(&self.bvh, queries));
                // The beat budget is a Fused-mode knob; every other mode ignores it (the
                // documented `ExecPolicy` contract).
                let mut fused =
                    FusedScheduler::new().with_beat_budget(if policy.mode == ExecMode::Fused {
                        policy.beat_budget_per_stream
                    } else {
                        0
                    });
                fused.set_admission_order(policy.admission_order);
                if policy.mode == ExecMode::ScalarReference {
                    fused.run_reference(self.scorer.datapath_mut(), &mut [&mut runner]);
                } else {
                    fused.run(self.scorer.datapath_mut(), &mut [&mut runner]);
                }
                let (collect, candidates) = runner.finish();
                self.stats.box_beats += collect.box_beats;
                candidates
            }
            ExecMode::Parallel { shards } => {
                self.filter_candidates_parallel(queries, shards.requested_threads())
            }
        }
    }

    /// The parallel filter backend: contiguous query shards, each walked through a private
    /// datapath of the scorer's configuration by its own wavefront run.  Queries are
    /// independent, so shard boundaries never change a candidate list.
    fn filter_candidates_parallel(
        &mut self,
        queries: &[(Vec3, f32)],
        threads: usize,
    ) -> Vec<Vec<usize>> {
        let config = *self.scorer.config();
        let bvh = &self.bvh;
        let Some((shards, pool)) =
            crate::parallel::shard_chunks(queries, threads, Self::MIN_QUERIES_PER_SHARD, |shard| {
                let mut datapath = RayFlexDatapath::new(config);
                let mut scheduler: WavefrontScheduler<CollectWork> = WavefrontScheduler::new();
                let mut collect = CollectQuery::new(bvh, shard);
                let candidates = scheduler.run(&mut datapath, &mut collect);
                (candidates, collect.box_beats)
            })
        else {
            // Too small to shard profitably: run the batched wavefront inline.
            return self.filter_candidates_batch(queries, &ExecPolicy::wavefront());
        };
        self.pool.merge(&pool);
        let mut results = Vec::with_capacity(queries.len());
        for (shard_candidates, box_beats) in shards {
            results.extend(shard_candidates);
            self.stats.box_beats += box_beats;
        }
        results
    }

    /// Scores an explicit candidate list against the query as one batched distance run under
    /// the policy, returning one [`Neighbor`] per candidate in candidate order (unsorted,
    /// unfiltered).
    fn score_candidates(
        &mut self,
        query: Vec3,
        candidates: &[usize],
        policy: &ExecPolicy,
    ) -> Vec<Neighbor> {
        let query_vec = [query.x, query.y, query.z];
        let points: Vec<[f32; 3]> = candidates
            .iter()
            .map(|&index| {
                let p = self.points[index];
                [p.x, p.y, p.z]
            })
            .collect();
        self.stats.candidates_scored += candidates.len() as u64;
        let beats_before = self.scorer.stats().beats;
        let distances =
            self.scorer
                .distances(&query_vec, &points, crate::KnnMetric::Euclidean, policy);
        self.stats.euclidean_beats += self.scorer.stats().beats - beats_before;
        candidates
            .iter()
            .zip(distances)
            .map(|(&index, distance)| Neighbor { index, distance })
            .collect()
    }

    /// Exact scoring of an explicit candidate list (used by the brute-force fallback).
    fn score_exactly(
        &mut self,
        query: Vec3,
        candidates: &[usize],
        policy: &ExecPolicy,
    ) -> Vec<Neighbor> {
        let mut results = self.score_candidates(query, candidates, policy);
        results.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(core::cmp::Ordering::Equal)
                .then(a.index.cmp(&b.index))
        });
        results
    }

    /// Number of spheres in the underlying BVH (equal to the dataset size).
    #[must_use]
    pub fn sphere_count(&self) -> usize {
        self.spheres.len()
    }
}

/// Validates a radius-query batch before a `try_*` run accepts it: every query point finite,
/// every radius finite and non-negative (`0.0` is valid — it matches only exact hits).
fn validate_radius_queries(queries: &[(Vec3, f32)]) -> Result<(), QueryError> {
    for (index, &(point, radius)) in queries.iter().enumerate() {
        if !point.is_finite() {
            return Err(QueryError::InvalidRequest {
                reason: format!("radius query {index} has a non-finite point"),
            });
        }
        if !radius.is_finite() || radius < 0.0 {
            return Err(QueryError::InvalidRequest {
                reason: format!(
                    "radius query {index} has radius {radius} (must be finite and non-negative)"
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(seed: u64, count: usize, extent: f32) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-extent..extent),
                    rng.gen_range(-extent..extent),
                    rng.gen_range(-extent..extent),
                )
            })
            .collect()
    }

    fn brute_force_radius(points: &[Vec3], query: Vec3, radius: f32) -> Vec<usize> {
        let mut found: Vec<(usize, f32)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (i, (*p - query).length_squared()))
            .filter(|(_, d)| *d <= radius * radius)
            .collect();
        found.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        found.into_iter().map(|(i, _)| i).collect()
    }

    #[test]
    fn radius_queries_match_brute_force() {
        let points = random_points(5, 300, 50.0);
        let mut search =
            HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let query = Vec3::new(
                rng.gen_range(-50.0f32..50.0),
                rng.gen_range(-50.0f32..50.0),
                rng.gen_range(-50.0f32..50.0),
            );
            let radius = rng.gen_range(2.0f32..15.0);
            let got: Vec<usize> = search
                .radius_query(query, radius, &ExecPolicy::wavefront())
                .into_iter()
                .map(|n| n.index)
                .collect();
            let expected = brute_force_radius(&points, query, radius);
            assert_eq!(got, expected, "query {query} radius {radius}");
        }
        assert_eq!(search.stats().dataset_size, 300);
        assert!(search.stats().box_beats > 0);
        assert!(search.stats().euclidean_beats >= search.stats().candidates_scored);
    }

    #[test]
    fn from_scene_searches_world_space_centroids_identically_for_both_forms() {
        use crate::{Blas, Instance, Scene};
        use rayflex_geometry::{Affine, Triangle};
        let mesh: Vec<Triangle> = (0..8)
            .map(|i| {
                let x = i as f32 * 1.5;
                Triangle::new(
                    Vec3::new(x, 0.0, 0.0),
                    Vec3::new(x + 1.0, 0.0, 0.0),
                    Vec3::new(x, 1.0, 0.0),
                )
            })
            .collect();
        let instances: Vec<Instance> = (0..6)
            .map(|i| Instance::new(0, Affine::translation(Vec3::new(0.0, i as f32 * 4.0, 3.0))))
            .collect();
        let scene = Scene::instanced(vec![Blas::new(mesh)], instances);
        let flattened = scene.flatten();

        let config = PipelineConfig::extended_unified();
        let mut instanced_search = HierarchicalSearch::from_scene(&scene, 0.01, config);
        let mut flat_search = HierarchicalSearch::from_scene(&flattened, 0.01, config);
        assert_eq!(instanced_search.points(), flat_search.points());

        let query = Vec3::new(2.0, 9.0, 3.0);
        let got = instanced_search.radius_query(query, 6.0, &ExecPolicy::wavefront());
        let expected = flat_search.radius_query(query, 6.0, &ExecPolicy::wavefront());
        assert!(
            !expected.is_empty(),
            "the query sphere must catch centroids"
        );
        assert_eq!(got, expected);
        assert_eq!(instanced_search.stats(), flat_search.stats());

        // The scene-boundary kNN entry point agrees with the search's exact ordering.
        let mut knn = KnnEngine::with_config(config);
        let nearest = knn.k_nearest_in_scene(query, &scene, 4, &ExecPolicy::wavefront());
        assert_eq!(nearest.len(), 4);
        for (n, e) in nearest.iter().zip(&expected) {
            assert_eq!(n.index, e.index);
            assert_eq!(n.distance.to_bits(), e.distance.to_bits());
        }
    }

    #[test]
    fn the_hierarchy_filters_most_of_the_dataset_for_small_radii() {
        let points = random_points(9, 2000, 100.0);
        let mut search =
            HierarchicalSearch::build(points, 0.01, PipelineConfig::extended_unified());
        let _ = search.radius_query(Vec3::new(10.0, -20.0, 30.0), 5.0, &ExecPolicy::wavefront());
        let fraction = search.stats().scored_fraction();
        assert!(
            fraction < 0.25,
            "the BVH filter should prune most of the dataset (scored {:.1}%)",
            fraction * 100.0
        );
    }

    #[test]
    fn nearest_matches_an_exhaustive_scan_even_for_far_queries() {
        let points = random_points(11, 200, 20.0);
        let mut search =
            HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified());
        for query in [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(19.0, -19.0, 5.0),
            Vec3::new(500.0, 500.0, 500.0), // far outside the dataset: exercises the fallback
        ] {
            let got = search
                .nearest(query, 1.0, &ExecPolicy::wavefront())
                .expect("non-empty dataset");
            let expected = points
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    (*a.1 - query)
                        .length_squared()
                        .partial_cmp(&(*b.1 - query).length_squared())
                        .unwrap()
                })
                .unwrap()
                .0;
            assert_eq!(got.index, expected, "query {query}");
        }
    }

    #[test]
    fn batched_radius_queries_match_individual_queries() {
        let points = random_points(13, 400, 40.0);
        let queries: Vec<(Vec3, f32)> = (0..8)
            .map(|i| {
                (
                    Vec3::new(
                        (i as f32 * 9.0) - 30.0,
                        ((i * 7) % 11) as f32 * 5.0 - 25.0,
                        ((i * 3) % 13) as f32 * 4.0 - 20.0,
                    ),
                    4.0 + (i % 4) as f32 * 3.0,
                )
            })
            .collect();

        let mut batched =
            HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified());
        let batch_results = batched.radius_queries(&queries, &ExecPolicy::wavefront());

        let mut individual =
            HierarchicalSearch::build(points, 0.01, PipelineConfig::extended_unified());
        for (i, &(query, radius)) in queries.iter().enumerate() {
            assert_eq!(
                batch_results[i],
                individual.radius_query(query, radius, &ExecPolicy::wavefront()),
                "query {i}"
            );
        }
        // Same filter and scoring work, whether the queries batch or not.
        assert_eq!(batched.stats(), individual.stats());
    }

    #[test]
    fn the_filter_runs_through_the_batched_engine_not_scalar_beats() {
        let points = random_points(21, 500, 50.0);
        let mut search =
            HierarchicalSearch::build(points, 0.01, PipelineConfig::extended_unified());
        let _ = search.radius_query(Vec3::new(5.0, -3.0, 12.0), 8.0, &ExecPolicy::wavefront());
        let mix = search.scorer.beat_mix();
        // Every filter beat is attributed to the collect kind through bulk passes; none are
        // unattributed scalar calls.
        assert_eq!(
            mix.count_for(rayflex_core::QueryKind::Collect, Opcode::RayBox),
            search.stats().box_beats
        );
        assert_eq!(
            mix.count(Opcode::RayBox),
            search.stats().box_beats,
            "no ray-box beat bypassed the collect attribution"
        );
        assert!(mix.passes() > 0, "the filter dispatched bulk passes");
    }

    #[test]
    fn fused_collect_streams_match_the_search_filter() {
        use crate::query::FusedScheduler;
        use rayflex_core::RayFlexDatapath;

        let points = random_points(17, 300, 30.0);
        let queries: Vec<(Vec3, f32)> = vec![
            (Vec3::new(0.0, 0.0, 0.0), 6.0),
            (Vec3::new(10.0, -5.0, 3.0), 9.0),
            (Vec3::new(-20.0, 14.0, -8.0), 4.0),
        ];
        let spheres: Vec<Sphere> = points.iter().map(|&p| Sphere::new(p, 0.01)).collect();
        let bvh = Bvh4::build(&spheres);

        let mut search =
            HierarchicalSearch::build(points, 0.01, PipelineConfig::extended_unified());
        let expected = search.filter_candidates_batch(&queries, &ExecPolicy::wavefront());

        let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let mut stream = CollectStream::new(&bvh, &queries);
        let mut fused = FusedScheduler::new();
        fused.run(&mut datapath, &mut [&mut stream]);
        let (candidates, box_beats) = stream.finish();
        assert_eq!(candidates, expected);
        assert_eq!(box_beats, search.stats().box_beats);
    }

    #[test]
    fn sharded_parallel_filtering_matches_wavefront_above_the_shard_floor() {
        // More than two full shards of radius queries force real worker sharding in the filter
        // phase (the matrix proptest stays below MIN_QUERIES_PER_SHARD and only exercises the
        // inline fallback), pinning the spawn path's per-query results and merged statistics.
        let points = random_points(31, 600, 50.0);
        let queries: Vec<(Vec3, f32)> = (0..2 * HierarchicalSearch::MIN_QUERIES_PER_SHARD + 3)
            .map(|i| {
                (
                    Vec3::new(
                        (i as f32 * 3.7) % 50.0 - 25.0,
                        (i as f32 * 7.3) % 50.0 - 25.0,
                        (i as f32 * 1.9) % 50.0 - 25.0,
                    ),
                    3.0 + (i % 5) as f32 * 2.0,
                )
            })
            .collect();
        let mut wavefront =
            HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified());
        let expected = wavefront.radius_queries(&queries, &ExecPolicy::wavefront());
        for threads in [2usize, 4] {
            let mut parallel =
                HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified());
            let got = parallel.radius_queries(&queries, &ExecPolicy::parallel(threads));
            assert_eq!(got, expected, "threads {threads}");
            assert_eq!(parallel.stats(), wavefront.stats(), "threads {threads}");
        }
    }

    #[test]
    fn empty_datasets_return_nothing() {
        let mut search =
            HierarchicalSearch::build(Vec::new(), 0.01, PipelineConfig::extended_unified());
        assert!(search
            .nearest(Vec3::ZERO, 1.0, &ExecPolicy::wavefront())
            .is_none());
        assert!(search
            .radius_query(Vec3::ZERO, 10.0, &ExecPolicy::wavefront())
            .is_empty());
        assert_eq!(search.stats().scored_fraction(), 0.0);
        assert_eq!(search.sphere_count(), 0);
    }

    #[test]
    #[should_panic(expected = "extended datapath")]
    fn baseline_configurations_are_rejected() {
        let _ = HierarchicalSearch::build(Vec::new(), 0.01, PipelineConfig::baseline_unified());
    }

    #[test]
    fn try_radius_queries_reject_bad_requests_before_any_beat() {
        let points = random_points(3, 50, 20.0);
        let mut search =
            HierarchicalSearch::build(points, 0.01, PipelineConfig::extended_unified());
        let baseline = search.stats();
        let bad_batches: Vec<(Vec<(Vec3, f32)>, &str)> = vec![
            (vec![(Vec3::new(f32::NAN, 0.0, 0.0), 5.0)], "point"),
            (vec![(Vec3::ZERO, f32::NAN)], "radius"),
            (vec![(Vec3::ZERO, -1.0)], "radius"),
        ];
        for (batch, needle) in bad_batches {
            let err = search
                .try_radius_queries(&batch, &ExecPolicy::wavefront())
                .unwrap_err();
            let QueryError::InvalidRequest { reason } = &err else {
                panic!("expected InvalidRequest, got {err}");
            };
            assert!(reason.contains(needle), "{reason}");
        }
        let err = search
            .try_nearest(Vec3::ZERO, f32::INFINITY, &ExecPolicy::wavefront())
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidRequest { .. }), "{err}");
        assert_eq!(
            search.stats(),
            baseline,
            "rejected requests must not issue a single beat"
        );
    }

    #[test]
    fn try_radius_queries_without_a_deadline_match_the_plain_path() {
        let points = random_points(23, 200, 30.0);
        let queries: Vec<(Vec3, f32)> = vec![
            (Vec3::new(0.0, 0.0, 0.0), 8.0),
            (Vec3::new(12.0, -4.0, 7.0), 5.0),
            (Vec3::new(-15.0, 10.0, -2.0), 0.0),
        ];
        for policy in [
            ExecPolicy::scalar(),
            ExecPolicy::wavefront(),
            ExecPolicy::parallel(2),
            ExecPolicy::fused().with_beat_budget(2),
        ] {
            let expected =
                HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified())
                    .radius_queries(&queries, &policy);
            let mut search =
                HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified());
            let outcome = search.try_radius_queries(&queries, &policy).unwrap();
            assert!(outcome.is_complete(), "{}", policy.mode);
            assert_eq!(*outcome.output(), expected, "{}", policy.mode);
        }
    }

    #[test]
    fn a_capped_radius_batch_returns_a_bit_identical_completed_prefix() {
        let points = random_points(29, 400, 40.0);
        let queries: Vec<(Vec3, f32)> = (0..6)
            .map(|i| {
                (
                    Vec3::new(i as f32 * 11.0 - 27.0, (i % 3) as f32 * 9.0 - 9.0, 4.0),
                    6.0 + (i % 2) as f32 * 4.0,
                )
            })
            .collect();
        let uncapped =
            HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified())
                .radius_queries(&queries, &ExecPolicy::wavefront());

        for base in [
            ExecPolicy::scalar(),
            ExecPolicy::wavefront(),
            ExecPolicy::fused().with_beat_budget(2),
        ] {
            // A one-beat deadline can never finish the filter *and* score a query.
            let starved = base.with_max_total_beats(1);
            let mut search =
                HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified());
            let err = search.try_radius_queries(&queries, &starved).unwrap_err();
            assert!(
                matches!(err, QueryError::BudgetExhausted { max_total_beats: 1 }),
                "{} gave {err}",
                base.mode
            );

            // A mid-size deadline completes some query prefix; every surfaced list must be
            // bit-identical to the uncapped run's.
            let mut search =
                HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified());
            for cap in [200u64, 800, 3000] {
                match search.try_radius_queries(&queries, &base.with_max_total_beats(cap)) {
                    Ok(outcome) => {
                        let lists = outcome.output();
                        if let Some(partial) = outcome.partial() {
                            assert!(partial.completed < queries.len());
                            assert_eq!(partial.completed, lists.len());
                            assert!(partial.beats_spent > 0);
                        } else {
                            assert_eq!(lists.len(), queries.len());
                        }
                        for (i, list) in lists.iter().enumerate() {
                            assert_eq!(*list, uncapped[i], "{} cap {cap} query {i}", base.mode);
                        }
                    }
                    Err(err) => assert!(
                        matches!(err, QueryError::BudgetExhausted { .. }),
                        "{} cap {cap} gave {err}",
                        base.mode
                    ),
                }
            }

            // A generous deadline completes the whole batch, bit-identically.
            let mut search =
                HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified());
            let outcome = search
                .try_radius_queries(&queries, &base.with_max_total_beats(u64::MAX))
                .unwrap();
            assert!(outcome.is_complete(), "{}", base.mode);
            assert_eq!(*outcome.output(), uncapped, "{}", base.mode);
        }
    }

    #[test]
    fn try_nearest_matches_nearest_and_surfaces_deadlines() {
        let points = random_points(37, 150, 25.0);
        let mut search =
            HierarchicalSearch::build(points.clone(), 0.01, PipelineConfig::extended_unified());
        for query in [Vec3::new(2.0, -3.0, 8.0), Vec3::new(400.0, 400.0, 400.0)] {
            let expected = search.nearest(query, 1.0, &ExecPolicy::wavefront());
            let got = search
                .try_nearest(query, 1.0, &ExecPolicy::wavefront())
                .unwrap();
            assert_eq!(got, expected, "query {query}");
            let generous = ExecPolicy::wavefront().with_max_total_beats(u64::MAX);
            let got = search.try_nearest(query, 1.0, &generous).unwrap();
            assert_eq!(got, expected, "capped query {query}");
        }
        let starved = ExecPolicy::wavefront().with_max_total_beats(1);
        let err = search
            .try_nearest(Vec3::new(2.0, -3.0, 8.0), 1.0, &starved)
            .unwrap_err();
        assert!(
            matches!(
                err,
                QueryError::DeadlineExceeded {
                    max_total_beats: 1,
                    ..
                }
            ),
            "{err}"
        );
    }
}
