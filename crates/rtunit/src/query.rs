//! The generic batched query engine: one wavefront scheduler for every query kind the RT unit
//! supports.
//!
//! PR 1 introduced a throughput-oriented wavefront frontend for closest-hit traversal: keep a
//! whole stream of queries in flight, build one request buffer per pass, dispatch it through
//! [`RayFlexDatapath::execute_batch_into`] in bulk, apply the responses, repeat until every query
//! retires.  That scheduling core is independent of *what* is being queried — the same loop
//! drives closest-hit rays, any-hit/shadow rays, primary-ray rendering and distance scoring —
//! so this module extracts it into a reusable pair:
//!
//! * [`BatchQuery`] — the per-item state machine a query kind implements: how to initialise an
//!   item, which beats it wants next, how a response advances it, and what it yields when it
//!   retires;
//! * [`WavefrontScheduler`] — the engine that owns the pooled per-item states and the reusable
//!   request/response/ownership buffers and runs any [`BatchQuery`] to completion against a
//!   datapath.
//!
//! Consumers instantiate the scheduler once and reuse it: a steady-state stream performs no
//! per-item allocation, exactly as the hand-rolled wavefront loop did.  Because the scheduler
//! preserves each item's own beat order (an item's beats are built in sequence, and the beats an
//! item appends within one pass stay adjacent in the batch), every query kind retains the
//! semantics — and, where a scalar reference exists, the bit-identical results and statistics —
//! of its scalar drive loop.
//!
//! Multi-beat accumulator jobs (the Euclidean/cosine distance operations) are safe under
//! interleaving *between* items precisely because of that adjacency guarantee: a distance query
//! appends all beats of one candidate in a single [`BatchQuery::build`] call, so the shared
//! accumulator sees each candidate's beat train contiguously and resets at its end, no matter
//! how many unrelated items share the pass.
//!
//! On top of the single-stream scheduler sits the **fused** layer: [`FusedScheduler`] owns any
//! number of type-erased [`FusedStream`]s — heterogeneous query kinds wrapped in
//! [`StreamRunner`]s — and merges their per-pass beats into *shared mixed-opcode bulk passes*
//! over one datapath, demuxing the responses back per stream.  Because each stream's own
//! build/apply order is exactly what it would be under a private [`WavefrontScheduler`] run (the
//! fused pass merely concatenates per-stream segments, and no datapath state crosses segment
//! boundaries mid-item), every stream's outputs and statistics are bit-identical to sequential
//! scheduling — pinned by `rtunit/tests/proptest_fused.rs` and by the scalar round-robin
//! reference mode ([`FusedScheduler::run_reference`]).

use rayflex_core::{Opcode, RayFlexDatapath, RayFlexRequest, RayFlexResponse};

use crate::policy::CoherenceMode;

pub use rayflex_core::QueryKind;

/// A batched query: a set of independent items, each advanced by datapath beats through a
/// per-item state machine.
///
/// The scheduler calls the methods in a fixed protocol, for each item `0..items()`:
///
/// 1. [`BatchQuery::reset`] once, on a pooled state of unknown previous content;
/// 2. [`BatchQuery::build`] once per pass while the item is active — append **at least one**
///    beat and return `true` to stay in flight, or append nothing and return `false` to retire
///    (beats appended by one call stay adjacent in the dispatched batch, in append order);
/// 3. [`BatchQuery::apply`] once per response to a beat the item appended, in append order;
/// 4. [`BatchQuery::finish`] once after the item retires, yielding its output.
///
/// Implementations update their own statistics (beat counts, node visits) inside `build`, which
/// keeps the per-item beat accounting identical to a scalar drive loop that issues the same
/// beats.
pub trait BatchQuery {
    /// Pooled per-item state.  `Default` provides the blank state the pool grows with; `reset`
    /// must fully re-initialise recycled states.
    type State: Default;
    /// What each item yields when it retires.
    type Output;

    /// The kind of query, for reports and diagnostics.
    fn kind(&self) -> QueryKind;

    /// Number of items in this run.
    fn items(&self) -> usize;

    /// Re-initialises a pooled state for `item`.
    fn reset(&mut self, item: usize, state: &mut Self::State);

    /// Appends the item's next beat(s) to `out` and returns `true`, or returns `false` (having
    /// appended nothing) to retire the item.
    fn build(
        &mut self,
        item: usize,
        state: &mut Self::State,
        out: &mut Vec<RayFlexRequest>,
    ) -> bool;

    /// Applies one response to a beat this item appended.
    fn apply(&mut self, item: usize, state: &mut Self::State, response: &RayFlexResponse);

    /// Extracts the item's output after it retired.
    fn finish(&mut self, item: usize, state: &mut Self::State) -> Self::Output;

    /// The coherence sort key of `item` (see [`CoherenceMode`](crate::CoherenceMode)): a
    /// coherence-enabled scheduler admits items in ascending key order, ties broken by item
    /// index.  The default — the item index itself — makes sorting a no-op, which is correct
    /// for every query; ray queries override it with an octant + origin-Morton key so
    /// like-minded rays build adjacent pass slots.  Keys are consulted once per run, before
    /// the first pass; because results are reassembled by item index, *any* key function is
    /// output-identical.
    fn sort_key(&self, item: usize) -> u64 {
        item as u64
    }

    /// Called once per run after coherent admission ordered the items (`order[slot] = item`, a
    /// permutation of `0..items()`): the query may physically gather its per-item operand tables
    /// into admission order and return `true`, after which the scheduler addresses `reset` /
    /// `build` / `apply` / `finish` by **admission slot** instead of item index.  The scheduler
    /// still reassembles outputs in item order, so opting in changes nothing observable — it
    /// merely turns the sorted run's per-item table walks sequential (the scheduler iterates
    /// slots in ascending order), instead of striding randomly through item-indexed storage.
    ///
    /// The default keeps item addressing, which is correct for every query; only queries with a
    /// non-identity [`BatchQuery::sort_key`] gain anything by opting in.  Never called when
    /// admission order is the identity (coherence off, or fewer than two items).
    fn reorder(&mut self, order: &[usize]) -> bool {
        let _ = order;
        false
    }
}

/// Flush threshold (in beats) of the schedulers' tiled pass dispatch: one logical pass is built,
/// dispatched and applied in tiles of roughly this many beats, so the request/response buffers
/// stay cache-resident instead of streaming a whole multi-thousand-beat pass through memory
/// three times (build-write, dispatch-read, apply-read).  Tiles flush only at item boundaries —
/// an item's beat train never splits — and pass accounting is per logical pass, not per tile
/// ([`RayFlexDatapath::record_pass`]), so pass counters and all outputs are tile-size-invariant;
/// only where same-opcode lane runs split moves.  At 1024 beats a tile's requests + responses
/// occupy ~264 KiB, comfortably inside per-core L2 (a measured sweet spot: smaller tiles split
/// more lane runs at tile boundaries, larger ones fall out of L2).
const PASS_TILE_BEATS: usize = 1024;

/// The result of a deadline-capped scheduler run ([`WavefrontScheduler::run_capped`]): the
/// outputs of the longest fully-retired item prefix, plus how far the run got.
///
/// The prefix discipline makes a cancelled run safe to consume: an item either appears with its
/// complete output — bit-identical to what the uncapped run returns for it, because
/// cancellation never alters a surviving item's beat sequence — or not at all.  Items that
/// happened to retire beyond the first still-active item are discarded rather than surfaced out
/// of order.
#[derive(Debug)]
pub struct CappedRun<T> {
    /// Outputs of the retired prefix, in item order (`total` outputs when `complete`).
    pub outputs: Vec<T>,
    /// Items the run was admitted with.
    pub total: usize,
    /// Beats the run dispatched before finishing or cancelling.
    pub beats: u64,
    /// `true` when every item retired — the cap (if any) never fired.
    pub complete: bool,
}

/// Progress report of a deadline-capped fused run ([`FusedScheduler::run_capped`] /
/// [`FusedScheduler::run_reference_capped`]): how many beats the run spent and whether every
/// stream drained.  A cancelled run leaves its streams mid-flight; extract each stream's
/// completed prefix with [`StreamRunner::finish_partial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CappedFusedRun {
    /// Beats the run dispatched before finishing or cancelling.
    pub beats: u64,
    /// `true` when every stream drained — the cap (if any) never fired.
    pub complete: bool,
}

/// The wavefront scheduler: active-set management, pooled per-item state and reusable beat
/// buffers around [`RayFlexDatapath::execute_batch_into`], generic over the query kind.
///
/// One scheduler instance serves any number of runs; its pools and buffers amortise across them.
/// The type parameter is the pooled state, so an engine serving several query kinds with the
/// same state type (closest-hit and any-hit traversal, say) needs only one scheduler.
#[derive(Debug)]
pub struct WavefrontScheduler<S> {
    /// Pooled per-item states, recycled across runs.
    pool: Vec<S>,
    /// Reusable per-run state roster (one checked-out pooled state per item); parked empty
    /// between runs so a steady-state stream never reallocates it.
    states: Vec<S>,
    /// Reusable request buffer: one batch per pass.
    requests: Vec<RayFlexRequest>,
    /// Reusable response buffer, parallel to `requests` after dispatch.
    responses: Vec<RayFlexResponse>,
    /// Admission slot owning each in-flight beat (parallel to `requests`).
    beat_owner: Vec<usize>,
    /// Admission slots still in flight, always in ascending slot order (retirement compacts in
    /// place), so the build loop walks the state roster sequentially.
    active: Vec<usize>,
    /// The run's admission permutation: `order[slot] = item`.  Identity when coherence is off;
    /// otherwise the coherence sort of the item indices.  Results reassemble through it, so any
    /// admission order is output-identical.
    order: Vec<usize>,
    /// Inverse of `order` (`slot_of[item] = slot`): where an item's state lives in the roster.
    slot_of: Vec<usize>,
    /// Reusable per-item coherence keys (indexed by item; filled when sorting is on).
    keys: Vec<u64>,
    /// Reusable tail buffer of [`CoherenceMode::SortAndCompact`]: ray–triangle trains deferred
    /// behind the pass's other beats (cleared every pass by the append).
    deferred: Vec<RayFlexRequest>,
    /// Item owning each deferred beat (parallel to `deferred`).
    deferred_owner: Vec<usize>,
    /// Coherence discipline of subsequent runs (see [`WavefrontScheduler::set_coherence`]).
    coherence: CoherenceMode,
}

impl<S> Default for WavefrontScheduler<S> {
    fn default() -> Self {
        WavefrontScheduler {
            pool: Vec::new(),
            states: Vec::new(),
            requests: Vec::new(),
            responses: Vec::new(),
            beat_owner: Vec::new(),
            active: Vec::new(),
            order: Vec::new(),
            slot_of: Vec::new(),
            keys: Vec::new(),
            deferred: Vec::new(),
            deferred_owner: Vec::new(),
            coherence: CoherenceMode::Off,
        }
    }
}

impl<S: Default> WavefrontScheduler<S> {
    /// Creates an empty scheduler (pools grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the coherence discipline of subsequent runs (see
    /// [`CoherenceMode`](crate::CoherenceMode)).  A directly-driven scheduler defaults to
    /// [`CoherenceMode::Off`] — caller admission order, exactly the pre-coherence behaviour;
    /// the policy engines wire [`ExecPolicy::coherence`](crate::ExecPolicy::coherence) through
    /// here.  Outputs and per-item statistics are identical in every mode.
    pub fn set_coherence(&mut self, coherence: CoherenceMode) {
        self.coherence = coherence;
    }

    /// Number of states currently parked in the pool (diagnostics / pooling tests).
    #[must_use]
    pub fn pooled_states(&self) -> usize {
        self.pool.len()
    }

    /// Runs `query` to completion against `datapath`, returning one output per item in item
    /// order.
    ///
    /// Every pass builds the beats of all active items into one request buffer, dispatches them
    /// in bulk, and applies the responses to the owning items.  Items retire in place; the run
    /// ends when no item is active.
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration (propagated from
    /// [`RayFlexDatapath::execute_batch_into`]).
    pub fn run<Q>(&mut self, datapath: &mut RayFlexDatapath, query: &mut Q) -> Vec<Q::Output>
    where
        Q: BatchQuery<State = S>,
    {
        self.run_capped(datapath, query, 0).outputs
    }

    /// Runs `query` like [`WavefrontScheduler::run`], but cooperatively cancels at the first
    /// pass boundary where the run has spent at least `max_total_beats` datapath beats
    /// (`0` disables the cap — the run is then identical to [`WavefrontScheduler::run`]).
    ///
    /// Cancellation is **cooperative**: the check sits at the top of the pass loop, so the pass
    /// in flight when the budget crosses the line completes, and the run may overshoot the cap
    /// by that pass's beats.  With a cap of at least one, the first pass always executes, so a
    /// capped run always makes forward progress.  A cancelled run yields the outputs of the
    /// longest fully-retired item prefix (see [`CappedRun`]); cancelled items' states never
    /// surface — a mid-flight traversal's "best hit so far" is not a result.
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration (propagated from
    /// [`RayFlexDatapath::execute_batch_into`]).
    pub fn run_capped<Q>(
        &mut self,
        datapath: &mut RayFlexDatapath,
        query: &mut Q,
        max_total_beats: u64,
    ) -> CappedRun<Q::Output>
    where
        Q: BatchQuery<State = S>,
    {
        let items = query.items();

        // Coherent admission: compute the run's admission order once — identity, or the
        // coherence sort of the item indices by the query's key (ties broken by item index, so
        // identity keys keep caller order and the sort is deterministic).  Results reassemble
        // through the permutation, so any admission order is output-identical — only which pass
        // slot a ray occupies moves.
        self.order.clear();
        self.order.extend(0..items);
        let mut slot_addressed = false;
        if self.coherence != CoherenceMode::Off && items > 1 {
            self.keys.clear();
            self.keys
                .extend((0..items).map(|item| query.sort_key(item)));
            let keys = &self.keys;
            self.order.sort_unstable_by_key(|&item| (keys[item], item));
            // A query that gathers its operand tables into admission order is addressed by
            // slot from here on (see `BatchQuery::reorder`).
            slot_addressed = query.reorder(&self.order);
        }
        self.slot_of.clear();
        self.slot_of.resize(items, 0);
        for (slot, &item) in self.order.iter().enumerate() {
            self.slot_of[item] = slot;
        }

        // Check out one pooled state per item into the reusable roster (taken out of `self` so
        // `query.build` can borrow a state while the pass buffers are borrowed too).  The roster
        // is indexed by admission slot — `states[slot]` belongs to item `order[slot]` — so the
        // build loop, which walks active slots in ascending order, touches it sequentially.
        let mut states = core::mem::take(&mut self.states);
        states.clear();
        states.reserve(items);
        for slot in 0..items {
            let mut state = self.pool.pop().unwrap_or_default();
            query.reset(
                if slot_addressed {
                    slot
                } else {
                    self.order[slot]
                },
                &mut state,
            );
            states.push(state);
        }

        self.active.clear();
        self.active.extend(0..items);
        crate::fault::scramble_checkpoint(&mut self.active);
        let bucketed = self.coherence == CoherenceMode::SortAndCompact;
        // Which bucket trains build into directly (the other side pays a move-out copy); adapted
        // per tile to the observed mix so the copy always lands on the minority opcode.  `false`
        // to start: a traversal run's first pass is all root box beats.
        let mut tri_direct = false;
        let kind = query.kind();

        let mut beats_spent = 0u64;
        let mut cancelled = false;
        while !self.active.is_empty() {
            // The pass boundary is the cooperative cancellation point of the deadline knob.
            if max_total_beats != 0 && beats_spent >= max_total_beats {
                cancelled = true;
                break;
            }

            // One logical pass, dispatched in cache-resident tiles (see [`PASS_TILE_BEATS`]):
            // each active item appends its next beat(s) — items with no further beats retire in
            // place — and every time the tile fills, it is dispatched and its responses applied
            // before the build resumes.  Applying a tile early is invisible to the items: a
            // response only ever touches its own item's state, and an item builds exactly once
            // per pass either way.
            let total = self.active.len();
            let mut pass_beats = 0usize;
            let mut pass_counted = false;
            let mut still_active = 0usize;
            let mut cursor = 0usize;
            while cursor < total {
                self.requests.clear();
                self.beat_owner.clear();
                self.deferred.clear();
                self.deferred_owner.clear();
                while cursor < total && self.requests.len() + self.deferred.len() < PASS_TILE_BEATS
                {
                    let slot = self.active[cursor];
                    cursor += 1;
                    let index = if slot_addressed {
                        slot
                    } else {
                        self.order[slot]
                    };
                    // Opcode bucketing ([`CoherenceMode::SortAndCompact`]): the tile keeps two
                    // buckets — mixed/box beats in `requests`, all-triangle trains in
                    // `deferred` — so box beats pack adjacently (eight-wide pairs) and triangle
                    // trains concatenate into long same-opcode runs.  Trains build straight
                    // into whichever bucket dominated the previous tile (`tri_direct`) and the
                    // minority trains move out, so the common case never copies on either a
                    // leaf-grinding or a node-hopping workload.  Safe because a train moves
                    // intact (per-item beat order unchanged) and ray beats are stateless — only
                    // the accumulator-chained distance beats order across items, and those are
                    // never bucketed.
                    let out = if bucketed && tri_direct {
                        &mut self.deferred
                    } else {
                        &mut self.requests
                    };
                    let before = out.len();
                    if query.build(index, &mut states[slot], out) {
                        debug_assert!(
                            out.len() > before,
                            "{kind} query item {index} stayed active without appending a beat",
                        );
                        if bucketed {
                            if tri_direct {
                                if self.deferred[before..]
                                    .iter()
                                    .all(|r| r.opcode == Opcode::RayTriangle)
                                {
                                    self.deferred_owner.resize(self.deferred.len(), slot);
                                } else {
                                    self.requests.extend(self.deferred.drain(before..));
                                    self.beat_owner.resize(self.requests.len(), slot);
                                }
                            } else if self.requests[before..]
                                .iter()
                                .all(|r| r.opcode == Opcode::RayTriangle)
                            {
                                self.deferred.extend(self.requests.drain(before..));
                                self.deferred_owner.resize(self.deferred.len(), slot);
                            } else {
                                self.beat_owner.resize(self.requests.len(), slot);
                            }
                        } else {
                            self.beat_owner.resize(self.requests.len(), slot);
                        }
                        self.active[still_active] = slot;
                        still_active += 1;
                    } else {
                        debug_assert_eq!(
                            if bucketed && tri_direct {
                                self.deferred.len()
                            } else {
                                self.requests.len()
                            },
                            before,
                            "{kind} query item {index} appended beats while retiring",
                        );
                    }
                }
                let tile_beats = self.requests.len() + self.deferred.len();
                if tile_beats == 0 {
                    continue;
                }
                if !pass_counted {
                    // Pass accounting is per logical pass, not per tile, so the BeatMix pass
                    // counters match the untiled schedule exactly.
                    datapath.record_pass(&[(kind, tile_beats)]);
                    pass_counted = true;
                }
                pass_beats += tile_beats;

                // Dispatch and apply the buckets back to back: mixed/box beats first, triangle
                // trains behind them — the same beat order the single-buffer schedule had, just
                // without physically concatenating the buckets.  No lane run spans the bucket
                // boundary (the buckets hold different opcodes), so lane accounting is
                // unchanged, and apply order across items never matters (per-item state only).
                for (chunk, owners) in [
                    (&self.requests, &self.beat_owner),
                    (&self.deferred, &self.deferred_owner),
                ] {
                    if chunk.is_empty() {
                        continue;
                    }
                    datapath.execute_pass_chunk(chunk, kind, &mut self.responses);
                    for (response, &slot) in self.responses.iter().zip(owners) {
                        let index = if slot_addressed {
                            slot
                        } else {
                            self.order[slot]
                        };
                        query.apply(index, &mut states[slot], response);
                    }
                }
                tri_direct = self.deferred.len() > self.requests.len();
            }
            self.active.truncate(still_active);
            if pass_beats == 0 {
                break;
            }
            beats_spent += pass_beats as u64;
        }

        // The retired prefix ends at the lowest still-active item (coherent admission may
        // reorder the admission slots, so "first" is not "lowest" in general).
        let retired_prefix = if cancelled {
            self.active
                .iter()
                .map(|&slot| self.order[slot])
                .min()
                .unwrap_or(items)
        } else {
            items
        };

        // Collect the prefix outputs in item order, return every state (finished or not) to the
        // pool, and park the emptied roster for the next run.
        let mut outputs = Vec::with_capacity(retired_prefix);
        for item in 0..retired_prefix {
            let slot = self.slot_of[item];
            outputs.push(query.finish(if slot_addressed { slot } else { item }, &mut states[slot]));
        }
        self.pool.append(&mut states);
        self.states = states;
        CappedRun {
            outputs,
            total: items,
            beats: beats_spent,
            complete: !cancelled,
        }
    }
}

/// A type-erased query stream inside a fused run: the object-safe face of a
/// [`StreamRunner`], which is how heterogeneous [`BatchQuery`] implementations (different state
/// and output types) share one [`FusedScheduler`] pass schedule.
///
/// The scheduler drives the protocol: [`FusedStream::start`] once, then per pass one
/// [`FusedStream::build_pass`] (append this stream's beats for the pass, returning how many) and
/// one [`FusedStream::apply_pass`] (consume exactly that many responses), until
/// [`FusedStream::is_active`] turns false.  Streams never see each other's beats.
pub trait FusedStream {
    /// The query kind of this stream, for pass-segment attribution.
    fn kind(&self) -> QueryKind;

    /// (Re-)initialises every item of the stream; called once when a fused run begins.
    fn start(&mut self);

    /// `true` while any item of the stream is still in flight.
    fn is_active(&self) -> bool;

    /// Appends the next beat(s) of active items to `out` (retiring items with no further beats)
    /// and returns the number of beats appended.
    ///
    /// `max_beats` is the scheduler's per-stream admission budget for this pass
    /// ([`FusedScheduler::set_beat_budget`]): `0` admits every active item, a positive
    /// budget stops admitting items once the pass segment holds at least that many beats.  An
    /// item's whole beat train is always admitted together (never split across passes), so the
    /// segment may overshoot the budget by the last admitted item's tail; items past the budget
    /// simply stay in flight, in order, for the next pass.  Budgeting changes *which pass*
    /// carries a beat, never an item's own beat sequence — outputs and per-stream statistics are
    /// budget-invariant.
    fn build_pass(&mut self, out: &mut Vec<RayFlexRequest>, max_beats: usize) -> usize;

    /// Applies the responses to the beats this stream appended in the matching
    /// [`FusedStream::build_pass`] call, in append order.
    fn apply_pass(&mut self, responses: &[RayFlexResponse]);
}

/// Owns one [`BatchQuery`] and its per-item states for the duration of a fused run, implementing
/// the type-erased [`FusedStream`] protocol over it.
///
/// A runner reproduces the [`WavefrontScheduler`] build/apply loop for its own query exactly —
/// same per-item beat order, same retire-in-place active set — so running several runners fused
/// yields per-stream results bit-identical to running each query alone.  After the run drains,
/// [`StreamRunner::finish`] yields the query back (for its statistics) together with one output
/// per item.
#[derive(Debug)]
pub struct StreamRunner<Q: BatchQuery> {
    query: Q,
    /// Per-item states, indexed by admission slot (`states[slot]` belongs to item
    /// `order[slot]`), so the build loop walks them in admission order.
    states: Vec<Q::State>,
    /// Admission slots still in flight, in admission order.
    active: Vec<usize>,
    /// Admission slot owning each beat of the current pass (cleared per pass).
    beat_owner: Vec<usize>,
    /// The run's admission permutation (`order[slot] = item`); identity when coherence is off.
    order: Vec<usize>,
    /// Inverse of `order` (`slot_of[item] = slot`).
    slot_of: Vec<usize>,
    /// Whether the query opted into admission-slot addressing (see [`BatchQuery::reorder`]).
    slot_addressed: bool,
    /// Reusable per-item coherence keys (indexed by item; filled when sorting is on).
    keys: Vec<u64>,
    /// Reusable tail buffer of [`CoherenceMode::SortAndCompact`]: ray–triangle trains deferred
    /// behind this stream's other beats of the pass (drained back every pass).
    deferred: Vec<RayFlexRequest>,
    /// Item owning each deferred beat (parallel to `deferred`).
    deferred_owner: Vec<usize>,
    /// Coherence discipline of subsequent runs (see [`StreamRunner::set_coherence`]).
    coherence: CoherenceMode,
    started: bool,
}

impl<Q: BatchQuery> StreamRunner<Q> {
    /// Wraps a query for fused scheduling.  Items are initialised lazily by
    /// [`FusedStream::start`] when a run begins.
    #[must_use]
    pub fn new(query: Q) -> Self {
        StreamRunner {
            query,
            states: Vec::new(),
            active: Vec::new(),
            beat_owner: Vec::new(),
            order: Vec::new(),
            slot_of: Vec::new(),
            slot_addressed: false,
            keys: Vec::new(),
            deferred: Vec::new(),
            deferred_owner: Vec::new(),
            coherence: CoherenceMode::Off,
            started: false,
        }
    }

    /// Sets the coherence discipline of subsequent runs (see
    /// [`CoherenceMode`](crate::CoherenceMode) and [`WavefrontScheduler::set_coherence`]);
    /// defaults to [`CoherenceMode::Off`].  Takes effect at the next [`FusedStream::start`].
    pub fn set_coherence(&mut self, coherence: CoherenceMode) {
        self.coherence = coherence;
    }

    /// Builder form of [`StreamRunner::set_coherence`].
    #[must_use]
    pub fn with_coherence(mut self, coherence: CoherenceMode) -> Self {
        self.set_coherence(coherence);
        self
    }

    /// Extracts the query and one output per item after the run drained the stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream was never run or still has items in flight.
    #[must_use]
    pub fn finish(mut self) -> (Q, Vec<Q::Output>) {
        assert!(
            self.started && self.active.is_empty(),
            "a fused stream must be run to completion before finishing"
        );
        let total = self.states.len();
        let mut outputs = Vec::with_capacity(total);
        for item in 0..total {
            let slot = self.slot_of[item];
            let index = if self.slot_addressed { slot } else { item };
            outputs.push(self.query.finish(index, &mut self.states[slot]));
        }
        (self.query, outputs)
    }

    /// The partial-aware sibling of [`StreamRunner::finish`]: extracts the query, the outputs
    /// of the longest fully-retired item prefix, and the stream's total item count, after a
    /// deadline-capped run that may have cancelled the stream mid-flight
    /// ([`FusedScheduler::run_capped`]).
    ///
    /// Items still in flight never surface (their states hold mid-traversal partial answers);
    /// retired items *beyond* the first in-flight one are discarded so the result is a true
    /// prefix.  On a stream that actually drained, this equals [`StreamRunner::finish`].
    ///
    /// # Panics
    ///
    /// Panics if the stream was never run.
    #[must_use]
    pub fn finish_partial(mut self) -> (Q, Vec<Q::Output>, usize) {
        assert!(
            self.started,
            "a fused stream must be run before finishing partially"
        );
        let total = self.states.len();
        // The lowest still-active item bounds the retired prefix (coherent admission may
        // reorder the admission slots, so "first" is not "lowest" in general).
        let prefix = self
            .active
            .iter()
            .map(|&slot| self.order[slot])
            .min()
            .unwrap_or(total);
        let mut outputs = Vec::with_capacity(prefix);
        for item in 0..prefix {
            let slot = self.slot_of[item];
            let index = if self.slot_addressed { slot } else { item };
            outputs.push(self.query.finish(index, &mut self.states[slot]));
        }
        (self.query, outputs, total)
    }
}

impl<Q: BatchQuery> FusedStream for StreamRunner<Q> {
    fn kind(&self) -> QueryKind {
        self.query.kind()
    }

    fn start(&mut self) {
        let items = self.query.items();
        // Coherent admission, exactly as in `WavefrontScheduler::run_capped`: one sort of the
        // admission permutation up front, output-identical by construction.
        self.order.clear();
        self.order.extend(0..items);
        self.slot_addressed = false;
        if self.coherence != CoherenceMode::Off && items > 1 {
            self.keys.clear();
            let query = &self.query;
            self.keys
                .extend((0..items).map(|item| query.sort_key(item)));
            let keys = &self.keys;
            self.order.sort_unstable_by_key(|&item| (keys[item], item));
            self.slot_addressed = self.query.reorder(&self.order);
        }
        self.slot_of.clear();
        self.slot_of.resize(items, 0);
        for (slot, &item) in self.order.iter().enumerate() {
            self.slot_of[item] = slot;
        }
        self.states.clear();
        self.states.resize_with(items, Q::State::default);
        for slot in 0..items {
            let index = if self.slot_addressed {
                slot
            } else {
                self.order[slot]
            };
            self.query.reset(index, &mut self.states[slot]);
        }
        self.active.clear();
        self.active.extend(0..items);
        crate::fault::scramble_checkpoint(&mut self.active);
        self.started = true;
    }

    fn is_active(&self) -> bool {
        !self.active.is_empty()
    }

    fn build_pass(&mut self, out: &mut Vec<RayFlexRequest>, max_beats: usize) -> usize {
        let pass_start = out.len();
        self.beat_owner.clear();
        debug_assert!(self.deferred.is_empty());
        let bucketed = self.coherence == CoherenceMode::SortAndCompact;
        let total = self.active.len();
        let mut still_active = 0;
        let mut processed = 0;
        while processed < total {
            // Budget admission: stop (leaving the rest of the active list untouched, in order)
            // once this pass's segment — built beats plus the deferred triangle tail — reached
            // the per-stream beat budget.
            if max_beats != 0 && (out.len() - pass_start) + self.deferred.len() >= max_beats {
                break;
            }
            let slot = self.active[processed];
            let index = if self.slot_addressed {
                slot
            } else {
                self.order[slot]
            };
            let before = out.len();
            if self.query.build(index, &mut self.states[slot], out) {
                debug_assert!(
                    out.len() > before,
                    "{} stream item {index} stayed active without appending a beat",
                    self.query.kind()
                );
                if bucketed
                    && out[before..]
                        .iter()
                        .all(|r| r.opcode == Opcode::RayTriangle)
                {
                    // Opcode bucketing within this stream's segment (see the matching branch
                    // in `WavefrontScheduler::run_capped`): the train moves intact to the
                    // segment tail, never across the segment boundary.
                    self.deferred.extend(out.drain(before..));
                    self.deferred_owner.resize(self.deferred.len(), slot);
                } else {
                    self.beat_owner.resize(out.len() - pass_start, slot);
                }
                self.active[still_active] = slot;
                still_active += 1;
            } else {
                debug_assert_eq!(
                    out.len(),
                    before,
                    "{} stream item {index} appended beats while retiring",
                    self.query.kind()
                );
            }
            processed += 1;
        }
        // Compact: survivors of the processed prefix, then the unprocessed (budget-deferred)
        // suffix — relative item order is preserved either way.
        if processed < total {
            self.active.copy_within(processed..total, still_active);
        }
        self.active.truncate(still_active + (total - processed));
        // Append the deferred triangle trains behind the segment's other beats.
        out.append(&mut self.deferred);
        self.beat_owner.append(&mut self.deferred_owner);
        out.len() - pass_start
    }

    fn apply_pass(&mut self, responses: &[RayFlexResponse]) {
        debug_assert_eq!(responses.len(), self.beat_owner.len());
        for (response, &slot) in responses.iter().zip(&self.beat_owner) {
            let index = if self.slot_addressed {
                slot
            } else {
                self.order[slot]
            };
            self.query.apply(index, &mut self.states[slot], response);
        }
    }
}

/// Implements [`FusedStream`] for a public stream wrapper by delegating every method to its
/// `runner: StreamRunner<_>` field (which implements the trait itself).  The traversal, distance
/// and collection wrappers all forward identically; the macro keeps the protocol in one place.
/// Use the bracketed form to introduce generic parameters:
/// `delegate_fused_stream_to_runner!([C: AsRef<[f32]>] DistanceStream<'_, C>);`.
macro_rules! delegate_fused_stream_to_runner {
    ([$($generics:tt)*] $ty:ty) => {
        impl<$($generics)*> $crate::query::FusedStream for $ty {
            fn kind(&self) -> $crate::query::QueryKind {
                $crate::query::FusedStream::kind(&self.runner)
            }
            fn start(&mut self) {
                $crate::query::FusedStream::start(&mut self.runner);
            }
            fn is_active(&self) -> bool {
                $crate::query::FusedStream::is_active(&self.runner)
            }
            fn build_pass(
                &mut self,
                out: &mut Vec<rayflex_core::RayFlexRequest>,
                max_beats: usize,
            ) -> usize {
                $crate::query::FusedStream::build_pass(&mut self.runner, out, max_beats)
            }
            fn apply_pass(&mut self, responses: &[rayflex_core::RayFlexResponse]) {
                $crate::query::FusedStream::apply_pass(&mut self.runner, responses);
            }
        }
    };
    ($ty:ty) => {
        $crate::query::delegate_fused_stream_to_runner!([] $ty);
    };
}
pub(crate) use delegate_fused_stream_to_runner;

/// The fused multi-stream scheduler: merges the per-pass beats of N concurrent query streams —
/// of *different* query kinds — into shared mixed-opcode bulk passes over a single datapath, and
/// demuxes the responses back per stream.
///
/// This is the software model of the paper's unified RT unit (§V-A) under a realistic
/// multi-workload mix: one datapath time-multiplexes a closest-hit bounce stream, its shadow
/// rays, distance scoring and BVH candidate collection within the *same* passes, instead of each
/// workload getting an exclusive pass sequence.  Scheduling rules:
///
/// * **Stream admission** — all streams of a run are admitted up front ([`FusedScheduler::run`]
///   takes the full set) and started together; a stream that drains early simply stops
///   contributing beats while the others continue.  With a **per-stream beat budget**
///   ([`FusedScheduler::set_beat_budget`], the [`ExecPolicy`](crate::ExecPolicy) fairness knob),
///   each stream contributes at most that many beats per pass — `1` models strict round-robin
///   QoS between concurrent workloads, `0` the classic unlimited discipline — without changing
///   any stream's outputs or statistics (only the pass structure moves).
/// * **Pass merging** — each pass concatenates the streams' beat segments in admission order
///   into one request buffer and dispatches it with a single
///   [`RayFlexDatapath::execute_batch_segmented`] call, which attributes every beat to its
///   stream's [`QueryKind`] in the per-kind `BeatMix` table (and counts the pass as *fused* when
///   at least two kinds contributed).
/// * **Per-stream bit-identity** — a stream's own beat order is untouched by fusion (segments
///   are contiguous, items never interleave within a `build` call, and the datapath carries no
///   state across beats except the distance accumulators, whose beat trains stay contiguous
///   inside one segment), so outputs and per-stream statistics equal sequential scheduling
///   exactly.
///
/// The buffers are reusable across runs; a steady-state fused workload performs no per-pass
/// allocation.
#[derive(Debug, Default)]
pub struct FusedScheduler {
    /// Reusable merged request buffer: one mixed-kind batch per pass.
    requests: Vec<RayFlexRequest>,
    /// Reusable response buffer, parallel to `requests` after dispatch.
    responses: Vec<RayFlexResponse>,
    /// `(kind, beat_count)` per stream for the current pass, in admission order.
    segments: Vec<(QueryKind, usize)>,
    /// Per-stream beat budget per pass (`0` = unlimited); see
    /// [`FusedScheduler::set_beat_budget`].
    beat_budget_per_stream: usize,
    /// Admission ordering of the shared passes; see [`FusedScheduler::set_admission_order`].
    admission_order: crate::policy::AdmissionOrder,
    /// Per-stream deadlines (in caller units; `0` = none) keyed by stream index, consulted by
    /// [`AdmissionOrder::EarliestDeadlineFirst`](crate::AdmissionOrder::EarliestDeadlineFirst);
    /// see [`FusedScheduler::set_stream_deadlines`].
    stream_deadlines: Vec<u64>,
    /// Reusable admission-order buffer: `order[position] = stream index`, recomputed per run.
    order: Vec<usize>,
    /// Passes dispatched by the most recent run.
    last_run_passes: u64,
    /// Passes each stream contributed at least one beat to, in admission order, for the most
    /// recent run.
    stream_passes: Vec<u64>,
}

impl FusedScheduler {
    /// Creates an empty fused scheduler (buffers grow on first use, no beat budget).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder form of [`FusedScheduler::set_beat_budget`].
    #[must_use]
    pub fn with_beat_budget(mut self, beats_per_stream_per_pass: usize) -> Self {
        self.set_beat_budget(beats_per_stream_per_pass);
        self
    }

    /// Sets the per-stream admission budget: the maximum beats any one stream contributes to one
    /// shared pass.  `0` (the default) admits every active item each pass; `1` is strict
    /// round-robin — each stream advances one item's beat train per pass.  An item's beat train
    /// is never split, so a segment may overshoot the budget by the last train's tail.  The
    /// budget is pure pass-structure fairness: per-stream outputs and statistics are identical
    /// at every budget (pinned by `rtunit/tests/proptest_policy.rs`).
    pub fn set_beat_budget(&mut self, beats_per_stream_per_pass: usize) {
        self.beat_budget_per_stream = beats_per_stream_per_pass;
    }

    /// The configured per-stream beat budget (`0` = unlimited).
    #[must_use]
    pub fn beat_budget(&self) -> usize {
        self.beat_budget_per_stream
    }

    /// Sets the admission ordering of the shared passes (see
    /// [`AdmissionOrder`](crate::AdmissionOrder)): with
    /// [`EarliestDeadlineFirst`](crate::AdmissionOrder::EarliestDeadlineFirst), every pass
    /// builds and issues its stream segments in ascending order of the deadlines registered by
    /// [`FusedScheduler::set_stream_deadlines`] (deadline `0` = none = last, ties by stream
    /// index) instead of slice order.  Pure issue-order policy: per-stream outputs and
    /// statistics are admission-order-invariant (pinned by `rtunit/tests/proptest_policy.rs`).
    pub fn set_admission_order(&mut self, order: crate::policy::AdmissionOrder) {
        self.admission_order = order;
    }

    /// Builder form of [`FusedScheduler::set_admission_order`].
    #[must_use]
    pub fn with_admission_order(mut self, order: crate::policy::AdmissionOrder) -> Self {
        self.set_admission_order(order);
        self
    }

    /// Registers per-stream deadlines for
    /// [`EarliestDeadlineFirst`](crate::AdmissionOrder::EarliestDeadlineFirst) admission:
    /// `deadlines[i]` belongs to `streams[i]` of the next run, in any caller unit where smaller
    /// means more urgent (`0` = no deadline, sorts last).  Streams past the end of the slice
    /// carry no deadline.  The registration persists across runs until replaced.
    pub fn set_stream_deadlines(&mut self, deadlines: &[u64]) {
        self.stream_deadlines.clear();
        self.stream_deadlines.extend_from_slice(deadlines);
    }

    /// The admission order of the most recent run: `order[position] = stream index`, the order
    /// segments were built and issued within each shared pass.  Identity under
    /// [`Fifo`](crate::AdmissionOrder::Fifo) or when no deadlines distinguish the streams.
    #[must_use]
    pub fn last_run_admission(&self) -> &[usize] {
        &self.order
    }

    /// Computes the run's admission order into `self.order`: identity for FIFO, or a stable
    /// (deadline, index) sort for earliest-deadline-first.
    fn admit(&mut self, stream_count: usize) {
        self.order.clear();
        self.order.extend(0..stream_count);
        if self.admission_order == crate::policy::AdmissionOrder::EarliestDeadlineFirst {
            let deadlines = &self.stream_deadlines;
            self.order.sort_by_key(|&index| {
                let deadline = deadlines
                    .get(index)
                    .copied()
                    .filter(|&deadline| deadline != 0)
                    .unwrap_or(u64::MAX);
                (deadline, index)
            });
        }
    }

    /// Number of bulk passes the most recent run dispatched (diagnostics).
    #[must_use]
    pub fn last_run_passes(&self) -> u64 {
        self.last_run_passes
    }

    /// How many passes each stream of the most recent run contributed at least one beat to, in
    /// admission order — the per-stream fairness fingerprint a beat budget reshapes (reported by
    /// the fused benchmark suite).
    #[must_use]
    pub fn last_run_stream_passes(&self) -> &[u64] {
        &self.stream_passes
    }

    /// Runs every stream to completion against `datapath`, merging their beats into shared bulk
    /// passes.  After this returns, each [`StreamRunner`] holds its finished items; call
    /// [`StreamRunner::finish`] to extract the outputs.
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration.
    pub fn run(&mut self, datapath: &mut RayFlexDatapath, streams: &mut [&mut dyn FusedStream]) {
        let progress = self.run_capped(datapath, streams, 0);
        debug_assert!(progress.complete, "an uncapped fused run always completes");
    }

    /// Runs the streams like [`FusedScheduler::run`], but cooperatively cancels at the first
    /// shared-pass boundary where the run has spent at least `max_total_beats` datapath beats
    /// (`0` disables the cap).  The first pass always executes; a cancelled run leaves streams
    /// mid-flight — extract each stream's completed prefix with [`StreamRunner::finish_partial`].
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration.
    pub fn run_capped(
        &mut self,
        datapath: &mut RayFlexDatapath,
        streams: &mut [&mut dyn FusedStream],
        max_total_beats: u64,
    ) -> CappedFusedRun {
        for stream in streams.iter_mut() {
            stream.start();
        }
        self.admit(streams.len());
        self.last_run_passes = 0;
        self.stream_passes.clear();
        self.stream_passes.resize(streams.len(), 0);
        let mut beats_spent = 0u64;
        while streams.iter().any(|stream| stream.is_active()) {
            // The shared-pass boundary is the cooperative cancellation point.
            if max_total_beats != 0 && beats_spent >= max_total_beats {
                return CappedFusedRun {
                    beats: beats_spent,
                    complete: false,
                };
            }

            // Build phase: every stream appends its (budget-limited) segment of the merged
            // pass, in admission order (slice order, or earliest-deadline-first).
            self.requests.clear();
            self.segments.clear();
            for &index in &self.order {
                let stream = &mut *streams[index];
                let beats = stream.build_pass(&mut self.requests, self.beat_budget_per_stream);
                self.segments.push((stream.kind(), beats));
                self.stream_passes[index] += u64::from(beats > 0);
            }
            if self.requests.is_empty() {
                // Every remaining item retired during the build (beatless drains exist — a
                // collection item whose whole subtree is leaves, say).
                break;
            }
            self.last_run_passes += 1;
            beats_spent += self.requests.len() as u64;

            // One bulk dispatch for the merged mixed-kind pass.
            datapath.execute_batch_segmented(&self.requests, &self.segments, &mut self.responses);

            // Demux phase: hand each stream its contiguous slice of the responses, walking the
            // same admission order the build phase used.
            let mut offset = 0;
            for (&index, &(_, beats)) in self.order.iter().zip(&self.segments) {
                streams[index].apply_pass(&self.responses[offset..offset + beats]);
                offset += beats;
            }
        }
        CappedFusedRun {
            beats: beats_spent,
            complete: true,
        }
    }

    /// The scalar round-robin reference mode of [`FusedScheduler::run`]: the same pass schedule
    /// (including the configured beat budget) and the same per-stream beat orders, but every
    /// beat executes one at a time through the register-accurate emulated path
    /// ([`RayFlexDatapath::execute_attributed`]) with the streams taking turns pass by pass — no
    /// bulk dispatch at all.
    ///
    /// Per-stream outputs and statistics are bit-identical to [`FusedScheduler::run`] (the
    /// fast batched model and the emulated model are bit-equal by `core`'s property tests, and
    /// the beat order is the same), which is what the fused property tests pin.  Beats executed
    /// here count toward the per-kind `BeatMix` attribution but not toward pass counters.
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration.
    pub fn run_reference(
        &mut self,
        datapath: &mut RayFlexDatapath,
        streams: &mut [&mut dyn FusedStream],
    ) {
        let progress = self.run_reference_capped(datapath, streams, 0);
        debug_assert!(
            progress.complete,
            "an uncapped reference run always completes"
        );
    }

    /// The deadline-capped sibling of [`FusedScheduler::run_reference`]: the same scalar
    /// round-robin schedule, cooperatively cancelled at the first round boundary where the run
    /// has spent at least `max_total_beats` emulated beats (`0` disables the cap).  Used as the
    /// capped [`ScalarReference`](crate::ExecMode::ScalarReference) discipline so scalar and
    /// batched capped runs share the same pass-boundary cancellation semantics.
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration.
    pub fn run_reference_capped(
        &mut self,
        datapath: &mut RayFlexDatapath,
        streams: &mut [&mut dyn FusedStream],
        max_total_beats: u64,
    ) -> CappedFusedRun {
        for stream in streams.iter_mut() {
            stream.start();
        }
        self.admit(streams.len());
        self.last_run_passes = 0;
        self.stream_passes.clear();
        self.stream_passes.resize(streams.len(), 0);
        let mut beats_spent = 0u64;
        while streams.iter().any(|stream| stream.is_active()) {
            // The round boundary is the reference discipline's pass boundary.
            if max_total_beats != 0 && beats_spent >= max_total_beats {
                return CappedFusedRun {
                    beats: beats_spent,
                    complete: false,
                };
            }
            // Round-robin: each stream in turn (in admission order) builds its (budget-limited)
            // pass segment and has it executed beat by beat before the next stream takes over.
            // The scheduler-side pass accounting mirrors `run` (one scheduled round = one pass,
            // per-stream contributions counted) even though the datapath's own bulk-pass
            // counters stay at zero — no bulk dispatch ever happens here.
            let mut round_had_beats = false;
            for order_position in 0..self.order.len() {
                let index = self.order[order_position];
                let stream = &mut *streams[index];
                self.requests.clear();
                let beats = stream.build_pass(&mut self.requests, self.beat_budget_per_stream);
                if beats == 0 {
                    continue;
                }
                round_had_beats = true;
                self.stream_passes[index] += 1;
                beats_spent += beats as u64;
                self.responses.clear();
                for request in &self.requests {
                    self.responses
                        .push(datapath.execute_attributed(request, stream.kind()));
                }
                stream.apply_pass(&self.responses);
            }
            self.last_run_passes += u64::from(round_had_beats);
        }
        CappedFusedRun {
            beats: beats_spent,
            complete: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_core::PipelineConfig;
    use rayflex_geometry::{Aabb, Ray, Vec3};

    /// A toy query: each item tests its ray against one box per pass, for `rounds` passes, and
    /// counts hits.
    struct CountingQuery {
        kind: QueryKind,
        rays: Vec<Ray>,
        boxes: [Aabb; 4],
        rounds: usize,
        built: usize,
    }

    #[derive(Debug, Default)]
    struct CountingState {
        remaining: usize,
        hits: usize,
    }

    impl BatchQuery for CountingQuery {
        type State = CountingState;
        type Output = usize;

        fn kind(&self) -> QueryKind {
            self.kind
        }

        fn items(&self) -> usize {
            self.rays.len()
        }

        fn reset(&mut self, _item: usize, state: &mut CountingState) {
            state.remaining = self.rounds;
            state.hits = 0;
        }

        fn build(
            &mut self,
            item: usize,
            state: &mut CountingState,
            out: &mut Vec<RayFlexRequest>,
        ) -> bool {
            if state.remaining == 0 {
                return false;
            }
            state.remaining -= 1;
            self.built += 1;
            out.push(RayFlexRequest::ray_box(
                item as u64,
                &self.rays[item],
                &self.boxes,
            ));
            true
        }

        fn apply(&mut self, _item: usize, state: &mut CountingState, response: &RayFlexResponse) {
            let result = response.box_result.expect("box beat");
            state.hits += usize::from(result.hit[0]);
        }

        fn finish(&mut self, _item: usize, state: &mut CountingState) -> usize {
            state.hits
        }
    }

    fn toy_query(rays: usize, rounds: usize) -> CountingQuery {
        toy_query_of_kind(QueryKind::ClosestHit, rays, rounds)
    }

    fn toy_query_of_kind(kind: QueryKind, rays: usize, rounds: usize) -> CountingQuery {
        CountingQuery {
            kind,
            rays: (0..rays)
                .map(|i| {
                    Ray::new(
                        Vec3::new(i as f32 * 0.1, 0.0, -5.0),
                        Vec3::new(0.0, 0.0, 1.0),
                    )
                })
                .collect(),
            boxes: [Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0)); 4],
            rounds,
            built: 0,
        }
    }

    #[test]
    fn the_scheduler_runs_every_item_to_completion() {
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let mut query = toy_query(9, 3);
        let outputs = scheduler.run(&mut datapath, &mut query);
        assert_eq!(outputs, vec![3; 9], "every round of every item hit");
        assert_eq!(query.built, 9 * 3);
        assert_eq!(datapath.executed_beats(), 9 * 3);
    }

    #[test]
    fn states_return_to_the_pool_and_are_recycled() {
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let first = scheduler.run(&mut datapath, &mut toy_query(6, 2));
        assert_eq!(scheduler.pooled_states(), 6);
        let second = scheduler.run(&mut datapath, &mut toy_query(6, 2));
        assert_eq!(first, second);
        assert_eq!(scheduler.pooled_states(), 6, "states recycled, not leaked");
    }

    #[test]
    fn empty_runs_are_fine() {
        let mut scheduler: WavefrontScheduler<CountingState> = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let outputs = scheduler.run(&mut datapath, &mut toy_query(0, 5));
        assert!(outputs.is_empty());
        assert_eq!(datapath.executed_beats(), 0);
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::BTreeSet<_> =
            QueryKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), QueryKind::ALL.len());
        assert_eq!(QueryKind::AnyHit.to_string(), "any-hit");
    }

    /// Like the toy query but with a per-item round count, so items retire on different passes —
    /// the shape a capped run needs to expose a nontrivial retired prefix.
    struct StaggeredQuery {
        rays: Vec<Ray>,
        boxes: [Aabb; 4],
        rounds: Vec<usize>,
    }

    impl BatchQuery for StaggeredQuery {
        type State = CountingState;
        type Output = usize;

        fn kind(&self) -> QueryKind {
            QueryKind::ClosestHit
        }

        fn items(&self) -> usize {
            self.rays.len()
        }

        fn reset(&mut self, item: usize, state: &mut CountingState) {
            state.remaining = self.rounds[item];
            state.hits = 0;
        }

        fn build(
            &mut self,
            item: usize,
            state: &mut CountingState,
            out: &mut Vec<RayFlexRequest>,
        ) -> bool {
            if state.remaining == 0 {
                return false;
            }
            state.remaining -= 1;
            out.push(RayFlexRequest::ray_box(
                item as u64,
                &self.rays[item],
                &self.boxes,
            ));
            true
        }

        fn apply(&mut self, _item: usize, state: &mut CountingState, response: &RayFlexResponse) {
            let result = response.box_result.expect("box beat");
            state.hits += usize::from(result.hit[0]);
        }

        fn finish(&mut self, _item: usize, state: &mut CountingState) -> usize {
            state.hits
        }
    }

    fn staggered_query(rounds: &[usize]) -> StaggeredQuery {
        StaggeredQuery {
            rays: (0..rounds.len())
                .map(|i| {
                    Ray::new(
                        Vec3::new(i as f32 * 0.1, 0.0, -5.0),
                        Vec3::new(0.0, 0.0, 1.0),
                    )
                })
                .collect(),
            boxes: [Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0)); 4],
            rounds: rounds.to_vec(),
        }
    }

    #[test]
    fn an_uncapped_run_capped_call_is_the_plain_run() {
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let run = scheduler.run_capped(&mut datapath, &mut toy_query(6, 2), 0);
        assert!(run.complete, "a zero cap disables the deadline entirely");
        assert_eq!(run.outputs, vec![2; 6]);
        assert_eq!(run.total, 6);
        assert_eq!(run.beats, 12);
    }

    #[test]
    fn a_capped_lockstep_run_cancels_with_an_empty_prefix() {
        // Nine items in lockstep: every pass carries nine beats.  A cap of 10 lets pass 1 (9
        // beats) through, admits pass 2 (9 < 10), and cancels at the pass-3 boundary with 18
        // beats spent — the pass in flight when the budget crosses the line always completes.
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let run = scheduler.run_capped(&mut datapath, &mut toy_query(9, 3), 10);
        assert!(!run.complete);
        assert_eq!(
            run.beats, 18,
            "cancellation overshoots by the pass in flight"
        );
        assert_eq!(run.total, 9);
        assert!(
            run.outputs.is_empty(),
            "lockstep items are all still in flight: the retired prefix is empty"
        );
        assert_eq!(
            scheduler.pooled_states(),
            9,
            "cancelled items' states still return to the pool"
        );
    }

    #[test]
    fn a_capped_staggered_run_yields_the_retired_prefix() {
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let expected = scheduler.run(&mut datapath, &mut staggered_query(&[1, 2, 3, 4]));
        assert_eq!(expected, vec![1, 2, 3, 4], "every round of every item hit");

        // Passes carry 4, 3 and 2 beats (items retire as their rounds run out).  A cap of 8
        // admits all three (4, then 7, both under the cap) and cancels at the fourth boundary
        // with 9 beats spent.  An item retires on the pass AFTER its last beat (build returns
        // false), so by then only items 0 and 1 have retired: the prefix is 2.
        let mut capped_dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let run = scheduler.run_capped(&mut capped_dp, &mut staggered_query(&[1, 2, 3, 4]), 8);
        assert!(!run.complete);
        assert_eq!(run.beats, 9);
        assert_eq!(run.total, 4);
        assert_eq!(
            run.outputs,
            expected[..2],
            "the retired prefix is bit-identical to the uncapped run"
        );
        assert_eq!(scheduler.pooled_states(), 4);
    }

    #[test]
    fn finish_partial_extracts_a_true_prefix_from_a_cancelled_fused_run() {
        // On a stream that actually drained, finish_partial equals finish.
        let mut fused = FusedScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let mut drained = StreamRunner::new(toy_query(3, 2));
        let progress = fused.run_capped(&mut datapath, &mut [&mut drained], 0);
        assert_eq!(
            progress,
            CappedFusedRun {
                beats: 6,
                complete: true
            }
        );
        let (_, outputs, total) = drained.finish_partial();
        assert_eq!(outputs, vec![2; 3]);
        assert_eq!(total, 3);

        // A cancelled run leaves the stream mid-flight.  With rounds [1, 2, 3] and a cap of 4,
        // pass 1 (3 beats) executes, pass 2 (2 beats: item 0 retired) crosses the line at 5, and
        // the run cancels.  Item 1's final beat executed in pass 2, but it retires only on its
        // next build call — so the true prefix is item 0 alone.
        let mut capped_dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let mut stream = StreamRunner::new(staggered_query(&[1, 2, 3]));
        let progress = fused.run_capped(&mut capped_dp, &mut [&mut stream], 4);
        assert_eq!(
            progress,
            CappedFusedRun {
                beats: 5,
                complete: false
            }
        );
        let (_, outputs, total) = stream.finish_partial();
        assert_eq!(outputs, vec![1], "retirement lags issue by one pass");
        assert_eq!(total, 3);

        // The scalar round-robin reference discipline cancels at the same round boundary with
        // the same prefix — capped runs are mode-invariant.
        let mut reference_dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let mut reference = StreamRunner::new(staggered_query(&[1, 2, 3]));
        let progress = fused.run_reference_capped(&mut reference_dp, &mut [&mut reference], 4);
        assert_eq!(
            progress,
            CappedFusedRun {
                beats: 5,
                complete: false
            }
        );
        let (_, outputs, total) = reference.finish_partial();
        assert_eq!(outputs, vec![1]);
        assert_eq!(total, 3);
    }

    #[test]
    fn fused_streams_match_sequential_scheduling_and_share_passes() {
        // Sequential reference: each stream runs alone through the single-stream scheduler.
        let mut scheduler = WavefrontScheduler::new();
        let mut sequential_dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let expected_a = scheduler.run(&mut sequential_dp, &mut toy_query(7, 3));
        let expected_b = scheduler.run(
            &mut sequential_dp,
            &mut toy_query_of_kind(QueryKind::AnyHit, 4, 5),
        );

        // Fused: both streams share every pass of one datapath.
        let mut fused_dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let mut stream_a = StreamRunner::new(toy_query(7, 3));
        let mut stream_b = StreamRunner::new(toy_query_of_kind(QueryKind::AnyHit, 4, 5));
        let mut fused = FusedScheduler::new();
        fused.run(&mut fused_dp, &mut [&mut stream_a, &mut stream_b]);
        let (query_a, got_a) = stream_a.finish();
        let (query_b, got_b) = stream_b.finish();

        assert_eq!(got_a, expected_a);
        assert_eq!(got_b, expected_b);
        assert_eq!(query_a.built, 7 * 3);
        assert_eq!(query_b.built, 4 * 5);
        // The longer stream needs 5 passes; the shorter shares the first 3.
        assert_eq!(fused.last_run_passes(), 5);
        let mix = fused_dp.beat_mix();
        assert_eq!(mix.fused_passes(), 3, "the first three passes mix kinds");
        assert_eq!(
            mix.kind_total(QueryKind::ClosestHit),
            7 * 3,
            "per-kind attribution survives fusion"
        );
        assert_eq!(mix.kind_total(QueryKind::AnyHit), 4 * 5);
        assert_eq!(mix.total(), sequential_dp.beat_mix().total());
    }

    #[test]
    fn the_round_robin_reference_mode_matches_the_fused_run() {
        let streams = || {
            (
                StreamRunner::new(toy_query(5, 2)),
                StreamRunner::new(toy_query_of_kind(QueryKind::Distance, 3, 4)),
            )
        };
        let mut fused = FusedScheduler::new();

        let mut dp_a = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut a1, mut a2) = streams();
        fused.run(&mut dp_a, &mut [&mut a1, &mut a2]);

        let mut dp_b = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut b1, mut b2) = streams();
        fused.run_reference(&mut dp_b, &mut [&mut b1, &mut b2]);

        assert_eq!(a1.finish().1, b1.finish().1);
        assert_eq!(a2.finish().1, b2.finish().1);
        // Same beats, same attribution — only the dispatch style differs.
        assert_eq!(dp_a.executed_beats(), dp_b.executed_beats());
        for (kind, opcode, count) in dp_a.beat_mix().iter_kinds() {
            assert_eq!(dp_b.beat_mix().count_for(kind, opcode), count);
        }
        assert_eq!(dp_b.beat_mix().fused_passes(), 0, "no bulk passes at all");
    }

    #[test]
    fn a_beat_budget_reshapes_passes_without_changing_outputs() {
        let streams = || {
            (
                StreamRunner::new(toy_query(5, 3)),
                StreamRunner::new(toy_query_of_kind(QueryKind::AnyHit, 4, 2)),
            )
        };

        let mut unlimited = FusedScheduler::new();
        let mut dp_a = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut a1, mut a2) = streams();
        unlimited.run(&mut dp_a, &mut [&mut a1, &mut a2]);
        assert_eq!(unlimited.beat_budget(), 0);
        assert_eq!(unlimited.last_run_passes(), 3);
        assert_eq!(unlimited.last_run_stream_passes(), &[3, 2]);

        let mut strict = FusedScheduler::new().with_beat_budget(1);
        let mut dp_b = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut b1, mut b2) = streams();
        strict.run(&mut dp_b, &mut [&mut b1, &mut b2]);
        // One beat per stream per pass: the 15-beat stream needs 15 passes, the 8-beat stream
        // rides along in the first 8.
        assert_eq!(strict.last_run_passes(), 15);
        assert_eq!(strict.last_run_stream_passes(), &[15, 8]);

        // Same outputs, same beat totals — only the pass structure moved.
        assert_eq!(a1.finish().1, b1.finish().1);
        assert_eq!(a2.finish().1, b2.finish().1);
        assert_eq!(dp_a.executed_beats(), dp_b.executed_beats());
        assert!(
            dp_b.beat_mix().fused_passes() > 0,
            "streams still share passes"
        );
    }

    #[test]
    fn edf_admission_reorders_pass_segments_without_changing_outputs() {
        use crate::policy::AdmissionOrder;
        let streams = || {
            (
                StreamRunner::new(toy_query(5, 3)),
                StreamRunner::new(toy_query_of_kind(QueryKind::AnyHit, 4, 2)),
                StreamRunner::new(toy_query_of_kind(QueryKind::Collect, 3, 4)),
            )
        };

        let mut fifo = FusedScheduler::new();
        let mut dp_a = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut a1, mut a2, mut a3) = streams();
        fifo.run(&mut dp_a, &mut [&mut a1, &mut a2, &mut a3]);
        assert_eq!(fifo.last_run_admission(), &[0, 1, 2], "FIFO is identity");

        // Stream 2 carries the tightest deadline, stream 0 none at all — EDF issues 2, 1, 0.
        let mut edf =
            FusedScheduler::new().with_admission_order(AdmissionOrder::EarliestDeadlineFirst);
        edf.set_stream_deadlines(&[0, 900, 250]);
        let mut dp_b = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut b1, mut b2, mut b3) = streams();
        edf.run(&mut dp_b, &mut [&mut b1, &mut b2, &mut b3]);
        assert_eq!(
            edf.last_run_admission(),
            &[2, 1, 0],
            "deadline-carrying streams issue first, ascending; deadline 0 = none = last"
        );

        // Per-stream outputs, pass counts and beat totals are admission-order-invariant; only
        // segment issue order within each shared pass moved.
        assert_eq!(a1.finish().1, b1.finish().1);
        assert_eq!(a2.finish().1, b2.finish().1);
        assert_eq!(a3.finish().1, b3.finish().1);
        assert_eq!(fifo.last_run_passes(), edf.last_run_passes());
        assert_eq!(
            fifo.last_run_stream_passes(),
            edf.last_run_stream_passes(),
            "per-stream pass attribution stays keyed by stream index"
        );
        assert_eq!(dp_a.executed_beats(), dp_b.executed_beats());

        // EDF with no deadlines registered degenerates to FIFO (ties broken by index).
        let mut inert =
            FusedScheduler::new().with_admission_order(AdmissionOrder::EarliestDeadlineFirst);
        let mut dp_c = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut c1, mut c2, mut c3) = streams();
        inert.run(&mut dp_c, &mut [&mut c1, &mut c2, &mut c3]);
        assert_eq!(inert.last_run_admission(), &[0, 1, 2]);

        // The scalar round-robin reference honours the same ordering.
        let mut reference =
            FusedScheduler::new().with_admission_order(AdmissionOrder::EarliestDeadlineFirst);
        reference.set_stream_deadlines(&[0, 900, 250]);
        let mut dp_d = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut d1, mut d2, mut d3) = streams();
        reference.run_reference(&mut dp_d, &mut [&mut d1, &mut d2, &mut d3]);
        assert_eq!(reference.last_run_admission(), &[2, 1, 0]);
        assert_eq!(d1.finish().1, vec![3; 5], "reference outputs are unchanged");
    }

    #[test]
    fn empty_fused_runs_and_empty_streams_are_fine() {
        let mut fused = FusedScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        fused.run(&mut datapath, &mut []);
        assert_eq!(fused.last_run_passes(), 0);

        let mut empty = StreamRunner::new(toy_query(0, 4));
        let mut busy = StreamRunner::new(toy_query(3, 2));
        fused.run(&mut datapath, &mut [&mut empty, &mut busy]);
        assert_eq!(empty.finish().1.len(), 0);
        assert_eq!(busy.finish().1, vec![2; 3]);
        assert_eq!(datapath.executed_beats(), 6);
    }

    #[test]
    #[should_panic(expected = "run to completion")]
    fn finishing_an_unrun_stream_panics() {
        let runner = StreamRunner::new(toy_query(2, 1));
        let _ = runner.finish();
    }
}
