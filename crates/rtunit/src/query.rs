//! The generic batched query engine: one wavefront scheduler for every query kind the RT unit
//! supports.
//!
//! PR 1 introduced a throughput-oriented wavefront frontend for closest-hit traversal: keep a
//! whole stream of queries in flight, build one request buffer per pass, dispatch it through
//! [`RayFlexDatapath::execute_batch_into`] in bulk, apply the responses, repeat until every query
//! retires.  That scheduling core is independent of *what* is being queried — the same loop
//! drives closest-hit rays, any-hit/shadow rays, primary-ray rendering and distance scoring —
//! so this module extracts it into a reusable pair:
//!
//! * [`BatchQuery`] — the per-item state machine a query kind implements: how to initialise an
//!   item, which beats it wants next, how a response advances it, and what it yields when it
//!   retires;
//! * [`WavefrontScheduler`] — the engine that owns the pooled per-item states and the reusable
//!   request/response/ownership buffers and runs any [`BatchQuery`] to completion against a
//!   datapath.
//!
//! Consumers instantiate the scheduler once and reuse it: a steady-state stream performs no
//! per-item allocation, exactly as the hand-rolled wavefront loop did.  Because the scheduler
//! preserves each item's own beat order (an item's beats are built in sequence, and the beats an
//! item appends within one pass stay adjacent in the batch), every query kind retains the
//! semantics — and, where a scalar reference exists, the bit-identical results and statistics —
//! of its scalar drive loop.
//!
//! Multi-beat accumulator jobs (the Euclidean/cosine distance operations) are safe under
//! interleaving *between* items precisely because of that adjacency guarantee: a distance query
//! appends all beats of one candidate in a single [`BatchQuery::build`] call, so the shared
//! accumulator sees each candidate's beat train contiguously and resets at its end, no matter
//! how many unrelated items share the pass.
//!
//! On top of the single-stream scheduler sits the **fused** layer: [`FusedScheduler`] owns any
//! number of type-erased [`FusedStream`]s — heterogeneous query kinds wrapped in
//! [`StreamRunner`]s — and merges their per-pass beats into *shared mixed-opcode bulk passes*
//! over one datapath, demuxing the responses back per stream.  Because each stream's own
//! build/apply order is exactly what it would be under a private [`WavefrontScheduler`] run (the
//! fused pass merely concatenates per-stream segments, and no datapath state crosses segment
//! boundaries mid-item), every stream's outputs and statistics are bit-identical to sequential
//! scheduling — pinned by `rtunit/tests/proptest_fused.rs` and by the scalar round-robin
//! reference mode ([`FusedScheduler::run_reference`]).

use rayflex_core::{RayFlexDatapath, RayFlexRequest, RayFlexResponse};

pub use rayflex_core::QueryKind;

/// A batched query: a set of independent items, each advanced by datapath beats through a
/// per-item state machine.
///
/// The scheduler calls the methods in a fixed protocol, for each item `0..items()`:
///
/// 1. [`BatchQuery::reset`] once, on a pooled state of unknown previous content;
/// 2. [`BatchQuery::build`] once per pass while the item is active — append **at least one**
///    beat and return `true` to stay in flight, or append nothing and return `false` to retire
///    (beats appended by one call stay adjacent in the dispatched batch, in append order);
/// 3. [`BatchQuery::apply`] once per response to a beat the item appended, in append order;
/// 4. [`BatchQuery::finish`] once after the item retires, yielding its output.
///
/// Implementations update their own statistics (beat counts, node visits) inside `build`, which
/// keeps the per-item beat accounting identical to a scalar drive loop that issues the same
/// beats.
pub trait BatchQuery {
    /// Pooled per-item state.  `Default` provides the blank state the pool grows with; `reset`
    /// must fully re-initialise recycled states.
    type State: Default;
    /// What each item yields when it retires.
    type Output;

    /// The kind of query, for reports and diagnostics.
    fn kind(&self) -> QueryKind;

    /// Number of items in this run.
    fn items(&self) -> usize;

    /// Re-initialises a pooled state for `item`.
    fn reset(&mut self, item: usize, state: &mut Self::State);

    /// Appends the item's next beat(s) to `out` and returns `true`, or returns `false` (having
    /// appended nothing) to retire the item.
    fn build(
        &mut self,
        item: usize,
        state: &mut Self::State,
        out: &mut Vec<RayFlexRequest>,
    ) -> bool;

    /// Applies one response to a beat this item appended.
    fn apply(&mut self, item: usize, state: &mut Self::State, response: &RayFlexResponse);

    /// Extracts the item's output after it retired.
    fn finish(&mut self, item: usize, state: &mut Self::State) -> Self::Output;
}

/// The result of a deadline-capped scheduler run ([`WavefrontScheduler::run_capped`]): the
/// outputs of the longest fully-retired item prefix, plus how far the run got.
///
/// The prefix discipline makes a cancelled run safe to consume: an item either appears with its
/// complete output — bit-identical to what the uncapped run returns for it, because
/// cancellation never alters a surviving item's beat sequence — or not at all.  Items that
/// happened to retire beyond the first still-active item are discarded rather than surfaced out
/// of order.
#[derive(Debug)]
pub struct CappedRun<T> {
    /// Outputs of the retired prefix, in item order (`total` outputs when `complete`).
    pub outputs: Vec<T>,
    /// Items the run was admitted with.
    pub total: usize,
    /// Beats the run dispatched before finishing or cancelling.
    pub beats: u64,
    /// `true` when every item retired — the cap (if any) never fired.
    pub complete: bool,
}

/// Progress report of a deadline-capped fused run ([`FusedScheduler::run_capped`] /
/// [`FusedScheduler::run_reference_capped`]): how many beats the run spent and whether every
/// stream drained.  A cancelled run leaves its streams mid-flight; extract each stream's
/// completed prefix with [`StreamRunner::finish_partial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CappedFusedRun {
    /// Beats the run dispatched before finishing or cancelling.
    pub beats: u64,
    /// `true` when every stream drained — the cap (if any) never fired.
    pub complete: bool,
}

/// The wavefront scheduler: active-set management, pooled per-item state and reusable beat
/// buffers around [`RayFlexDatapath::execute_batch_into`], generic over the query kind.
///
/// One scheduler instance serves any number of runs; its pools and buffers amortise across them.
/// The type parameter is the pooled state, so an engine serving several query kinds with the
/// same state type (closest-hit and any-hit traversal, say) needs only one scheduler.
#[derive(Debug, Default)]
pub struct WavefrontScheduler<S> {
    /// Pooled per-item states, recycled across runs.
    pool: Vec<S>,
    /// Reusable request buffer: one batch per pass.
    requests: Vec<RayFlexRequest>,
    /// Reusable response buffer, parallel to `requests` after dispatch.
    responses: Vec<RayFlexResponse>,
    /// Item owning each in-flight beat (parallel to `requests`).
    beat_owner: Vec<usize>,
    /// Indices of items still in flight.
    active: Vec<usize>,
}

impl<S: Default> WavefrontScheduler<S> {
    /// Creates an empty scheduler (pools grow on first use).
    #[must_use]
    pub fn new() -> Self {
        WavefrontScheduler {
            pool: Vec::new(),
            requests: Vec::new(),
            responses: Vec::new(),
            beat_owner: Vec::new(),
            active: Vec::new(),
        }
    }

    /// Number of states currently parked in the pool (diagnostics / pooling tests).
    #[must_use]
    pub fn pooled_states(&self) -> usize {
        self.pool.len()
    }

    /// Runs `query` to completion against `datapath`, returning one output per item in item
    /// order.
    ///
    /// Every pass builds the beats of all active items into one request buffer, dispatches them
    /// in bulk, and applies the responses to the owning items.  Items retire in place; the run
    /// ends when no item is active.
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration (propagated from
    /// [`RayFlexDatapath::execute_batch_into`]).
    pub fn run<Q>(&mut self, datapath: &mut RayFlexDatapath, query: &mut Q) -> Vec<Q::Output>
    where
        Q: BatchQuery<State = S>,
    {
        self.run_capped(datapath, query, 0).outputs
    }

    /// Runs `query` like [`WavefrontScheduler::run`], but cooperatively cancels at the first
    /// pass boundary where the run has spent at least `max_total_beats` datapath beats
    /// (`0` disables the cap — the run is then identical to [`WavefrontScheduler::run`]).
    ///
    /// Cancellation is **cooperative**: the check sits at the top of the pass loop, so the pass
    /// in flight when the budget crosses the line completes, and the run may overshoot the cap
    /// by that pass's beats.  With a cap of at least one, the first pass always executes, so a
    /// capped run always makes forward progress.  A cancelled run yields the outputs of the
    /// longest fully-retired item prefix (see [`CappedRun`]); cancelled items' states never
    /// surface — a mid-flight traversal's "best hit so far" is not a result.
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration (propagated from
    /// [`RayFlexDatapath::execute_batch_into`]).
    pub fn run_capped<Q>(
        &mut self,
        datapath: &mut RayFlexDatapath,
        query: &mut Q,
        max_total_beats: u64,
    ) -> CappedRun<Q::Output>
    where
        Q: BatchQuery<State = S>,
    {
        let items = query.items();

        // Check out one pooled state per item.
        let mut states: Vec<S> = Vec::with_capacity(items);
        for item in 0..items {
            let mut state = self.pool.pop().unwrap_or_default();
            query.reset(item, &mut state);
            states.push(state);
        }

        self.active.clear();
        self.active.extend(0..items);

        let mut beats_spent = 0u64;
        let mut cancelled = false;
        while !self.active.is_empty() {
            // The pass boundary is the cooperative cancellation point of the deadline knob.
            if max_total_beats != 0 && beats_spent >= max_total_beats {
                cancelled = true;
                break;
            }

            // Build phase: each active item appends its next beat(s); items with no further
            // beats retire in place.
            self.requests.clear();
            self.beat_owner.clear();
            let mut still_active = 0;
            for slot in 0..self.active.len() {
                let item = self.active[slot];
                let before = self.requests.len();
                if query.build(item, &mut states[item], &mut self.requests) {
                    debug_assert!(
                        self.requests.len() > before,
                        "{} query item {item} stayed active without appending a beat",
                        query.kind()
                    );
                    self.beat_owner.resize(self.requests.len(), item);
                    self.active[still_active] = item;
                    still_active += 1;
                } else {
                    debug_assert_eq!(
                        self.requests.len(),
                        before,
                        "{} query item {item} appended beats while retiring",
                        query.kind()
                    );
                }
            }
            self.active.truncate(still_active);
            if self.requests.is_empty() {
                break;
            }
            beats_spent += self.requests.len() as u64;

            // One bulk dispatch for the whole pass, attributed to the query's kind in the
            // datapath's per-kind BeatMix table.
            datapath.execute_batch_segmented(
                &self.requests,
                &[(query.kind(), self.requests.len())],
                &mut self.responses,
            );

            // Apply phase: route each response to the item that owns the beat.
            for (response, &item) in self.responses.iter().zip(&self.beat_owner) {
                query.apply(item, &mut states[item], response);
            }
        }

        // The retired prefix ends at the first still-active item (the active list stays in
        // ascending item order: retirement compacts it in place without reordering).
        let retired_prefix = if cancelled {
            self.active.first().copied().unwrap_or(items)
        } else {
            items
        };

        // Collect the prefix outputs and return every state (finished or not) to the pool.
        let mut outputs = Vec::with_capacity(retired_prefix);
        for (item, mut state) in states.into_iter().enumerate() {
            if item < retired_prefix {
                outputs.push(query.finish(item, &mut state));
            }
            self.pool.push(state);
        }
        CappedRun {
            outputs,
            total: items,
            beats: beats_spent,
            complete: !cancelled,
        }
    }
}

/// A type-erased query stream inside a fused run: the object-safe face of a
/// [`StreamRunner`], which is how heterogeneous [`BatchQuery`] implementations (different state
/// and output types) share one [`FusedScheduler`] pass schedule.
///
/// The scheduler drives the protocol: [`FusedStream::start`] once, then per pass one
/// [`FusedStream::build_pass`] (append this stream's beats for the pass, returning how many) and
/// one [`FusedStream::apply_pass`] (consume exactly that many responses), until
/// [`FusedStream::is_active`] turns false.  Streams never see each other's beats.
pub trait FusedStream {
    /// The query kind of this stream, for pass-segment attribution.
    fn kind(&self) -> QueryKind;

    /// (Re-)initialises every item of the stream; called once when a fused run begins.
    fn start(&mut self);

    /// `true` while any item of the stream is still in flight.
    fn is_active(&self) -> bool;

    /// Appends the next beat(s) of active items to `out` (retiring items with no further beats)
    /// and returns the number of beats appended.
    ///
    /// `max_beats` is the scheduler's per-stream admission budget for this pass
    /// ([`FusedScheduler::set_beat_budget`]): `0` admits every active item, a positive
    /// budget stops admitting items once the pass segment holds at least that many beats.  An
    /// item's whole beat train is always admitted together (never split across passes), so the
    /// segment may overshoot the budget by the last admitted item's tail; items past the budget
    /// simply stay in flight, in order, for the next pass.  Budgeting changes *which pass*
    /// carries a beat, never an item's own beat sequence — outputs and per-stream statistics are
    /// budget-invariant.
    fn build_pass(&mut self, out: &mut Vec<RayFlexRequest>, max_beats: usize) -> usize;

    /// Applies the responses to the beats this stream appended in the matching
    /// [`FusedStream::build_pass`] call, in append order.
    fn apply_pass(&mut self, responses: &[RayFlexResponse]);
}

/// Owns one [`BatchQuery`] and its per-item states for the duration of a fused run, implementing
/// the type-erased [`FusedStream`] protocol over it.
///
/// A runner reproduces the [`WavefrontScheduler`] build/apply loop for its own query exactly —
/// same per-item beat order, same retire-in-place active set — so running several runners fused
/// yields per-stream results bit-identical to running each query alone.  After the run drains,
/// [`StreamRunner::finish`] yields the query back (for its statistics) together with one output
/// per item.
#[derive(Debug)]
pub struct StreamRunner<Q: BatchQuery> {
    query: Q,
    states: Vec<Q::State>,
    active: Vec<usize>,
    /// Item owning each beat of the current pass (cleared per pass).
    beat_owner: Vec<usize>,
    started: bool,
}

impl<Q: BatchQuery> StreamRunner<Q> {
    /// Wraps a query for fused scheduling.  Items are initialised lazily by
    /// [`FusedStream::start`] when a run begins.
    #[must_use]
    pub fn new(query: Q) -> Self {
        StreamRunner {
            query,
            states: Vec::new(),
            active: Vec::new(),
            beat_owner: Vec::new(),
            started: false,
        }
    }

    /// Extracts the query and one output per item after the run drained the stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream was never run or still has items in flight.
    #[must_use]
    pub fn finish(mut self) -> (Q, Vec<Q::Output>) {
        assert!(
            self.started && self.active.is_empty(),
            "a fused stream must be run to completion before finishing"
        );
        let outputs = self
            .states
            .iter_mut()
            .enumerate()
            .map(|(item, state)| self.query.finish(item, state))
            .collect();
        (self.query, outputs)
    }

    /// The partial-aware sibling of [`StreamRunner::finish`]: extracts the query, the outputs
    /// of the longest fully-retired item prefix, and the stream's total item count, after a
    /// deadline-capped run that may have cancelled the stream mid-flight
    /// ([`FusedScheduler::run_capped`]).
    ///
    /// Items still in flight never surface (their states hold mid-traversal partial answers);
    /// retired items *beyond* the first in-flight one are discarded so the result is a true
    /// prefix.  On a stream that actually drained, this equals [`StreamRunner::finish`].
    ///
    /// # Panics
    ///
    /// Panics if the stream was never run.
    #[must_use]
    pub fn finish_partial(mut self) -> (Q, Vec<Q::Output>, usize) {
        assert!(
            self.started,
            "a fused stream must be run before finishing partially"
        );
        let total = self.states.len();
        // The active list stays in ascending item order (compaction preserves relative order),
        // so the first active item bounds the retired prefix.
        let prefix = self.active.first().copied().unwrap_or(total);
        let outputs = self.states[..prefix]
            .iter_mut()
            .enumerate()
            .map(|(item, state)| self.query.finish(item, state))
            .collect();
        (self.query, outputs, total)
    }
}

impl<Q: BatchQuery> FusedStream for StreamRunner<Q> {
    fn kind(&self) -> QueryKind {
        self.query.kind()
    }

    fn start(&mut self) {
        let items = self.query.items();
        self.states.clear();
        self.states.resize_with(items, Q::State::default);
        for (item, state) in self.states.iter_mut().enumerate() {
            self.query.reset(item, state);
        }
        self.active.clear();
        self.active.extend(0..items);
        self.started = true;
    }

    fn is_active(&self) -> bool {
        !self.active.is_empty()
    }

    fn build_pass(&mut self, out: &mut Vec<RayFlexRequest>, max_beats: usize) -> usize {
        let pass_start = out.len();
        self.beat_owner.clear();
        let total = self.active.len();
        let mut still_active = 0;
        let mut processed = 0;
        while processed < total {
            // Budget admission: stop (leaving the rest of the active list untouched, in order)
            // once this pass's segment reached the per-stream beat budget.
            if max_beats != 0 && out.len() - pass_start >= max_beats {
                break;
            }
            let item = self.active[processed];
            let before = out.len();
            if self.query.build(item, &mut self.states[item], out) {
                debug_assert!(
                    out.len() > before,
                    "{} stream item {item} stayed active without appending a beat",
                    self.query.kind()
                );
                self.beat_owner.resize(out.len() - pass_start, item);
                self.active[still_active] = item;
                still_active += 1;
            } else {
                debug_assert_eq!(
                    out.len(),
                    before,
                    "{} stream item {item} appended beats while retiring",
                    self.query.kind()
                );
            }
            processed += 1;
        }
        // Compact: survivors of the processed prefix, then the unprocessed (budget-deferred)
        // suffix — relative item order is preserved either way.
        if processed < total {
            self.active.copy_within(processed..total, still_active);
        }
        self.active.truncate(still_active + (total - processed));
        out.len() - pass_start
    }

    fn apply_pass(&mut self, responses: &[RayFlexResponse]) {
        debug_assert_eq!(responses.len(), self.beat_owner.len());
        for (response, &item) in responses.iter().zip(&self.beat_owner) {
            self.query.apply(item, &mut self.states[item], response);
        }
    }
}

/// Implements [`FusedStream`] for a public stream wrapper by delegating every method to its
/// `runner: StreamRunner<_>` field (which implements the trait itself).  The traversal, distance
/// and collection wrappers all forward identically; the macro keeps the protocol in one place.
/// Use the bracketed form to introduce generic parameters:
/// `delegate_fused_stream_to_runner!([C: AsRef<[f32]>] DistanceStream<'_, C>);`.
macro_rules! delegate_fused_stream_to_runner {
    ([$($generics:tt)*] $ty:ty) => {
        impl<$($generics)*> $crate::query::FusedStream for $ty {
            fn kind(&self) -> $crate::query::QueryKind {
                $crate::query::FusedStream::kind(&self.runner)
            }
            fn start(&mut self) {
                $crate::query::FusedStream::start(&mut self.runner);
            }
            fn is_active(&self) -> bool {
                $crate::query::FusedStream::is_active(&self.runner)
            }
            fn build_pass(
                &mut self,
                out: &mut Vec<rayflex_core::RayFlexRequest>,
                max_beats: usize,
            ) -> usize {
                $crate::query::FusedStream::build_pass(&mut self.runner, out, max_beats)
            }
            fn apply_pass(&mut self, responses: &[rayflex_core::RayFlexResponse]) {
                $crate::query::FusedStream::apply_pass(&mut self.runner, responses);
            }
        }
    };
    ($ty:ty) => {
        $crate::query::delegate_fused_stream_to_runner!([] $ty);
    };
}
pub(crate) use delegate_fused_stream_to_runner;

/// The fused multi-stream scheduler: merges the per-pass beats of N concurrent query streams —
/// of *different* query kinds — into shared mixed-opcode bulk passes over a single datapath, and
/// demuxes the responses back per stream.
///
/// This is the software model of the paper's unified RT unit (§V-A) under a realistic
/// multi-workload mix: one datapath time-multiplexes a closest-hit bounce stream, its shadow
/// rays, distance scoring and BVH candidate collection within the *same* passes, instead of each
/// workload getting an exclusive pass sequence.  Scheduling rules:
///
/// * **Stream admission** — all streams of a run are admitted up front ([`FusedScheduler::run`]
///   takes the full set) and started together; a stream that drains early simply stops
///   contributing beats while the others continue.  With a **per-stream beat budget**
///   ([`FusedScheduler::set_beat_budget`], the [`ExecPolicy`](crate::ExecPolicy) fairness knob),
///   each stream contributes at most that many beats per pass — `1` models strict round-robin
///   QoS between concurrent workloads, `0` the classic unlimited discipline — without changing
///   any stream's outputs or statistics (only the pass structure moves).
/// * **Pass merging** — each pass concatenates the streams' beat segments in admission order
///   into one request buffer and dispatches it with a single
///   [`RayFlexDatapath::execute_batch_segmented`] call, which attributes every beat to its
///   stream's [`QueryKind`] in the per-kind `BeatMix` table (and counts the pass as *fused* when
///   at least two kinds contributed).
/// * **Per-stream bit-identity** — a stream's own beat order is untouched by fusion (segments
///   are contiguous, items never interleave within a `build` call, and the datapath carries no
///   state across beats except the distance accumulators, whose beat trains stay contiguous
///   inside one segment), so outputs and per-stream statistics equal sequential scheduling
///   exactly.
///
/// The buffers are reusable across runs; a steady-state fused workload performs no per-pass
/// allocation.
#[derive(Debug, Default)]
pub struct FusedScheduler {
    /// Reusable merged request buffer: one mixed-kind batch per pass.
    requests: Vec<RayFlexRequest>,
    /// Reusable response buffer, parallel to `requests` after dispatch.
    responses: Vec<RayFlexResponse>,
    /// `(kind, beat_count)` per stream for the current pass, in admission order.
    segments: Vec<(QueryKind, usize)>,
    /// Per-stream beat budget per pass (`0` = unlimited); see
    /// [`FusedScheduler::set_beat_budget`].
    beat_budget_per_stream: usize,
    /// Passes dispatched by the most recent run.
    last_run_passes: u64,
    /// Passes each stream contributed at least one beat to, in admission order, for the most
    /// recent run.
    stream_passes: Vec<u64>,
}

impl FusedScheduler {
    /// Creates an empty fused scheduler (buffers grow on first use, no beat budget).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder form of [`FusedScheduler::set_beat_budget`].
    #[must_use]
    pub fn with_beat_budget(mut self, beats_per_stream_per_pass: usize) -> Self {
        self.set_beat_budget(beats_per_stream_per_pass);
        self
    }

    /// Sets the per-stream admission budget: the maximum beats any one stream contributes to one
    /// shared pass.  `0` (the default) admits every active item each pass; `1` is strict
    /// round-robin — each stream advances one item's beat train per pass.  An item's beat train
    /// is never split, so a segment may overshoot the budget by the last train's tail.  The
    /// budget is pure pass-structure fairness: per-stream outputs and statistics are identical
    /// at every budget (pinned by `rtunit/tests/proptest_policy.rs`).
    pub fn set_beat_budget(&mut self, beats_per_stream_per_pass: usize) {
        self.beat_budget_per_stream = beats_per_stream_per_pass;
    }

    /// The configured per-stream beat budget (`0` = unlimited).
    #[must_use]
    pub fn beat_budget(&self) -> usize {
        self.beat_budget_per_stream
    }

    /// Number of bulk passes the most recent run dispatched (diagnostics).
    #[must_use]
    pub fn last_run_passes(&self) -> u64 {
        self.last_run_passes
    }

    /// How many passes each stream of the most recent run contributed at least one beat to, in
    /// admission order — the per-stream fairness fingerprint a beat budget reshapes (reported by
    /// the fused benchmark suite).
    #[must_use]
    pub fn last_run_stream_passes(&self) -> &[u64] {
        &self.stream_passes
    }

    /// Runs every stream to completion against `datapath`, merging their beats into shared bulk
    /// passes.  After this returns, each [`StreamRunner`] holds its finished items; call
    /// [`StreamRunner::finish`] to extract the outputs.
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration.
    pub fn run(&mut self, datapath: &mut RayFlexDatapath, streams: &mut [&mut dyn FusedStream]) {
        let progress = self.run_capped(datapath, streams, 0);
        debug_assert!(progress.complete, "an uncapped fused run always completes");
    }

    /// Runs the streams like [`FusedScheduler::run`], but cooperatively cancels at the first
    /// shared-pass boundary where the run has spent at least `max_total_beats` datapath beats
    /// (`0` disables the cap).  The first pass always executes; a cancelled run leaves streams
    /// mid-flight — extract each stream's completed prefix with [`StreamRunner::finish_partial`].
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration.
    pub fn run_capped(
        &mut self,
        datapath: &mut RayFlexDatapath,
        streams: &mut [&mut dyn FusedStream],
        max_total_beats: u64,
    ) -> CappedFusedRun {
        for stream in streams.iter_mut() {
            stream.start();
        }
        self.last_run_passes = 0;
        self.stream_passes.clear();
        self.stream_passes.resize(streams.len(), 0);
        let mut beats_spent = 0u64;
        while streams.iter().any(|stream| stream.is_active()) {
            // The shared-pass boundary is the cooperative cancellation point.
            if max_total_beats != 0 && beats_spent >= max_total_beats {
                return CappedFusedRun {
                    beats: beats_spent,
                    complete: false,
                };
            }

            // Build phase: every stream appends its (budget-limited) segment of the merged pass.
            self.requests.clear();
            self.segments.clear();
            for (index, stream) in streams.iter_mut().enumerate() {
                let beats = stream.build_pass(&mut self.requests, self.beat_budget_per_stream);
                self.segments.push((stream.kind(), beats));
                self.stream_passes[index] += u64::from(beats > 0);
            }
            if self.requests.is_empty() {
                // Every remaining item retired during the build (beatless drains exist — a
                // collection item whose whole subtree is leaves, say).
                break;
            }
            self.last_run_passes += 1;
            beats_spent += self.requests.len() as u64;

            // One bulk dispatch for the merged mixed-kind pass.
            datapath.execute_batch_segmented(&self.requests, &self.segments, &mut self.responses);

            // Demux phase: hand each stream its contiguous slice of the responses.
            let mut offset = 0;
            for (stream, &(_, beats)) in streams.iter_mut().zip(&self.segments) {
                stream.apply_pass(&self.responses[offset..offset + beats]);
                offset += beats;
            }
        }
        CappedFusedRun {
            beats: beats_spent,
            complete: true,
        }
    }

    /// The scalar round-robin reference mode of [`FusedScheduler::run`]: the same pass schedule
    /// (including the configured beat budget) and the same per-stream beat orders, but every
    /// beat executes one at a time through the register-accurate emulated path
    /// ([`RayFlexDatapath::execute_attributed`]) with the streams taking turns pass by pass — no
    /// bulk dispatch at all.
    ///
    /// Per-stream outputs and statistics are bit-identical to [`FusedScheduler::run`] (the
    /// fast batched model and the emulated model are bit-equal by `core`'s property tests, and
    /// the beat order is the same), which is what the fused property tests pin.  Beats executed
    /// here count toward the per-kind `BeatMix` attribution but not toward pass counters.
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration.
    pub fn run_reference(
        &mut self,
        datapath: &mut RayFlexDatapath,
        streams: &mut [&mut dyn FusedStream],
    ) {
        let progress = self.run_reference_capped(datapath, streams, 0);
        debug_assert!(
            progress.complete,
            "an uncapped reference run always completes"
        );
    }

    /// The deadline-capped sibling of [`FusedScheduler::run_reference`]: the same scalar
    /// round-robin schedule, cooperatively cancelled at the first round boundary where the run
    /// has spent at least `max_total_beats` emulated beats (`0` disables the cap).  Used as the
    /// capped [`ScalarReference`](crate::ExecMode::ScalarReference) discipline so scalar and
    /// batched capped runs share the same pass-boundary cancellation semantics.
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration.
    pub fn run_reference_capped(
        &mut self,
        datapath: &mut RayFlexDatapath,
        streams: &mut [&mut dyn FusedStream],
        max_total_beats: u64,
    ) -> CappedFusedRun {
        for stream in streams.iter_mut() {
            stream.start();
        }
        self.last_run_passes = 0;
        self.stream_passes.clear();
        self.stream_passes.resize(streams.len(), 0);
        let mut beats_spent = 0u64;
        let mut responses: Vec<RayFlexResponse> = Vec::new();
        while streams.iter().any(|stream| stream.is_active()) {
            // The round boundary is the reference discipline's pass boundary.
            if max_total_beats != 0 && beats_spent >= max_total_beats {
                return CappedFusedRun {
                    beats: beats_spent,
                    complete: false,
                };
            }
            // Round-robin: each stream in turn builds its (budget-limited) pass segment and has
            // it executed beat by beat before the next stream takes over.  The scheduler-side
            // pass accounting mirrors `run` (one scheduled round = one pass, per-stream
            // contributions counted) even though the datapath's own bulk-pass counters stay at
            // zero — no bulk dispatch ever happens here.
            let mut round_had_beats = false;
            for (index, stream) in streams.iter_mut().enumerate() {
                self.requests.clear();
                let beats = stream.build_pass(&mut self.requests, self.beat_budget_per_stream);
                if beats == 0 {
                    continue;
                }
                round_had_beats = true;
                self.stream_passes[index] += 1;
                beats_spent += beats as u64;
                responses.clear();
                for request in &self.requests {
                    responses.push(datapath.execute_attributed(request, stream.kind()));
                }
                stream.apply_pass(&responses);
            }
            self.last_run_passes += u64::from(round_had_beats);
        }
        CappedFusedRun {
            beats: beats_spent,
            complete: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_core::PipelineConfig;
    use rayflex_geometry::{Aabb, Ray, Vec3};

    /// A toy query: each item tests its ray against one box per pass, for `rounds` passes, and
    /// counts hits.
    struct CountingQuery {
        kind: QueryKind,
        rays: Vec<Ray>,
        boxes: [Aabb; 4],
        rounds: usize,
        built: usize,
    }

    #[derive(Debug, Default)]
    struct CountingState {
        remaining: usize,
        hits: usize,
    }

    impl BatchQuery for CountingQuery {
        type State = CountingState;
        type Output = usize;

        fn kind(&self) -> QueryKind {
            self.kind
        }

        fn items(&self) -> usize {
            self.rays.len()
        }

        fn reset(&mut self, _item: usize, state: &mut CountingState) {
            state.remaining = self.rounds;
            state.hits = 0;
        }

        fn build(
            &mut self,
            item: usize,
            state: &mut CountingState,
            out: &mut Vec<RayFlexRequest>,
        ) -> bool {
            if state.remaining == 0 {
                return false;
            }
            state.remaining -= 1;
            self.built += 1;
            out.push(RayFlexRequest::ray_box(
                item as u64,
                &self.rays[item],
                &self.boxes,
            ));
            true
        }

        fn apply(&mut self, _item: usize, state: &mut CountingState, response: &RayFlexResponse) {
            let result = response.box_result.expect("box beat");
            state.hits += usize::from(result.hit[0]);
        }

        fn finish(&mut self, _item: usize, state: &mut CountingState) -> usize {
            state.hits
        }
    }

    fn toy_query(rays: usize, rounds: usize) -> CountingQuery {
        toy_query_of_kind(QueryKind::ClosestHit, rays, rounds)
    }

    fn toy_query_of_kind(kind: QueryKind, rays: usize, rounds: usize) -> CountingQuery {
        CountingQuery {
            kind,
            rays: (0..rays)
                .map(|i| {
                    Ray::new(
                        Vec3::new(i as f32 * 0.1, 0.0, -5.0),
                        Vec3::new(0.0, 0.0, 1.0),
                    )
                })
                .collect(),
            boxes: [Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0)); 4],
            rounds,
            built: 0,
        }
    }

    #[test]
    fn the_scheduler_runs_every_item_to_completion() {
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let mut query = toy_query(9, 3);
        let outputs = scheduler.run(&mut datapath, &mut query);
        assert_eq!(outputs, vec![3; 9], "every round of every item hit");
        assert_eq!(query.built, 9 * 3);
        assert_eq!(datapath.executed_beats(), 9 * 3);
    }

    #[test]
    fn states_return_to_the_pool_and_are_recycled() {
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let first = scheduler.run(&mut datapath, &mut toy_query(6, 2));
        assert_eq!(scheduler.pooled_states(), 6);
        let second = scheduler.run(&mut datapath, &mut toy_query(6, 2));
        assert_eq!(first, second);
        assert_eq!(scheduler.pooled_states(), 6, "states recycled, not leaked");
    }

    #[test]
    fn empty_runs_are_fine() {
        let mut scheduler: WavefrontScheduler<CountingState> = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let outputs = scheduler.run(&mut datapath, &mut toy_query(0, 5));
        assert!(outputs.is_empty());
        assert_eq!(datapath.executed_beats(), 0);
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::BTreeSet<_> =
            QueryKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), QueryKind::ALL.len());
        assert_eq!(QueryKind::AnyHit.to_string(), "any-hit");
    }

    /// Like the toy query but with a per-item round count, so items retire on different passes —
    /// the shape a capped run needs to expose a nontrivial retired prefix.
    struct StaggeredQuery {
        rays: Vec<Ray>,
        boxes: [Aabb; 4],
        rounds: Vec<usize>,
    }

    impl BatchQuery for StaggeredQuery {
        type State = CountingState;
        type Output = usize;

        fn kind(&self) -> QueryKind {
            QueryKind::ClosestHit
        }

        fn items(&self) -> usize {
            self.rays.len()
        }

        fn reset(&mut self, item: usize, state: &mut CountingState) {
            state.remaining = self.rounds[item];
            state.hits = 0;
        }

        fn build(
            &mut self,
            item: usize,
            state: &mut CountingState,
            out: &mut Vec<RayFlexRequest>,
        ) -> bool {
            if state.remaining == 0 {
                return false;
            }
            state.remaining -= 1;
            out.push(RayFlexRequest::ray_box(
                item as u64,
                &self.rays[item],
                &self.boxes,
            ));
            true
        }

        fn apply(&mut self, _item: usize, state: &mut CountingState, response: &RayFlexResponse) {
            let result = response.box_result.expect("box beat");
            state.hits += usize::from(result.hit[0]);
        }

        fn finish(&mut self, _item: usize, state: &mut CountingState) -> usize {
            state.hits
        }
    }

    fn staggered_query(rounds: &[usize]) -> StaggeredQuery {
        StaggeredQuery {
            rays: (0..rounds.len())
                .map(|i| {
                    Ray::new(
                        Vec3::new(i as f32 * 0.1, 0.0, -5.0),
                        Vec3::new(0.0, 0.0, 1.0),
                    )
                })
                .collect(),
            boxes: [Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0)); 4],
            rounds: rounds.to_vec(),
        }
    }

    #[test]
    fn an_uncapped_run_capped_call_is_the_plain_run() {
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let run = scheduler.run_capped(&mut datapath, &mut toy_query(6, 2), 0);
        assert!(run.complete, "a zero cap disables the deadline entirely");
        assert_eq!(run.outputs, vec![2; 6]);
        assert_eq!(run.total, 6);
        assert_eq!(run.beats, 12);
    }

    #[test]
    fn a_capped_lockstep_run_cancels_with_an_empty_prefix() {
        // Nine items in lockstep: every pass carries nine beats.  A cap of 10 lets pass 1 (9
        // beats) through, admits pass 2 (9 < 10), and cancels at the pass-3 boundary with 18
        // beats spent — the pass in flight when the budget crosses the line always completes.
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let run = scheduler.run_capped(&mut datapath, &mut toy_query(9, 3), 10);
        assert!(!run.complete);
        assert_eq!(
            run.beats, 18,
            "cancellation overshoots by the pass in flight"
        );
        assert_eq!(run.total, 9);
        assert!(
            run.outputs.is_empty(),
            "lockstep items are all still in flight: the retired prefix is empty"
        );
        assert_eq!(
            scheduler.pooled_states(),
            9,
            "cancelled items' states still return to the pool"
        );
    }

    #[test]
    fn a_capped_staggered_run_yields_the_retired_prefix() {
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let expected = scheduler.run(&mut datapath, &mut staggered_query(&[1, 2, 3, 4]));
        assert_eq!(expected, vec![1, 2, 3, 4], "every round of every item hit");

        // Passes carry 4, 3 and 2 beats (items retire as their rounds run out).  A cap of 8
        // admits all three (4, then 7, both under the cap) and cancels at the fourth boundary
        // with 9 beats spent.  An item retires on the pass AFTER its last beat (build returns
        // false), so by then only items 0 and 1 have retired: the prefix is 2.
        let mut capped_dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let run = scheduler.run_capped(&mut capped_dp, &mut staggered_query(&[1, 2, 3, 4]), 8);
        assert!(!run.complete);
        assert_eq!(run.beats, 9);
        assert_eq!(run.total, 4);
        assert_eq!(
            run.outputs,
            expected[..2],
            "the retired prefix is bit-identical to the uncapped run"
        );
        assert_eq!(scheduler.pooled_states(), 4);
    }

    #[test]
    fn finish_partial_extracts_a_true_prefix_from_a_cancelled_fused_run() {
        // On a stream that actually drained, finish_partial equals finish.
        let mut fused = FusedScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let mut drained = StreamRunner::new(toy_query(3, 2));
        let progress = fused.run_capped(&mut datapath, &mut [&mut drained], 0);
        assert_eq!(
            progress,
            CappedFusedRun {
                beats: 6,
                complete: true
            }
        );
        let (_, outputs, total) = drained.finish_partial();
        assert_eq!(outputs, vec![2; 3]);
        assert_eq!(total, 3);

        // A cancelled run leaves the stream mid-flight.  With rounds [1, 2, 3] and a cap of 4,
        // pass 1 (3 beats) executes, pass 2 (2 beats: item 0 retired) crosses the line at 5, and
        // the run cancels.  Item 1's final beat executed in pass 2, but it retires only on its
        // next build call — so the true prefix is item 0 alone.
        let mut capped_dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let mut stream = StreamRunner::new(staggered_query(&[1, 2, 3]));
        let progress = fused.run_capped(&mut capped_dp, &mut [&mut stream], 4);
        assert_eq!(
            progress,
            CappedFusedRun {
                beats: 5,
                complete: false
            }
        );
        let (_, outputs, total) = stream.finish_partial();
        assert_eq!(outputs, vec![1], "retirement lags issue by one pass");
        assert_eq!(total, 3);

        // The scalar round-robin reference discipline cancels at the same round boundary with
        // the same prefix — capped runs are mode-invariant.
        let mut reference_dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let mut reference = StreamRunner::new(staggered_query(&[1, 2, 3]));
        let progress = fused.run_reference_capped(&mut reference_dp, &mut [&mut reference], 4);
        assert_eq!(
            progress,
            CappedFusedRun {
                beats: 5,
                complete: false
            }
        );
        let (_, outputs, total) = reference.finish_partial();
        assert_eq!(outputs, vec![1]);
        assert_eq!(total, 3);
    }

    #[test]
    fn fused_streams_match_sequential_scheduling_and_share_passes() {
        // Sequential reference: each stream runs alone through the single-stream scheduler.
        let mut scheduler = WavefrontScheduler::new();
        let mut sequential_dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let expected_a = scheduler.run(&mut sequential_dp, &mut toy_query(7, 3));
        let expected_b = scheduler.run(
            &mut sequential_dp,
            &mut toy_query_of_kind(QueryKind::AnyHit, 4, 5),
        );

        // Fused: both streams share every pass of one datapath.
        let mut fused_dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let mut stream_a = StreamRunner::new(toy_query(7, 3));
        let mut stream_b = StreamRunner::new(toy_query_of_kind(QueryKind::AnyHit, 4, 5));
        let mut fused = FusedScheduler::new();
        fused.run(&mut fused_dp, &mut [&mut stream_a, &mut stream_b]);
        let (query_a, got_a) = stream_a.finish();
        let (query_b, got_b) = stream_b.finish();

        assert_eq!(got_a, expected_a);
        assert_eq!(got_b, expected_b);
        assert_eq!(query_a.built, 7 * 3);
        assert_eq!(query_b.built, 4 * 5);
        // The longer stream needs 5 passes; the shorter shares the first 3.
        assert_eq!(fused.last_run_passes(), 5);
        let mix = fused_dp.beat_mix();
        assert_eq!(mix.fused_passes(), 3, "the first three passes mix kinds");
        assert_eq!(
            mix.kind_total(QueryKind::ClosestHit),
            7 * 3,
            "per-kind attribution survives fusion"
        );
        assert_eq!(mix.kind_total(QueryKind::AnyHit), 4 * 5);
        assert_eq!(mix.total(), sequential_dp.beat_mix().total());
    }

    #[test]
    fn the_round_robin_reference_mode_matches_the_fused_run() {
        let streams = || {
            (
                StreamRunner::new(toy_query(5, 2)),
                StreamRunner::new(toy_query_of_kind(QueryKind::Distance, 3, 4)),
            )
        };
        let mut fused = FusedScheduler::new();

        let mut dp_a = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut a1, mut a2) = streams();
        fused.run(&mut dp_a, &mut [&mut a1, &mut a2]);

        let mut dp_b = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut b1, mut b2) = streams();
        fused.run_reference(&mut dp_b, &mut [&mut b1, &mut b2]);

        assert_eq!(a1.finish().1, b1.finish().1);
        assert_eq!(a2.finish().1, b2.finish().1);
        // Same beats, same attribution — only the dispatch style differs.
        assert_eq!(dp_a.executed_beats(), dp_b.executed_beats());
        for (kind, opcode, count) in dp_a.beat_mix().iter_kinds() {
            assert_eq!(dp_b.beat_mix().count_for(kind, opcode), count);
        }
        assert_eq!(dp_b.beat_mix().fused_passes(), 0, "no bulk passes at all");
    }

    #[test]
    fn a_beat_budget_reshapes_passes_without_changing_outputs() {
        let streams = || {
            (
                StreamRunner::new(toy_query(5, 3)),
                StreamRunner::new(toy_query_of_kind(QueryKind::AnyHit, 4, 2)),
            )
        };

        let mut unlimited = FusedScheduler::new();
        let mut dp_a = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut a1, mut a2) = streams();
        unlimited.run(&mut dp_a, &mut [&mut a1, &mut a2]);
        assert_eq!(unlimited.beat_budget(), 0);
        assert_eq!(unlimited.last_run_passes(), 3);
        assert_eq!(unlimited.last_run_stream_passes(), &[3, 2]);

        let mut strict = FusedScheduler::new().with_beat_budget(1);
        let mut dp_b = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let (mut b1, mut b2) = streams();
        strict.run(&mut dp_b, &mut [&mut b1, &mut b2]);
        // One beat per stream per pass: the 15-beat stream needs 15 passes, the 8-beat stream
        // rides along in the first 8.
        assert_eq!(strict.last_run_passes(), 15);
        assert_eq!(strict.last_run_stream_passes(), &[15, 8]);

        // Same outputs, same beat totals — only the pass structure moved.
        assert_eq!(a1.finish().1, b1.finish().1);
        assert_eq!(a2.finish().1, b2.finish().1);
        assert_eq!(dp_a.executed_beats(), dp_b.executed_beats());
        assert!(
            dp_b.beat_mix().fused_passes() > 0,
            "streams still share passes"
        );
    }

    #[test]
    fn empty_fused_runs_and_empty_streams_are_fine() {
        let mut fused = FusedScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        fused.run(&mut datapath, &mut []);
        assert_eq!(fused.last_run_passes(), 0);

        let mut empty = StreamRunner::new(toy_query(0, 4));
        let mut busy = StreamRunner::new(toy_query(3, 2));
        fused.run(&mut datapath, &mut [&mut empty, &mut busy]);
        assert_eq!(empty.finish().1.len(), 0);
        assert_eq!(busy.finish().1, vec![2; 3]);
        assert_eq!(datapath.executed_beats(), 6);
    }

    #[test]
    #[should_panic(expected = "run to completion")]
    fn finishing_an_unrun_stream_panics() {
        let runner = StreamRunner::new(toy_query(2, 1));
        let _ = runner.finish();
    }
}
