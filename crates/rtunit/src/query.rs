//! The generic batched query engine: one wavefront scheduler for every query kind the RT unit
//! supports.
//!
//! PR 1 introduced a throughput-oriented wavefront frontend for closest-hit traversal: keep a
//! whole stream of queries in flight, build one request buffer per pass, dispatch it through
//! [`RayFlexDatapath::execute_batch_into`] in bulk, apply the responses, repeat until every query
//! retires.  That scheduling core is independent of *what* is being queried — the same loop
//! drives closest-hit rays, any-hit/shadow rays, primary-ray rendering and distance scoring —
//! so this module extracts it into a reusable pair:
//!
//! * [`BatchQuery`] — the per-item state machine a query kind implements: how to initialise an
//!   item, which beats it wants next, how a response advances it, and what it yields when it
//!   retires;
//! * [`WavefrontScheduler`] — the engine that owns the pooled per-item states and the reusable
//!   request/response/ownership buffers and runs any [`BatchQuery`] to completion against a
//!   datapath.
//!
//! Consumers instantiate the scheduler once and reuse it: a steady-state stream performs no
//! per-item allocation, exactly as the hand-rolled wavefront loop did.  Because the scheduler
//! preserves each item's own beat order (an item's beats are built in sequence, and the beats an
//! item appends within one pass stay adjacent in the batch), every query kind retains the
//! semantics — and, where a scalar reference exists, the bit-identical results and statistics —
//! of its scalar drive loop.
//!
//! Multi-beat accumulator jobs (the Euclidean/cosine distance operations) are safe under
//! interleaving *between* items precisely because of that adjacency guarantee: a distance query
//! appends all beats of one candidate in a single [`BatchQuery::build`] call, so the shared
//! accumulator sees each candidate's beat train contiguously and resets at its end, no matter
//! how many unrelated items share the pass.

use rayflex_core::{RayFlexDatapath, RayFlexRequest, RayFlexResponse};

/// The query kinds the RT unit runs through the wavefront scheduler (see the `DESIGN.md` table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Closest-hit traversal: find the nearest primitive intersection along a ray.
    ClosestHit,
    /// Any-hit / shadow traversal: terminate a ray on its first accepted intersection.
    AnyHit,
    /// Distance scoring: squared-Euclidean or cosine distance of candidate vectors to a query.
    Distance,
}

impl QueryKind {
    /// A short lowercase name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::ClosestHit => "closest-hit",
            QueryKind::AnyHit => "any-hit",
            QueryKind::Distance => "distance",
        }
    }
}

impl core::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A batched query: a set of independent items, each advanced by datapath beats through a
/// per-item state machine.
///
/// The scheduler calls the methods in a fixed protocol, for each item `0..items()`:
///
/// 1. [`BatchQuery::reset`] once, on a pooled state of unknown previous content;
/// 2. [`BatchQuery::build`] once per pass while the item is active — append **at least one**
///    beat and return `true` to stay in flight, or append nothing and return `false` to retire
///    (beats appended by one call stay adjacent in the dispatched batch, in append order);
/// 3. [`BatchQuery::apply`] once per response to a beat the item appended, in append order;
/// 4. [`BatchQuery::finish`] once after the item retires, yielding its output.
///
/// Implementations update their own statistics (beat counts, node visits) inside `build`, which
/// keeps the per-item beat accounting identical to a scalar drive loop that issues the same
/// beats.
pub trait BatchQuery {
    /// Pooled per-item state.  `Default` provides the blank state the pool grows with; `reset`
    /// must fully re-initialise recycled states.
    type State: Default;
    /// What each item yields when it retires.
    type Output;

    /// The kind of query, for reports and diagnostics.
    fn kind(&self) -> QueryKind;

    /// Number of items in this run.
    fn items(&self) -> usize;

    /// Re-initialises a pooled state for `item`.
    fn reset(&mut self, item: usize, state: &mut Self::State);

    /// Appends the item's next beat(s) to `out` and returns `true`, or returns `false` (having
    /// appended nothing) to retire the item.
    fn build(
        &mut self,
        item: usize,
        state: &mut Self::State,
        out: &mut Vec<RayFlexRequest>,
    ) -> bool;

    /// Applies one response to a beat this item appended.
    fn apply(&mut self, item: usize, state: &mut Self::State, response: &RayFlexResponse);

    /// Extracts the item's output after it retired.
    fn finish(&mut self, item: usize, state: &mut Self::State) -> Self::Output;
}

/// The wavefront scheduler: active-set management, pooled per-item state and reusable beat
/// buffers around [`RayFlexDatapath::execute_batch_into`], generic over the query kind.
///
/// One scheduler instance serves any number of runs; its pools and buffers amortise across them.
/// The type parameter is the pooled state, so an engine serving several query kinds with the
/// same state type (closest-hit and any-hit traversal, say) needs only one scheduler.
#[derive(Debug, Default)]
pub struct WavefrontScheduler<S> {
    /// Pooled per-item states, recycled across runs.
    pool: Vec<S>,
    /// Reusable request buffer: one batch per pass.
    requests: Vec<RayFlexRequest>,
    /// Reusable response buffer, parallel to `requests` after dispatch.
    responses: Vec<RayFlexResponse>,
    /// Item owning each in-flight beat (parallel to `requests`).
    beat_owner: Vec<usize>,
    /// Indices of items still in flight.
    active: Vec<usize>,
}

impl<S: Default> WavefrontScheduler<S> {
    /// Creates an empty scheduler (pools grow on first use).
    #[must_use]
    pub fn new() -> Self {
        WavefrontScheduler {
            pool: Vec::new(),
            requests: Vec::new(),
            responses: Vec::new(),
            beat_owner: Vec::new(),
            active: Vec::new(),
        }
    }

    /// Number of states currently parked in the pool (diagnostics / pooling tests).
    #[must_use]
    pub fn pooled_states(&self) -> usize {
        self.pool.len()
    }

    /// Runs `query` to completion against `datapath`, returning one output per item in item
    /// order.
    ///
    /// Every pass builds the beats of all active items into one request buffer, dispatches them
    /// in bulk, and applies the responses to the owning items.  Items retire in place; the run
    /// ends when no item is active.
    ///
    /// # Panics
    ///
    /// Panics if a beat's opcode is not supported by the datapath configuration (propagated from
    /// [`RayFlexDatapath::execute_batch_into`]).
    pub fn run<Q>(&mut self, datapath: &mut RayFlexDatapath, query: &mut Q) -> Vec<Q::Output>
    where
        Q: BatchQuery<State = S>,
    {
        let items = query.items();

        // Check out one pooled state per item.
        let mut states: Vec<S> = Vec::with_capacity(items);
        for item in 0..items {
            let mut state = self.pool.pop().unwrap_or_default();
            query.reset(item, &mut state);
            states.push(state);
        }

        self.active.clear();
        self.active.extend(0..items);

        while !self.active.is_empty() {
            // Build phase: each active item appends its next beat(s); items with no further
            // beats retire in place.
            self.requests.clear();
            self.beat_owner.clear();
            let mut still_active = 0;
            for slot in 0..self.active.len() {
                let item = self.active[slot];
                let before = self.requests.len();
                if query.build(item, &mut states[item], &mut self.requests) {
                    debug_assert!(
                        self.requests.len() > before,
                        "{} query item {item} stayed active without appending a beat",
                        query.kind()
                    );
                    self.beat_owner.resize(self.requests.len(), item);
                    self.active[still_active] = item;
                    still_active += 1;
                } else {
                    debug_assert_eq!(
                        self.requests.len(),
                        before,
                        "{} query item {item} appended beats while retiring",
                        query.kind()
                    );
                }
            }
            self.active.truncate(still_active);

            // One bulk dispatch for the whole pass.
            datapath.execute_batch_into(&self.requests, &mut self.responses);

            // Apply phase: route each response to the item that owns the beat.
            for (response, &item) in self.responses.iter().zip(&self.beat_owner) {
                query.apply(item, &mut states[item], response);
            }
        }

        // Collect outputs and return the states to the pool.
        let mut outputs = Vec::with_capacity(items);
        for (item, mut state) in states.into_iter().enumerate() {
            outputs.push(query.finish(item, &mut state));
            self.pool.push(state);
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_core::PipelineConfig;
    use rayflex_geometry::{Aabb, Ray, Vec3};

    /// A toy query: each item tests its ray against one box per pass, for `rounds` passes, and
    /// counts hits.
    struct CountingQuery {
        rays: Vec<Ray>,
        boxes: [Aabb; 4],
        rounds: usize,
        built: usize,
    }

    #[derive(Debug, Default)]
    struct CountingState {
        remaining: usize,
        hits: usize,
    }

    impl BatchQuery for CountingQuery {
        type State = CountingState;
        type Output = usize;

        fn kind(&self) -> QueryKind {
            QueryKind::ClosestHit
        }

        fn items(&self) -> usize {
            self.rays.len()
        }

        fn reset(&mut self, _item: usize, state: &mut CountingState) {
            state.remaining = self.rounds;
            state.hits = 0;
        }

        fn build(
            &mut self,
            item: usize,
            state: &mut CountingState,
            out: &mut Vec<RayFlexRequest>,
        ) -> bool {
            if state.remaining == 0 {
                return false;
            }
            state.remaining -= 1;
            self.built += 1;
            out.push(RayFlexRequest::ray_box(
                item as u64,
                &self.rays[item],
                &self.boxes,
            ));
            true
        }

        fn apply(&mut self, _item: usize, state: &mut CountingState, response: &RayFlexResponse) {
            let result = response.box_result.expect("box beat");
            state.hits += usize::from(result.hit[0]);
        }

        fn finish(&mut self, _item: usize, state: &mut CountingState) -> usize {
            state.hits
        }
    }

    fn toy_query(rays: usize, rounds: usize) -> CountingQuery {
        CountingQuery {
            rays: (0..rays)
                .map(|i| {
                    Ray::new(
                        Vec3::new(i as f32 * 0.1, 0.0, -5.0),
                        Vec3::new(0.0, 0.0, 1.0),
                    )
                })
                .collect(),
            boxes: [Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0)); 4],
            rounds,
            built: 0,
        }
    }

    #[test]
    fn the_scheduler_runs_every_item_to_completion() {
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let mut query = toy_query(9, 3);
        let outputs = scheduler.run(&mut datapath, &mut query);
        assert_eq!(outputs, vec![3; 9], "every round of every item hit");
        assert_eq!(query.built, 9 * 3);
        assert_eq!(datapath.executed_beats(), 9 * 3);
    }

    #[test]
    fn states_return_to_the_pool_and_are_recycled() {
        let mut scheduler = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let first = scheduler.run(&mut datapath, &mut toy_query(6, 2));
        assert_eq!(scheduler.pooled_states(), 6);
        let second = scheduler.run(&mut datapath, &mut toy_query(6, 2));
        assert_eq!(first, second);
        assert_eq!(scheduler.pooled_states(), 6, "states recycled, not leaked");
    }

    #[test]
    fn empty_runs_are_fine() {
        let mut scheduler: WavefrontScheduler<CountingState> = WavefrontScheduler::new();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let outputs = scheduler.run(&mut datapath, &mut toy_query(0, 5));
        assert!(outputs.is_empty());
        assert_eq!(datapath.executed_beats(), 0);
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::BTreeSet<_> = [
            QueryKind::ClosestHit,
            QueryKind::AnyHit,
            QueryKind::Distance,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        assert_eq!(names.len(), 3);
        assert_eq!(QueryKind::AnyHit.to_string(), "any-hit");
    }
}
