//! A simplified RT-unit timing model above the datapath.
//!
//! The paper's Fig. 2 places the intersection-test datapath inside an RT unit that also contains
//! a warp buffer, a memory scheduler and a response queue; Vulkan-Sim models that machinery in
//! detail.  For workload-level cycle estimates this module provides a deliberately simple
//! substitute: every ray is an independent state machine that alternates between *fetching* a BVH
//! node (fixed-latency memory model) and *testing* it (one datapath beat, eleven-cycle latency),
//! and the datapath issue port accepts at most one beat per cycle.  The result is a first-order
//! cycle count that respects the datapath's throughput and latency — enough to study, for
//! example, how the eleven-cycle RayFlex latency compares against the two-cycle assumption used
//! by Vulkan-Sim (§IV-B).

use std::collections::VecDeque;

use rayflex_core::{PipelineConfig, RayFlexDatapath, RayFlexRequest, PIPELINE_DEPTH};
use rayflex_geometry::{Ray, Triangle};

use crate::traversal::TraversalHit;
use crate::{Bvh4, Bvh4Node};

/// Timing parameters of the simplified RT unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtUnitConfig {
    /// Cycles to fetch one BVH node from memory (the L1-hit latency of the paper's Fig. 2
    /// memory path).
    pub node_fetch_latency: u64,
    /// Latency of one datapath beat in cycles (eleven for RayFlex; two for the Vulkan-Sim
    /// assumption the paper discusses).
    pub datapath_latency: u64,
    /// How many independent rays the scheduler keeps in flight at once (the warp-buffer depth).
    pub max_rays_in_flight: usize,
}

impl Default for RtUnitConfig {
    fn default() -> Self {
        RtUnitConfig {
            node_fetch_latency: 20,
            datapath_latency: PIPELINE_DEPTH as u64,
            max_rays_in_flight: 32,
        }
    }
}

/// Aggregate statistics of one [`RtUnit::trace_rays`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RtUnitStats {
    /// Total simulated cycles until the last ray retired.
    pub cycles: u64,
    /// Ray–box beats issued.
    pub box_ops: u64,
    /// Ray–triangle beats issued.
    pub triangle_ops: u64,
    /// Cycles in which a transaction was ready but the single issue port was already taken.
    pub issue_conflicts: u64,
    /// Rays traced.
    pub rays: u64,
}

impl RtUnitStats {
    /// Average datapath beats per ray.
    #[must_use]
    pub fn ops_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            (self.box_ops + self.triangle_ops) as f64 / self.rays as f64
        }
    }

    /// Merges the statistics of an RT unit that ran *in parallel* with this one: operation and
    /// conflict counters sum (total work is the sum of the shards), while the cycle count is the
    /// maximum (parallel units finish when the slowest one does).
    pub fn merge_parallel(&mut self, other: &RtUnitStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.box_ops += other.box_ops;
        self.triangle_ops += other.triangle_ops;
        self.issue_conflicts += other.issue_conflicts;
        self.rays += other.rays;
    }

    /// Average cycles per ray (wall-clock cycles divided by rays; rays overlap, so this is far
    /// lower than a single ray's dependent-chain latency).
    #[must_use]
    pub fn cycles_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.cycles as f64 / self.rays as f64
        }
    }
}

/// The simplified RT unit: a functional datapath plus the timing model described in the module
/// documentation.
#[derive(Debug)]
pub struct RtUnit {
    datapath: RayFlexDatapath,
    config: RtUnitConfig,
    /// Pooled per-ray states, reused across [`RtUnit::trace_rays`] calls so a steady-state
    /// workload performs no per-ray allocation.
    state_pool: Vec<RayState>,
    /// Reusable transaction queue (see `trace_rays` for why a FIFO is sufficient).
    ready: VecDeque<(u64, usize)>,
}

/// Per-ray traversal state (the ray itself is borrowed from the caller's slice).
///
/// The stack holds traversal handles (`crate::scene::handle`) in the flat top-level context —
/// the RT-unit timing model traces flat scenes, but shares the handle-typed
/// [`push_hit_children`](crate::traversal) step with the traversal engine.
#[derive(Debug, Default)]
struct RayState {
    stack: Vec<u64>,
    best: Option<TraversalHit>,
    pending_leaf: Vec<usize>,
    finished: bool,
}

impl RayState {
    fn reset(&mut self, root: usize) {
        self.stack.clear();
        self.stack
            .push(crate::scene::handle(crate::scene::TOP_CTX, root));
        self.best = None;
        self.pending_leaf.clear();
        self.finished = false;
    }
}

impl RtUnit {
    /// Creates an RT unit with the default timing parameters over a baseline-unified datapath.
    #[must_use]
    pub fn new() -> Self {
        Self::with_configs(PipelineConfig::baseline_unified(), RtUnitConfig::default())
    }

    /// Creates an RT unit with explicit datapath and timing configurations.
    #[must_use]
    pub fn with_configs(pipeline: PipelineConfig, config: RtUnitConfig) -> Self {
        RtUnit {
            datapath: RayFlexDatapath::new(pipeline),
            config,
            state_pool: Vec::new(),
            ready: VecDeque::new(),
        }
    }

    /// The timing configuration.
    #[must_use]
    pub fn config(&self) -> &RtUnitConfig {
        &self.config
    }

    /// Traces a batch of rays against a triangle BVH, returning the closest hit per ray and the
    /// aggregate timing statistics.
    pub fn trace_rays(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
    ) -> (Vec<Option<TraversalHit>>, RtUnitStats) {
        let mut stats = RtUnitStats {
            rays: rays.len() as u64,
            ..RtUnitStats::default()
        };
        // Check out one pooled state per ray (allocation-free once the pool is warm).
        let mut states: Vec<RayState> = Vec::with_capacity(rays.len());
        for _ in 0..rays.len() {
            let mut state = self.state_pool.pop().unwrap_or_default();
            state.reset(bvh.root());
            states.push(state);
        }

        // Transaction queue of (cycle at which the ray's next transaction is ready, ray index).
        //
        // Every transaction has the same ready-to-ready latency (issue wait + datapath latency +
        // node fetch), and the single issue port hands out strictly increasing issue cycles, so
        // ready times are enqueued in non-decreasing order — a plain FIFO pops them in exactly
        // the order a min-heap would, without the per-event heap maintenance.
        self.ready.clear();
        let window = self.config.max_rays_in_flight.max(1).min(states.len());
        let mut next_to_admit = window;
        for i in 0..window {
            self.ready.push_back((self.config.node_fetch_latency, i));
        }

        let mut next_issue_cycle = 0u64;
        let mut last_retire_cycle = 0u64;

        while let Some((ready_cycle, ray_index)) = self.ready.pop_front() {
            // The single issue port: a transaction ready before the port frees up waits.
            let issue_cycle = ready_cycle.max(next_issue_cycle);
            if issue_cycle > ready_cycle {
                stats.issue_conflicts += 1;
            }
            next_issue_cycle = issue_cycle + 1;
            let result_cycle = issue_cycle + self.config.datapath_latency;

            let state = &mut states[ray_index];
            Self::step_ray(
                &mut self.datapath,
                bvh,
                triangles,
                &rays[ray_index],
                state,
                &mut stats,
            );

            if state.finished {
                last_retire_cycle = last_retire_cycle.max(result_cycle);
                // Admit the next waiting ray into the in-flight window.
                if next_to_admit < states.len() {
                    self.ready
                        .push_back((result_cycle + self.config.node_fetch_latency, next_to_admit));
                    next_to_admit += 1;
                }
            } else {
                // The next node fetch starts once this beat's result is known.
                self.ready
                    .push_back((result_cycle + self.config.node_fetch_latency, ray_index));
            }
        }

        stats.cycles = last_retire_cycle;
        let mut hits = Vec::with_capacity(rays.len());
        for mut state in states {
            hits.push(state.best.take());
            self.state_pool.push(state);
        }
        (hits, stats)
    }

    /// Traces a ray batch across `units` RT units working side by side, one OS thread per
    /// unit, each owning a private datapath of configuration `pipeline` and the timing
    /// parameters `config`.  Rays are sharded contiguously; hits return in input order.  The
    /// merged statistics sum the per-unit operation counters and take the maximum cycle count
    /// (see [`RtUnitStats::merge_parallel`]).
    #[must_use]
    pub fn trace_rays_multi_unit(
        pipeline: PipelineConfig,
        config: RtUnitConfig,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
        units: usize,
    ) -> (Vec<Option<TraversalHit>>, RtUnitStats) {
        if rays.is_empty() {
            return (Vec::new(), RtUnitStats::default());
        }
        let units = units.clamp(1, rays.len());
        let shard_len = rays.len().div_ceil(units);
        let shards: Vec<(Vec<Option<TraversalHit>>, RtUnitStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = rays
                .chunks(shard_len)
                .map(|shard| {
                    scope.spawn(move || {
                        RtUnit::with_configs(pipeline, config).trace_rays(bvh, triangles, shard)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(result) => result,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut hits = Vec::with_capacity(rays.len());
        let mut stats = RtUnitStats::default();
        for (shard_hits, shard_stats) in shards {
            hits.extend(shard_hits);
            stats.merge_parallel(&shard_stats);
        }
        (hits, stats)
    }

    /// One OS thread per modelled RT unit, sharded contiguously.
    #[deprecated(
        note = "renamed to RtUnit::trace_rays_multi_unit (no execution-mode names on \
                         non-policy methods)"
    )]
    #[must_use]
    pub fn trace_rays_parallel(
        pipeline: PipelineConfig,
        config: RtUnitConfig,
        bvh: &Bvh4,
        triangles: &[Triangle],
        rays: &[Ray],
        units: usize,
    ) -> (Vec<Option<TraversalHit>>, RtUnitStats) {
        Self::trace_rays_multi_unit(pipeline, config, bvh, triangles, rays, units)
    }

    /// Advances one ray by one datapath transaction.
    fn step_ray(
        datapath: &mut RayFlexDatapath,
        bvh: &Bvh4,
        triangles: &[Triangle],
        ray: &Ray,
        state: &mut RayState,
        stats: &mut RtUnitStats,
    ) {
        // Pending leaf primitives are tested one beat at a time.
        if let Some(prim) = state.pending_leaf.pop() {
            stats.triangle_ops += 1;
            let request = RayFlexRequest::ray_triangle(prim as u64, ray, &triangles[prim]);
            let Some(result) = datapath.execute(&request).triangle_result else {
                unreachable!("a triangle beat always returns a triangle result");
            };
            crate::traversal::record_triangle_hit(
                &mut state.best,
                &result,
                prim,
                ray.t_beg,
                ray.t_end,
            );
        } else if let Some(popped) = state.stack.pop() {
            let node_index = crate::scene::handle_index(popped);
            match bvh.node(node_index) {
                Bvh4Node::Leaf { .. } => {
                    // Reversed so `pop` tests primitives in leaf order, matching the traversal
                    // engine's tie-breaking (the first-tested primitive keeps exact-t ties).
                    state
                        .pending_leaf
                        .extend(bvh.leaf_primitives(node_index).iter().rev());
                    // Testing the first primitive happens in this same transaction slot if one
                    // exists; otherwise the beat is a no-op node visit.
                    if !state.pending_leaf.is_empty() {
                        Self::step_ray(datapath, bvh, triangles, ray, state, stats);
                        return;
                    }
                }
                Bvh4Node::Internal {
                    children,
                    child_bounds,
                } => {
                    stats.box_ops += 1;
                    let request = RayFlexRequest::ray_box(0, ray, child_bounds);
                    let Some(result) = datapath.execute(&request).box_result else {
                        unreachable!("a box beat always returns a box result");
                    };
                    crate::traversal::push_hit_children(
                        &mut state.stack,
                        &result,
                        children,
                        crate::scene::TOP_CTX,
                        state.best.as_ref(),
                    );
                }
            }
        }
        state.finished = state.stack.is_empty() && state.pending_leaf.is_empty();
    }
}

impl Default for RtUnit {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraversalEngine;
    use rayflex_geometry::Vec3;

    fn scene() -> Vec<Triangle> {
        (0..64)
            .map(|i| {
                let x = (i % 8) as f32 * 2.0 - 8.0;
                let y = (i / 8) as f32 * 2.0 - 8.0;
                Triangle::new(
                    Vec3::new(x, y, 12.0),
                    Vec3::new(x + 1.8, y, 12.0),
                    Vec3::new(x + 0.9, y + 1.8, 12.0),
                )
            })
            .collect()
    }

    fn camera_rays(n: usize) -> Vec<Ray> {
        (0..n)
            .map(|i| {
                let x = (i % 16) as f32 * 0.8 - 6.4;
                let y = (i / 16) as f32 * 0.8 - 6.4;
                Ray::new(Vec3::new(x, y, 0.0), Vec3::new(0.0, 0.0, 1.0))
            })
            .collect()
    }

    #[test]
    fn rt_unit_hits_match_the_untimed_traversal_engine() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let rays = camera_rays(64);
        let mut unit = RtUnit::new();
        let (hits, stats) = unit.trace_rays(&bvh, &triangles, &rays);
        let mut engine = TraversalEngine::baseline();
        let scene_obj = crate::Scene::from_parts(bvh.clone(), triangles.clone());
        let reference = engine
            .trace(
                &crate::TraceRequest::closest_hit(&scene_obj, &rays),
                &crate::ExecPolicy::scalar(),
            )
            .into_closest();
        assert_eq!(hits.len(), reference.len());
        for (i, (a, b)) in hits.iter().zip(&reference).enumerate() {
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.primitive, b.primitive, "ray {i}");
                    assert!((a.t - b.t).abs() < 1e-6, "ray {i}");
                }
                other => panic!("ray {i}: {other:?}"),
            }
        }
        assert!(stats.cycles > 0);
        assert!(stats.box_ops > 0 && stats.triangle_ops > 0);
        assert_eq!(stats.rays, 64);
        assert!(stats.ops_per_ray() >= 1.0);
    }

    #[test]
    fn lower_datapath_latency_reduces_the_cycle_count() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let rays = camera_rays(32);
        let rayflex_latency = RtUnitConfig::default();
        let vulkan_sim_assumption = RtUnitConfig {
            datapath_latency: 2,
            ..RtUnitConfig::default()
        };
        let (_, slow) = RtUnit::with_configs(PipelineConfig::baseline_unified(), rayflex_latency)
            .trace_rays(&bvh, &triangles, &rays);
        let (_, fast) =
            RtUnit::with_configs(PipelineConfig::baseline_unified(), vulkan_sim_assumption)
                .trace_rays(&bvh, &triangles, &rays);
        assert!(
            fast.cycles < slow.cycles,
            "a 2-cycle datapath assumption must be optimistic: {} vs {}",
            fast.cycles,
            slow.cycles
        );
        assert_eq!(fast.box_ops, slow.box_ops);
    }

    #[test]
    fn more_rays_in_flight_hide_more_latency() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let rays = camera_rays(64);
        let narrow = RtUnitConfig {
            max_rays_in_flight: 1,
            ..RtUnitConfig::default()
        };
        let wide = RtUnitConfig {
            max_rays_in_flight: 64,
            ..RtUnitConfig::default()
        };
        let (_, serial) = RtUnit::with_configs(PipelineConfig::baseline_unified(), narrow)
            .trace_rays(&bvh, &triangles, &rays);
        let (_, parallel) = RtUnit::with_configs(PipelineConfig::baseline_unified(), wide)
            .trace_rays(&bvh, &triangles, &rays);
        assert!(parallel.cycles < serial.cycles);
    }

    #[test]
    fn parallel_units_agree_with_a_single_unit() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let rays = camera_rays(64);
        let mut unit = RtUnit::new();
        let (expected_hits, expected_stats) = unit.trace_rays(&bvh, &triangles, &rays);
        for units in [1, 2, 4, 64] {
            let (hits, stats) = RtUnit::trace_rays_multi_unit(
                PipelineConfig::baseline_unified(),
                RtUnitConfig::default(),
                &bvh,
                &triangles,
                &rays,
                units,
            );
            assert_eq!(hits, expected_hits, "units = {units}");
            // Work is conserved across shards: the summed beat counts equal the
            // single-threaded totals regardless of the shard count.
            assert_eq!(
                stats.box_ops + stats.triangle_ops,
                expected_stats.box_ops + expected_stats.triangle_ops,
                "units = {units}"
            );
            assert_eq!(stats.rays, expected_stats.rays, "units = {units}");
            // More parallel units never extend the critical path.
            assert!(stats.cycles <= expected_stats.cycles, "units = {units}");
        }
        let (_, single) = RtUnit::trace_rays_multi_unit(
            PipelineConfig::baseline_unified(),
            RtUnitConfig::default(),
            &bvh,
            &triangles,
            &rays,
            1,
        );
        assert_eq!(
            single, expected_stats,
            "one shard reproduces the scalar run exactly"
        );
    }

    #[test]
    fn state_pools_recycle_across_trace_calls() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let rays = camera_rays(32);
        let mut unit = RtUnit::new();
        let (first, _) = unit.trace_rays(&bvh, &triangles, &rays);
        assert_eq!(unit.state_pool.len(), rays.len());
        let (second, _) = unit.trace_rays(&bvh, &triangles, &rays);
        assert_eq!(first, second);
        assert_eq!(unit.state_pool.len(), rays.len());
    }

    #[test]
    fn empty_ray_batches_are_fine() {
        let triangles = scene();
        let bvh = Bvh4::build(&triangles);
        let (hits, stats) = RtUnit::new().trace_rays(&bvh, &triangles, &[]);
        assert!(hits.is_empty());
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.cycles_per_ray(), 0.0);
    }
}
