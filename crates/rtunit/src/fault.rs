//! Deterministic fault injection for the hardened execution layer.
//!
//! The chaos test matrix (`tests/proptest_chaos.rs`) needs to drive every failure path of the
//! `try_*` entry points on purpose: corrupt inputs, broken acceleration structures, panicking
//! worker shards and starved beat budgets.  This module packages those faults as a seeded,
//! reproducible [`FaultPlan`] so a failing chaos case can be replayed bit-for-bit from its seed.
//!
//! Faults come in two flavours:
//!
//! * **Input corruption** ([`FaultKind::CorruptRay`], [`FaultKind::TruncatePacket`],
//!   [`FaultKind::FlipBvhChild`]) is applied by the *harness* to its own copies of the inputs
//!   before the query runs — [`FaultPlan::corrupt_rays`], [`FaultPlan::truncate`] and
//!   [`FaultPlan::apply_to_bvh`] mutate data the engines then reject with a structured
//!   [`QueryError`](crate::QueryError).
//! * **Execution faults** ([`FaultKind::PoisonShard`], [`FaultKind::StarveBudget`],
//!   [`FaultKind::ScramblePermutation`]) fire *inside*
//!   the engines.  Shard poisoning is armed through [`while_armed`] and observed by a checkpoint
//!   the parallel workers call on entry; permutation scrambling is armed the same way and
//!   observed by a checkpoint the batched schedulers call on their admission order after
//!   coherent sorting; budget starvation is simply an
//!   [`ExecPolicy::with_max_total_beats`](crate::ExecPolicy::with_max_total_beats) of 1, which
//!   the harness applies itself.
//!
//! # Zero cost when off
//!
//! Production code never pays for this machinery beyond **one relaxed atomic load** per shard
//! spawn (not per ray, not per beat): `shard_checkpoint` reads a single `AtomicBool` and returns
//! immediately when no fault is armed.  No fault state is ever consulted on the beat path.
//!
//! # One-shot semantics
//!
//! A poisoned shard fires exactly once and disarms itself.  This models a transient execution
//! fault: the scheduler's one-shot scalar retry of the poisoned index range (see
//! `crate::parallel`) then succeeds, the recovered output is bit-identical to a clean run, and
//! the fallback is recorded in [`TraversalStats::shard_fallbacks`](crate::TraversalStats).  A
//! *persistent* fault (a shard whose retry also dies) surfaces as
//! [`QueryError::ShardPanicked`](crate::QueryError) instead — the chaos tests cover both by
//! arming the plan either once or around the retry too.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use rayflex_geometry::{Ray, Vec3};

use crate::bvh::{Bvh4, Bvh4Node};

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrite one ray of the stream with a non-traceable bit pattern (NaN origin, infinite
    /// direction, zero direction or NaN extent — chosen by the seed).
    CorruptRay,
    /// Drop a seed-chosen suffix of the ray stream, modelling a short packet arriving from a
    /// truncated DMA transfer.
    TruncatePacket,
    /// Break the BVH topology: point an internal node's child slot at an out-of-range or
    /// already-referenced node (or blow a leaf's primitive range on single-node trees).
    FlipBvhChild,
    /// Break one instance of a two-level scene: a non-finite transform, a singular (zero
    /// determinant) transform, or a dangling BLAS index — chosen by the seed.
    CorruptInstance,
    /// Panic the worker thread of the given shard index, exactly once.
    PoisonShard(usize),
    /// Starve the run of beats.  Carries no mechanism of its own — the harness reacts to this
    /// kind by running the query under `ExecPolicy::with_max_total_beats(1)`.
    StarveBudget,
    /// Corrupt the reassembly index of a batched scheduler: swap two seed-chosen entries of the
    /// admission permutation after coherent sorting, exactly once.  The swapped list is still a
    /// valid permutation, so this fault *proves* the coherence layer's index-keyed reassembly —
    /// outputs and statistics must stay bit-identical under it (asserted by the chaos matrix),
    /// because results are routed by the item indices the list carries, never by position.
    ScramblePermutation,
    /// Corrupt one seed-chosen payload byte of an encoded protocol frame
    /// ([`FaultPlan::corrupt_frame`]), modelling line noise or a buggy client.  The server
    /// ingress must answer with a structured malformed-frame error (or, when the flipped byte
    /// happens to leave the frame decodable, a correct response) — never a panic or a hung
    /// worker.
    MalformedFrame,
    /// Truncate an encoded protocol frame mid-payload ([`FaultPlan::truncate_frame`]): the
    /// length prefix still promises the full payload, but the connection delivers only a
    /// seed-chosen prefix before closing.  Models a client dying mid-write; the server must
    /// treat the short read as a clean disconnect of that connection.
    TruncatedFrame,
    /// Close the connection abruptly after a seed-chosen number of in-flight requests, without
    /// reading their responses.  The server's responder must absorb the broken pipe and retire
    /// the worker cleanly.
    Disconnect,
    /// A deadline storm: every concurrent request arrives with a near-zero deadline, forcing
    /// the earliest-deadline-first admission path and the flush-on-deadline timer to fire
    /// constantly.  Carries no mechanism of its own — the ingress harness reacts to this kind
    /// by stamping tiny `deadline_us` values on its generated requests.
    DeadlineStorm,
}

/// A seeded, deterministic fault to inject into one query execution.
///
/// Equal plans produce equal corruptions: every choice (which ray, which field, how much to
/// truncate, which child slot) is derived from `seed` with a splitmix64 stream, never from
/// ambient randomness, so a failing chaos case replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to break.
    pub kind: FaultKind,
    /// Deterministic seed for every choice the fault makes.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan injecting `kind` with deterministic choices drawn from `seed`.
    #[must_use]
    pub fn new(kind: FaultKind, seed: u64) -> Self {
        Self { kind, seed }
    }

    /// Overwrites one seed-chosen ray with one of four non-traceable corruptions.  Returns the
    /// corrupted index, or `None` when the stream is empty (nothing to corrupt).
    ///
    /// This is a harness-side mutation: apply it to your own copy of the stream, then hand the
    /// stream to a `try_*` entry point and expect
    /// [`QueryError::InvalidRequest`](crate::QueryError).
    pub fn corrupt_rays(&self, rays: &mut [Ray]) -> Option<usize> {
        if rays.is_empty() {
            return None;
        }
        let mut state = self.seed;
        let index = (splitmix(&mut state) as usize) % rays.len();
        let ray = &mut rays[index];
        match splitmix(&mut state) % 4 {
            0 => ray.origin.x = f32::NAN,
            1 => ray.dir.y = f32::INFINITY,
            2 => {
                ray.dir.x = 0.0;
                ray.dir.y = 0.0;
                ray.dir.z = 0.0;
            }
            _ => ray.t_beg = f32::NAN,
        }
        Some(index)
    }

    /// The length a stream of `len` items truncates to: at least one item shorter (when
    /// possible), never empty unless the stream already was.
    #[must_use]
    pub fn truncate_len(&self, len: usize) -> usize {
        if len <= 1 {
            return len;
        }
        let mut state = self.seed;
        // Keep 1..=len-1 items.
        1 + (splitmix(&mut state) as usize) % (len - 1)
    }

    /// Drops a seed-chosen suffix of the stream ([`FaultPlan::truncate_len`]) and returns the
    /// new length.  The surviving prefix is untouched, so the expected output of the truncated
    /// query is exactly the prefix of the clean query's output.
    pub fn truncate(&self, rays: &mut Vec<Ray>) -> usize {
        let keep = self.truncate_len(rays.len());
        rays.truncate(keep);
        keep
    }

    /// Breaks the BVH's topology in place so that [`SceneValidator`](crate::SceneValidator)
    /// must reject it.  Returns `false` only for trees it cannot break (none exist: even a
    /// single-leaf tree gets its primitive range blown).
    ///
    /// Internal trees get a seed-chosen occupied child slot of a seed-chosen internal node
    /// redirected — either out of range or back to the root (a cycle / double reference).
    /// Single-node trees get their leaf count extended past the primitive index array.
    pub fn apply_to_bvh(&self, bvh: &mut Bvh4) -> bool {
        let mut state = self.seed;
        let node_count = bvh.node_count();
        let primitives = bvh.primitive_indices().len();
        let internal: Vec<usize> = bvh
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, Bvh4Node::Internal { .. }))
            .map(|(i, _)| i)
            .collect();
        let nodes = bvh.nodes_mut();
        if internal.is_empty() {
            // A single-leaf tree has no child pointers to flip; blow the leaf range instead.
            let Some(Bvh4Node::Leaf { first, count }) = nodes.first_mut() else {
                return false;
            };
            *first = 0;
            *count = primitives + 1;
            return true;
        }
        let target = internal[(splitmix(&mut state) as usize) % internal.len()];
        let Bvh4Node::Internal { children, .. } = &mut nodes[target] else {
            return false;
        };
        let occupied: Vec<usize> = (0..4).filter(|&s| children[s].is_some()).collect();
        let slot = occupied[(splitmix(&mut state) as usize) % occupied.len()];
        children[slot] = if splitmix(&mut state).is_multiple_of(2) {
            // Out of range: no such node.
            Some(node_count)
        } else {
            // Back to the root: a cycle, and a second reference to a node that must have none.
            Some(0)
        };
        true
    }

    /// Breaks one seed-chosen instance of a two-level scene in place so that
    /// [`SceneValidator::validate_scene`](crate::SceneValidator) must reject it with an
    /// [`QueryError::InvalidScene`](crate::QueryError) naming that instance.  Returns the
    /// corrupted instance index, or `None` for flat scenes (which have no instances to break).
    ///
    /// The corruption is one of the three invalid-placement classes the validator checks: a
    /// non-finite transform (NaN translation), a singular transform (zero linear part, zero
    /// determinant), or a BLAS index past the scene's BLAS list.  The TLAS is deliberately
    /// *not* refit, so the break is purely a placement-table fault.
    pub fn apply_to_scene(&self, scene: &mut crate::Scene) -> Option<usize> {
        let mut state = self.seed;
        let blas_count = scene.blas_list().len();
        let instances = scene.instances_mut()?;
        if instances.is_empty() {
            return None;
        }
        let index = (splitmix(&mut state) as usize) % instances.len();
        let victim = &mut instances[index];
        match splitmix(&mut state) % 3 {
            0 => victim.transform.translation.x = f32::NAN,
            1 => victim.transform.linear = [Vec3::ZERO; 3],
            _ => victim.blas = blas_count,
        }
        Some(index)
    }

    /// Flips one seed-chosen bit of one seed-chosen **payload** byte of a length-prefixed
    /// protocol frame (`frame` = 4-byte little-endian length prefix + payload).  Returns the
    /// corrupted byte's offset, or `None` when the frame has no payload to corrupt.
    ///
    /// The length prefix itself is deliberately left intact: corrupting the declared length
    /// would make the receiver wait for bytes that never arrive — a timeout, not the structured
    /// decode error this fault exists to provoke.  (A lying length prefix is
    /// [`FaultKind::TruncatedFrame`]'s job, where the sender also hangs up.)
    pub fn corrupt_frame(&self, frame: &mut [u8]) -> Option<usize> {
        const PREFIX: usize = 4;
        if frame.len() <= PREFIX {
            return None;
        }
        let mut state = self.seed;
        let index = PREFIX + (splitmix(&mut state) as usize) % (frame.len() - PREFIX);
        let bit = (splitmix(&mut state) % 8) as u8;
        frame[index] ^= 1 << bit;
        Some(index)
    }

    /// Truncates an encoded frame to a seed-chosen proper prefix **without fixing the length
    /// prefix**: the header still promises the full payload, but the bytes stop early — exactly
    /// what a peer dying mid-write looks like on the wire.  Returns the number of bytes kept
    /// (at least the 4-byte prefix stays when the frame had one, so the receiver commits to
    /// reading a payload that never fully arrives).
    pub fn truncate_frame(&self, frame: &mut Vec<u8>) -> usize {
        const PREFIX: usize = 4;
        if frame.len() <= PREFIX {
            return frame.len();
        }
        let mut state = self.seed;
        // Keep the prefix plus 0..payload-1 payload bytes: always a short read, never the
        // complete frame.
        let keep = PREFIX + (splitmix(&mut state) as usize) % (frame.len() - PREFIX);
        frame.truncate(keep);
        keep
    }
}

/// The splitmix64 step — the same tiny deterministic generator the vendored `rand` shim builds
/// on, reimplemented here so fault choices never depend on generator state elsewhere.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Is any poison-shard fault armed?  One relaxed load; `false` is the production constant.
static POISON_ARMED: AtomicBool = AtomicBool::new(false);
/// Which shard index the armed fault targets.  Only read after `POISON_ARMED` observes `true`.
static POISON_SHARD: AtomicUsize = AtomicUsize::new(0);
/// Is a scramble-permutation fault armed?  One relaxed load per scheduler run.
static SCRAMBLE_ARMED: AtomicBool = AtomicBool::new(false);
/// Seed of the armed scramble.  Only read after `SCRAMBLE_ARMED` observes `true`.
static SCRAMBLE_SEED: AtomicU64 = AtomicU64::new(0);

/// The checkpoint parallel workers call on entry (once per shard, before any tracing).  When a
/// [`FaultKind::PoisonShard`] plan is armed for this shard index, panics exactly once and
/// disarms; otherwise a single relaxed atomic load and an immediate return.
pub(crate) fn shard_checkpoint(shard: usize) {
    if !POISON_ARMED.load(Ordering::Relaxed) {
        return;
    }
    poisoned_shard_panic(shard);
}

/// The armed-path tail of [`shard_checkpoint`], kept out of the hot function.
#[cold]
fn poisoned_shard_panic(shard: usize) {
    if shard != POISON_SHARD.load(Ordering::SeqCst) {
        return;
    }
    // One-shot: only the thread that wins the disarm race actually panics, so a plan never
    // kills more than one worker and the scalar retry of that range runs clean.
    if POISON_ARMED
        .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        panic!("fault injection: shard {shard} poisoned");
    }
}

/// The checkpoint batched schedulers call once per run, right after (optional) coherent
/// sorting of the admission permutation.  When a [`FaultKind::ScramblePermutation`] plan is
/// armed, swaps two seed-chosen entries exactly once and disarms; otherwise a single relaxed
/// atomic load and an immediate return.  The swap never duplicates an entry — the list stays a
/// valid permutation of the run's items — so index-keyed reassembly must absorb it without any
/// observable effect.
pub(crate) fn scramble_checkpoint(permutation: &mut [usize]) {
    if !SCRAMBLE_ARMED.load(Ordering::Relaxed) {
        return;
    }
    scramble_permutation(permutation);
}

/// The armed-path tail of [`scramble_checkpoint`], kept out of the hot function.
#[cold]
fn scramble_permutation(permutation: &mut [usize]) {
    if permutation.len() < 2 {
        return;
    }
    // One-shot: only the run that wins the disarm race scrambles, so a plan corrupts exactly
    // one scheduler's admission order per arming.
    if SCRAMBLE_ARMED
        .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return;
    }
    let mut state = SCRAMBLE_SEED.load(Ordering::SeqCst);
    let a = (splitmix(&mut state) as usize) % permutation.len();
    let mut b = (splitmix(&mut state) as usize) % permutation.len();
    if a == b {
        b = (b + 1) % permutation.len();
    }
    permutation.swap(a, b);
}

/// The lock serialising fault-armed sections — execution faults are process-global state, so
/// concurrently running chaos tests must take turns.
fn harness_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `f` with `plan`'s execution fault armed, then guarantees disarmament — even if `f`
/// panics (armed state is cleared on unwind, so a poisoned run can never leak its poison into
/// the next test).
///
/// Only [`FaultKind::PoisonShard`] and [`FaultKind::ScramblePermutation`] arm anything; for
/// every other kind this is just a
/// serialising wrapper, letting the chaos harness treat all fault kinds uniformly.  Holds a
/// global mutex for the duration of `f`, so fault-armed sections in concurrent tests execute
/// one at a time.
pub fn while_armed<R>(plan: &FaultPlan, f: impl FnOnce() -> R) -> R {
    let _serial = harness_lock()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            POISON_ARMED.store(false, Ordering::SeqCst);
            SCRAMBLE_ARMED.store(false, Ordering::SeqCst);
        }
    }
    let _disarm = Disarm;
    match plan.kind {
        FaultKind::PoisonShard(shard) => {
            POISON_SHARD.store(shard, Ordering::SeqCst);
            POISON_ARMED.store(true, Ordering::SeqCst);
        }
        FaultKind::ScramblePermutation => {
            SCRAMBLE_SEED.store(plan.seed, Ordering::SeqCst);
            SCRAMBLE_ARMED.store(true, Ordering::SeqCst);
        }
        _ => {}
    }
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::{Triangle, Vec3};

    fn rays(n: usize) -> Vec<Ray> {
        (0..n)
            .map(|i| Ray::new(Vec3::new(i as f32, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0)))
            .collect()
    }

    #[test]
    fn ray_corruption_is_deterministic_and_detectable() {
        let plan = FaultPlan::new(FaultKind::CorruptRay, 7);
        let mut a = rays(32);
        let mut b = rays(32);
        let ia = plan.corrupt_rays(&mut a).unwrap();
        let ib = plan.corrupt_rays(&mut b).unwrap();
        assert_eq!(ia, ib, "same seed, same victim");
        // NaN breaks PartialEq reflexivity, so compare the debug rendering instead.
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "same seed, same corruption"
        );
        assert!(!rayflex_core::guard::finite_ray(&a[ia]));
        assert!(plan.corrupt_rays(&mut Vec::new()).is_none());
    }

    #[test]
    fn truncation_keeps_a_proper_nonempty_prefix() {
        for seed in 0..32u64 {
            let plan = FaultPlan::new(FaultKind::TruncatePacket, seed);
            let mut stream = rays(17);
            let keep = plan.truncate(&mut stream);
            assert!((1..17).contains(&keep), "seed {seed} kept {keep}");
            assert_eq!(stream.len(), keep);
            assert_eq!(stream, rays(17)[..keep], "prefix untouched");
        }
        assert_eq!(
            FaultPlan::new(FaultKind::TruncatePacket, 3).truncate_len(0),
            0
        );
        assert_eq!(
            FaultPlan::new(FaultKind::TruncatePacket, 3).truncate_len(1),
            1
        );
    }

    #[test]
    fn bvh_flips_break_validation_on_big_and_tiny_trees() {
        use crate::SceneValidator;
        let tris: Vec<Triangle> = (0..64)
            .map(|i| {
                let x = (i % 8) as f32 * 2.0;
                let y = (i / 8) as f32 * 2.0;
                Triangle::new(
                    Vec3::new(x, y, 5.0),
                    Vec3::new(x + 1.0, y, 5.0),
                    Vec3::new(x, y + 1.0, 5.0),
                )
            })
            .collect();
        for seed in 0..16u64 {
            let mut bvh = Bvh4::build(&tris);
            assert!(SceneValidator::validate(&bvh, &tris).is_ok());
            assert!(FaultPlan::new(FaultKind::FlipBvhChild, seed).apply_to_bvh(&mut bvh));
            assert!(
                SceneValidator::validate(&bvh, &tris).is_err(),
                "seed {seed} produced a flip the validator missed"
            );
        }
        // Single-leaf tree: no child to flip, the leaf range gets blown instead.
        let tiny = &tris[..2];
        let mut bvh = Bvh4::build(tiny);
        assert_eq!(bvh.node_count(), 1);
        assert!(FaultPlan::new(FaultKind::FlipBvhChild, 9).apply_to_bvh(&mut bvh));
        assert!(SceneValidator::validate(&bvh, tiny).is_err());
    }

    #[test]
    fn instance_corruption_breaks_validation_and_names_the_victim() {
        use crate::{Blas, Instance, Scene, SceneValidator};
        use rayflex_geometry::Affine;
        let mesh = vec![Triangle::new(
            Vec3::new(-1.0, -1.0, 0.0),
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        )];
        for seed in 0..16u64 {
            let instances: Vec<Instance> = (0..5)
                .map(|i| Instance::new(0, Affine::translation(Vec3::new(i as f32 * 3.0, 0.0, 4.0))))
                .collect();
            let mut scene = Scene::instanced(vec![Blas::new(mesh.clone())], instances);
            assert!(SceneValidator::validate_scene(&scene).is_ok());
            let plan = FaultPlan::new(FaultKind::CorruptInstance, seed);
            let victim = plan.apply_to_scene(&mut scene).expect("instanced scene");
            let err = SceneValidator::validate_scene(&scene)
                .err()
                .unwrap_or_else(|| {
                    panic!("seed {seed} produced a corruption the validator missed")
                });
            assert!(
                err.to_string().contains(&format!("instance {victim}")),
                "seed {seed}: {err} does not name instance {victim}"
            );
        }
        // Flat scenes have no instances to corrupt.
        let mut flat = Scene::flat(mesh);
        assert!(FaultPlan::new(FaultKind::CorruptInstance, 1)
            .apply_to_scene(&mut flat)
            .is_none());
    }

    #[test]
    fn poison_fires_once_for_the_right_shard_and_always_disarms() {
        let plan = FaultPlan::new(FaultKind::PoisonShard(2), 0);
        while_armed(&plan, || {
            shard_checkpoint(0);
            shard_checkpoint(1); // wrong shards: nothing happens
            let hit = std::panic::catch_unwind(|| shard_checkpoint(2));
            assert!(hit.is_err(), "armed shard must panic");
            shard_checkpoint(2); // one-shot: second visit survives
        });
        shard_checkpoint(2); // outside while_armed: disarmed
    }

    #[test]
    fn scramble_swaps_two_entries_once_keeping_a_valid_permutation() {
        let plan = FaultPlan::new(FaultKind::ScramblePermutation, 11);
        while_armed(&plan, || {
            let mut perm: Vec<usize> = (0..16).collect();
            scramble_checkpoint(&mut perm);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "still a permutation");
            let moved = perm.iter().enumerate().filter(|&(i, &v)| i != v).count();
            assert_eq!(moved, 2, "exactly one swap");
            // One-shot: a second checkpoint in the same armed section is a no-op.
            let snapshot = perm.clone();
            scramble_checkpoint(&mut perm);
            assert_eq!(perm, snapshot);
        });
        // Outside while_armed: disarmed entirely.
        let mut perm: Vec<usize> = (0..4).collect();
        scramble_checkpoint(&mut perm);
        assert_eq!(perm, vec![0, 1, 2, 3]);
        // Degenerate lists survive an armed checkpoint untouched.
        while_armed(&plan, || {
            let mut single = vec![0usize];
            scramble_checkpoint(&mut single);
            assert_eq!(single, vec![0]);
        });
    }

    #[test]
    fn frame_corruption_spares_the_length_prefix_and_is_deterministic() {
        // A plausible frame: 4-byte LE length prefix + 20 payload bytes.
        let payload: Vec<u8> = (0u8..20).collect();
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);
        for seed in 0..32u64 {
            let plan = FaultPlan::new(FaultKind::MalformedFrame, seed);
            let mut a = frame.clone();
            let mut b = frame.clone();
            let ia = plan.corrupt_frame(&mut a).unwrap();
            let ib = plan.corrupt_frame(&mut b).unwrap();
            assert_eq!(ia, ib, "seed {seed}: same victim byte");
            assert_eq!(a, b, "seed {seed}: same corruption");
            assert!(ia >= 4, "seed {seed}: the length prefix must survive");
            assert_eq!(a[..4], frame[..4], "seed {seed}: prefix bytes untouched");
            assert_ne!(a, frame, "seed {seed}: exactly one bit flipped");
            assert_eq!(
                a.iter().zip(&frame).filter(|(x, y)| x != y).count(),
                1,
                "seed {seed}: exactly one byte differs"
            );
        }
        // Prefix-only and empty frames carry nothing to corrupt.
        let plan = FaultPlan::new(FaultKind::MalformedFrame, 1);
        assert!(plan.corrupt_frame(&mut [0, 0, 0, 0]).is_none());
        assert!(plan.corrupt_frame(&mut []).is_none());
    }

    #[test]
    fn frame_truncation_keeps_the_prefix_but_never_the_whole_payload() {
        let payload: Vec<u8> = (0u8..20).collect();
        let mut whole = (payload.len() as u32).to_le_bytes().to_vec();
        whole.extend_from_slice(&payload);
        for seed in 0..32u64 {
            let plan = FaultPlan::new(FaultKind::TruncatedFrame, seed);
            let mut frame = whole.clone();
            let keep = plan.truncate_frame(&mut frame);
            assert_eq!(frame.len(), keep);
            assert!(
                (4..whole.len()).contains(&keep),
                "seed {seed}: kept {keep} of {}",
                whole.len()
            );
            assert_eq!(frame[..], whole[..keep], "seed {seed}: prefix untouched");
            // The header still promises the full payload — the lie is the point.
            assert_eq!(frame[..4], (payload.len() as u32).to_le_bytes());
        }
        // Nothing shorter than the prefix shrinks further.
        let plan = FaultPlan::new(FaultKind::TruncatedFrame, 5);
        let mut prefix_only = vec![9, 0, 0, 0];
        assert_eq!(plan.truncate_frame(&mut prefix_only), 4);
        assert_eq!(prefix_only, vec![9, 0, 0, 0]);
    }

    #[test]
    fn ingress_kinds_arm_nothing() {
        for kind in [
            FaultKind::MalformedFrame,
            FaultKind::TruncatedFrame,
            FaultKind::Disconnect,
            FaultKind::DeadlineStorm,
        ] {
            while_armed(&FaultPlan::new(kind, 3), || {
                for shard in 0..4 {
                    shard_checkpoint(shard);
                }
                let mut perm: Vec<usize> = (0..4).collect();
                scramble_checkpoint(&mut perm);
                assert_eq!(perm, vec![0, 1, 2, 3]);
            });
        }
    }

    #[test]
    fn non_poison_kinds_arm_nothing() {
        let plan = FaultPlan::new(FaultKind::StarveBudget, 0);
        while_armed(&plan, || {
            for shard in 0..4 {
                shard_checkpoint(shard);
            }
        });
    }
}
