//! A multi-pass deferred renderer driving the batched query engine (used by the examples and the
//! render-pass benchmark suite).
//!
//! Rendering is a sequence of batched queries over one frame:
//!
//! 1. **Primary pass** — one closest-hit ray per pixel, traced as a single wavefront stream;
//! 2. **Surfel extraction** — every hit becomes a `(point, normal)` G-buffer record
//!    ([`extract_surfels`]), the deferred inputs of the secondary passes;
//! 3. **Shadow pass** — one any-hit ray per surfel toward the scene's point light
//!    ([`rayflex_workloads::rays::surfel_shadow_rays`]); a hit means the surfel is shadowed;
//! 4. **Ambient-occlusion pass** (optional) — `ao_samples` any-hit hemisphere probes per surfel
//!    ([`rayflex_workloads::rays::ambient_occlusion_rays`]); the unoccluded fraction scales the
//!    pixel.
//!
//! Shading composes diffuse × shadow visibility × AO visibility ([`shade_deferred`]) into a
//! grayscale [`Image`].  Every pass exists in three bit-identical execution modes: the **batched**
//! wavefront frontend ([`Renderer::render_deferred`]), the **scalar** per-pixel reference
//! ([`Renderer::render_deferred_reference`]), and the auto-tuned **thread-parallel** sharding of
//! the batched frontend ([`render_parallel`]).  The golden tests and
//! `rtunit/tests/proptest_render.rs` pin all three to the same frame, pixel-bit-for-bit and
//! stat-for-stat.

use rayflex_core::PipelineConfig;
use rayflex_geometry::{Ray, Triangle, Vec3};
use rayflex_workloads::rays::{ambient_occlusion_rays, surfel_shadow_rays};

use crate::parallel::{trace_rays_parallel, trace_shadow_rays_parallel};
use crate::{Bvh4, TraversalEngine, TraversalHit, TraversalStats};

/// A pinhole camera generating one primary ray per pixel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Camera position.
    pub position: Vec3,
    /// Point the camera looks at.
    pub look_at: Vec3,
    /// Up direction.
    pub up: Vec3,
    /// Vertical field of view in degrees.
    pub fov_degrees: f32,
}

impl Camera {
    /// A camera at `position` looking at `look_at` with a 60° field of view.
    #[must_use]
    pub fn looking_at(position: Vec3, look_at: Vec3) -> Self {
        Camera {
            position,
            look_at,
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_degrees: 60.0,
        }
    }

    /// The precomputed frame basis for a `width`×`height` image: orthonormal axes and view-plane
    /// half-extents computed **once** per frame rather than once per pixel, so frame-ray
    /// generation is O(1) setup plus O(pixels) ray construction.
    ///
    /// When `up` is (anti-)parallel to the view direction — a camera looking straight up or down
    /// with the default `up` — the naive `up × forward` basis is the zero vector and normalising
    /// it would poison every ray of the frame with NaN directions.  The basis falls back to a
    /// stable alternate axis (the world axis least aligned with the view direction) instead.
    // Never inlined: the basis holds the frame's only evaluation of `tan`, and letting it inline
    // allowed constant folding to produce rays differing in the last ulp between call sites
    // (observed between `render` and the per-pixel reference under thin-LTO), breaking the
    // bit-identity the golden tests pin.  One out-of-line evaluation is shared by every frontend.
    #[inline(never)]
    #[must_use]
    pub fn basis(&self, width: usize, height: usize) -> CameraBasis {
        let forward = (self.look_at - self.position).normalized();
        let cross = self.up.cross(forward);
        let right = if cross.length_squared() > 0.0 {
            cross.normalized()
        } else {
            // `up` is parallel to the view direction; use the world axis least aligned with it.
            let alternate = if forward.x.abs() < 0.5 {
                Vec3::new(1.0, 0.0, 0.0)
            } else {
                Vec3::new(0.0, 0.0, 1.0)
            };
            alternate.cross(forward).normalized()
        };
        let true_up = forward.cross(right);
        let aspect = width as f32 / height as f32;
        let half_height = (self.fov_degrees.to_radians() * 0.5).tan();
        let half_width = half_height * aspect;
        CameraBasis {
            position: self.position,
            forward,
            right,
            true_up,
            half_width,
            half_height,
            width: width as f32,
            height: height as f32,
        }
    }

    /// The primary ray through pixel `(x, y)` of a `width`×`height` image.
    ///
    /// Scalar convenience wrapper: builds the frame basis and casts one ray through it.  Frame
    /// loops should hoist [`Camera::basis`] (or call [`Camera::primary_rays`]) so the basis is
    /// computed once, not per pixel; the per-ray results are bit-identical either way.
    #[must_use]
    pub fn primary_ray(&self, x: usize, y: usize, width: usize, height: usize) -> Ray {
        self.basis(width, height).primary_ray(x, y)
    }

    /// All primary rays of a `width`×`height` frame in row-major pixel order — the ray stream a
    /// batched frame traces in one wavefront pass.  The camera basis is computed once for the
    /// whole frame.
    #[must_use]
    pub fn primary_rays(&self, width: usize, height: usize) -> Vec<Ray> {
        let basis = self.basis(width, height);
        let mut rays = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                rays.push(basis.primary_ray(x, y));
            }
        }
        rays
    }
}

/// The per-frame camera state precomputed by [`Camera::basis`]: the orthonormal view axes, the
/// view-plane half-extents, and the frame dimensions as floats.  Casting a ray through the basis
/// costs a handful of multiply-adds and no trigonometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraBasis {
    position: Vec3,
    forward: Vec3,
    right: Vec3,
    true_up: Vec3,
    half_width: f32,
    half_height: f32,
    width: f32,
    height: f32,
}

impl CameraBasis {
    /// The primary ray through pixel `(x, y)` of the frame this basis was built for.
    #[must_use]
    pub fn primary_ray(&self, x: usize, y: usize) -> Ray {
        let u = ((x as f32 + 0.5) / self.width * 2.0 - 1.0) * self.half_width;
        let v = (1.0 - (y as f32 + 0.5) / self.height * 2.0) * self.half_height;
        let dir = self.forward + self.right * u + self.true_up * v;
        Ray::new(self.position, dir)
    }
}

/// The renderer's shading model for one primary-ray hit under the fixed directional light:
/// two-sided Lambertian with a small ambient term, `0.0` for a miss.  Public so reference paths
/// (benchmarks, golden tests) can shade scalar hits with the exact arithmetic the batched frame
/// uses.
#[must_use]
pub fn shade(triangles: &[Triangle], light_dir: Vec3, hit: Option<&TraversalHit>) -> f32 {
    match hit {
        Some(hit) => {
            let normal = triangles[hit.primitive].normal().normalized();
            let diffuse = normal.dot(light_dir).abs();
            (0.15 + 0.85 * diffuse).clamp(0.0, 1.0)
        }
        None => 0.0,
    }
}

/// The fixed directional light the primary-only renderer shades with.
#[must_use]
pub fn default_light_dir() -> Vec3 {
    Vec3::new(0.4, 0.8, -0.45).normalized()
}

/// Deferred shading for one surfel: Lambertian diffuse toward the point light, zeroed while the
/// surfel is shadowed, scaled by the ambient-occlusion visibility, plus a small ambient term that
/// AO alone can darken.  Shared verbatim by the batched, scalar-reference and parallel frames, so
/// bit-identical traversal verdicts compose into bit-identical pixels.
///
/// Degenerate inputs stay finite: a light sitting exactly on the surfel shades as if lit along
/// the normal (full diffuse) instead of normalising a zero vector.
#[must_use]
pub fn shade_deferred(
    point: Vec3,
    normal: Vec3,
    light: Vec3,
    shadowed: bool,
    ao_visibility: f32,
) -> f32 {
    let to_light = light - point;
    let distance = to_light.length();
    let light_dir = if distance > 0.0 {
        to_light / distance
    } else {
        normal
    };
    let diffuse = normal.dot(light_dir).max(0.0);
    let visibility = if shadowed { 0.0 } else { 1.0 };
    ((0.15 + 0.85 * diffuse * visibility) * ao_visibility).clamp(0.0, 1.0)
}

/// Parameters of the deferred passes: the point light of the shadow pass and the configuration of
/// the optional ambient-occlusion pass (`ao_samples == 0` skips it entirely).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderPasses {
    /// Point-light position the shadow pass traces toward.
    pub light: Vec3,
    /// Hemisphere probes per surfel in the ambient-occlusion pass; `0` disables the pass.
    pub ao_samples: usize,
    /// Maximum parametric extent of an ambient-occlusion probe.
    pub ao_radius: f32,
    /// Seed of the deterministic ambient-occlusion probe directions.
    pub ao_seed: u64,
}

impl RenderPasses {
    /// Shadow pass only (no ambient occlusion), lit by a point light at `light`.
    #[must_use]
    pub fn shadowed(light: Vec3) -> Self {
        RenderPasses {
            light,
            ao_samples: 0,
            ao_radius: 1.0,
            ao_seed: 0x5eed,
        }
    }

    /// Adds an ambient-occlusion pass of `samples` probes per surfel with the given probe radius
    /// and direction seed.
    #[must_use]
    pub fn with_ambient_occlusion(mut self, samples: usize, radius: f32, seed: u64) -> Self {
        self.ao_samples = samples;
        self.ao_radius = radius;
        self.ao_seed = seed;
        self
    }
}

/// Extracts the G-buffer of a primary pass: one `(point, normal)` surfel per hit pixel (in pixel
/// order) plus the pixel index each surfel shades.  Normals are unit length and oriented toward
/// the viewer (two-sided shading); a degenerate sliver triangle whose geometric normal cannot be
/// normalised falls back to facing the incoming ray, so no NaN ever enters the G-buffer.
#[must_use]
pub fn extract_surfels(
    triangles: &[Triangle],
    rays: &[Ray],
    hits: &[Option<TraversalHit>],
) -> (Vec<(Vec3, Vec3)>, Vec<usize>) {
    let mut surfels = Vec::new();
    let mut pixels = Vec::new();
    for (pixel, (ray, hit)) in rays.iter().zip(hits).enumerate() {
        let Some(hit) = hit else { continue };
        let point = ray.at(hit.t);
        let mut normal = triangles[hit.primitive].normal().normalized();
        if !normal.is_finite() {
            normal = -ray.dir.normalized();
        }
        if normal.dot(ray.dir) > 0.0 {
            normal = -normal;
        }
        surfels.push((point, normal));
        pixels.push(pixel);
    }
    (surfels, pixels)
}

/// Which query kind a deferred pass traces — the hook the three execution modes implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassKind {
    /// The primary pass: closest-hit rays.
    ClosestHit,
    /// The shadow and ambient-occlusion passes: any-hit rays.
    AnyHit,
}

/// The shared multi-pass frame pipeline: generate primary rays, trace them, extract surfels,
/// trace the shadow (and optional AO) streams, compose.  `trace` supplies the traversal — the
/// batched wavefront, the scalar reference or the parallel sharding — and everything else is
/// common code, which is what makes the three modes bit-identical by construction.
fn deferred_frame(
    triangles: &[Triangle],
    camera: &Camera,
    width: usize,
    height: usize,
    passes: &RenderPasses,
    mut trace: impl FnMut(PassKind, &[Ray]) -> Vec<Option<TraversalHit>>,
) -> Image {
    // Pass 1: primary closest-hit stream, one ray per pixel.
    let rays = camera.primary_rays(width, height);
    let hits = trace(PassKind::ClosestHit, &rays);

    // G-buffer: one surfel per hit pixel.
    let (surfels, surfel_pixels) = extract_surfels(triangles, &rays, &hits);

    // Pass 2: one any-hit shadow ray per surfel toward the light.
    let shadow_hits = trace(
        PassKind::AnyHit,
        &surfel_shadow_rays(&surfels, passes.light),
    );

    // Pass 3 (optional): `ao_samples` any-hit hemisphere probes per surfel; the unoccluded
    // fraction of a surfel's probes is its ambient visibility.
    let ao_visibility: Vec<f32> = if passes.ao_samples > 0 {
        let ao_rays = ambient_occlusion_rays(
            passes.ao_seed,
            &surfels,
            passes.ao_samples,
            passes.ao_radius,
        );
        let ao_hits = trace(PassKind::AnyHit, &ao_rays);
        ao_hits
            .chunks(passes.ao_samples)
            .map(|probes| {
                let occluded = probes.iter().filter(|probe| probe.is_some()).count();
                1.0 - occluded as f32 / passes.ao_samples as f32
            })
            .collect()
    } else {
        vec![1.0; surfels.len()]
    };

    // Compose: misses stay black, hits shade diffuse × shadow × AO.
    let mut pixels = vec![0.0f32; width * height];
    for (surfel, &pixel) in surfel_pixels.iter().enumerate() {
        let (point, normal) = surfels[surfel];
        pixels[pixel] = shade_deferred(
            point,
            normal,
            passes.light,
            shadow_hits[surfel].is_some(),
            ao_visibility[surfel],
        );
    }
    Image {
        width,
        height,
        pixels,
    }
}

/// A grayscale image produced by the renderer (one intensity in `[0, 1]` per pixel, row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

impl Image {
    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The intensity of pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    pub fn pixel(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Fraction of pixels whose primary ray hit geometry.
    #[must_use]
    pub fn coverage(&self) -> f32 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().filter(|&&p| p > 0.0).count() as f32 / self.pixels.len() as f32
    }

    /// Renders the image as ASCII art (one character per pixel), brightest to darkest.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let value = self.pixel(x, y).clamp(0.0, 1.0);
                let index = (value * (RAMP.len() - 1) as f32).round() as usize;
                out.push(RAMP[index] as char);
            }
            out.push('\n');
        }
        out
    }

    /// The coordinates of the first pixel whose **bit pattern** differs from `other`'s, scanning
    /// in row-major order, or `None` when every pixel is bit-identical — the comparison the
    /// golden tests, property tests and benchmark cross-checks all share.
    ///
    /// # Panics
    ///
    /// Panics if the images have different dimensions.
    #[must_use]
    pub fn first_mismatch(&self, other: &Image) -> Option<(usize, usize)> {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image shapes differ"
        );
        self.pixels
            .iter()
            .zip(&other.pixels)
            .position(|(a, b)| a.to_bits() != b.to_bits())
            .map(|index| (index % self.width, index / self.width))
    }

    /// Encodes the image as a binary PGM (portable graymap) file.
    #[must_use]
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(
            self.pixels
                .iter()
                .map(|p| (p.clamp(0.0, 1.0) * 255.0).round() as u8),
        );
        out
    }
}

/// The multi-pass deferred renderer, entirely driven by datapath beats: a primary-only frontend
/// ([`Renderer::render`]) and the deferred shadow/AO pipeline ([`Renderer::render_deferred`]),
/// each with a scalar per-pixel reference twin.
#[derive(Debug)]
pub struct Renderer {
    engine: TraversalEngine,
}

impl Renderer {
    /// Creates a renderer over a baseline-unified datapath.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(PipelineConfig::baseline_unified())
    }

    /// Creates a renderer over a datapath of the given configuration.
    #[must_use]
    pub fn with_config(config: PipelineConfig) -> Self {
        Renderer {
            engine: TraversalEngine::with_config(config),
        }
    }

    /// Renders one `width`×`height` primary-only frame (no shadow or AO pass) and returns the
    /// image.
    ///
    /// The frame's primary rays are traced as **one batched stream** through the wavefront
    /// scheduler; hits (and therefore pixels and [`TraversalStats`]) are bit-identical to
    /// [`Renderer::render_reference`].
    pub fn render(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        camera: &Camera,
        width: usize,
        height: usize,
    ) -> Image {
        let light_dir = default_light_dir();
        let rays = camera.primary_rays(width, height);
        let hits = self.engine.closest_hits_wavefront(bvh, triangles, &rays);
        let pixels = hits
            .iter()
            .map(|hit| shade(triangles, light_dir, hit.as_ref()))
            .collect();
        Image {
            width,
            height,
            pixels,
        }
    }

    /// The scalar per-pixel reference of [`Renderer::render`]: each primary ray traced to
    /// completion through the register-accurate scalar path, shaded with the same [`shade`].
    pub fn render_reference(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        camera: &Camera,
        width: usize,
        height: usize,
    ) -> Image {
        let light_dir = default_light_dir();
        let basis = camera.basis(width, height);
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let ray = basis.primary_ray(x, y);
                let hit = self.engine.closest_hit(bvh, triangles, &ray);
                pixels.push(shade(triangles, light_dir, hit.as_ref()));
            }
        }
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Renders one `width`×`height` frame through the full deferred pipeline — batched primary
    /// pass, surfel extraction, batched any-hit shadow pass, optional batched any-hit AO pass —
    /// and returns the composed image.
    ///
    /// Pixels and accumulated [`TraversalStats`] are bit-identical to
    /// [`Renderer::render_deferred_reference`] (pinned by the golden test and
    /// `tests/proptest_render.rs`).
    pub fn render_deferred(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        camera: &Camera,
        width: usize,
        height: usize,
        passes: &RenderPasses,
    ) -> Image {
        let engine = &mut self.engine;
        deferred_frame(
            triangles,
            camera,
            width,
            height,
            passes,
            |kind, rays| match kind {
                PassKind::ClosestHit => engine.closest_hits_wavefront(bvh, triangles, rays),
                PassKind::AnyHit => engine.any_hits_wavefront(bvh, triangles, rays),
            },
        )
    }

    /// The scalar multi-pass reference of [`Renderer::render_deferred`]: the same passes over the
    /// same streams, but every ray traced one at a time through the register-accurate scalar
    /// path.
    pub fn render_deferred_reference(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        camera: &Camera,
        width: usize,
        height: usize,
        passes: &RenderPasses,
    ) -> Image {
        let engine = &mut self.engine;
        deferred_frame(
            triangles,
            camera,
            width,
            height,
            passes,
            |kind, rays| match kind {
                PassKind::ClosestHit => engine.closest_hits(bvh, triangles, rays),
                PassKind::AnyHit => engine.any_hits(bvh, triangles, rays),
            },
        )
    }

    /// The traversal statistics accumulated over everything rendered so far.
    #[must_use]
    pub fn stats(&self) -> TraversalStats {
        self.engine.stats()
    }
}

impl Default for Renderer {
    fn default() -> Self {
        Self::new()
    }
}

/// [`Renderer::render_deferred`] with every pass sharded across up to `threads` workers by the
/// auto-tuned parallel tracer ([`trace_rays_parallel`] for the primary stream,
/// [`trace_shadow_rays_parallel`] for the shadow and AO streams).  Returns the frame and the
/// summed [`TraversalStats`] of all passes; both are bit-identical to the single-threaded batched
/// and scalar-reference frames.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors trace_rays_parallel: config + scene + frame + tuning
pub fn render_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    camera: &Camera,
    width: usize,
    height: usize,
    passes: &RenderPasses,
    threads: usize,
) -> (Image, TraversalStats) {
    let mut stats = TraversalStats::default();
    let image = deferred_frame(triangles, camera, width, height, passes, |kind, rays| {
        let (hits, pass_stats) = match kind {
            PassKind::ClosestHit => trace_rays_parallel(config, bvh, triangles, rays, threads),
            PassKind::AnyHit => trace_shadow_rays_parallel(config, bvh, triangles, rays, threads),
        };
        stats.merge(&pass_stats);
        hits
    });
    (image, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_workloads::scenes;

    fn quad_at_z(z: f32, half: f32) -> Vec<Triangle> {
        vec![
            Triangle::new(
                Vec3::new(-half, -half, z),
                Vec3::new(half, -half, z),
                Vec3::new(half, half, z),
            ),
            Triangle::new(
                Vec3::new(-half, -half, z),
                Vec3::new(half, half, z),
                Vec3::new(-half, half, z),
            ),
        ]
    }

    /// A floor quad at `y = 0` spanning ±`half` in x/z, wound like the `soft_shadow` floor so
    /// rays arriving from above hit it under the paper's `dir · (AB × AC) > 0` culling
    /// convention.
    fn floor_quad(half: f32) -> Vec<Triangle> {
        vec![
            Triangle::new(
                Vec3::new(-half, 0.0, -half),
                Vec3::new(half, 0.0, -half),
                Vec3::new(half, 0.0, half),
            ),
            Triangle::new(
                Vec3::new(-half, 0.0, -half),
                Vec3::new(half, 0.0, half),
                Vec3::new(-half, 0.0, half),
            ),
        ]
    }

    fn assert_images_bit_identical(a: &Image, b: &Image, what: &str) {
        assert_eq!(a.first_mismatch(b), None, "{what}");
    }

    #[test]
    fn camera_rays_cover_the_view_frustum() {
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let center = camera.primary_ray(16, 16, 32, 32);
        assert!(center.dir.z > 0.9 * center.dir.length());
        let corner = camera.primary_ray(0, 0, 32, 32);
        assert!(corner.dir.x < 0.0 && corner.dir.y > 0.0);
    }

    #[test]
    fn the_hoisted_basis_matches_per_pixel_rays_bit_for_bit() {
        let camera = Camera::looking_at(Vec3::new(1.0, 2.0, -3.0), Vec3::new(0.5, 0.0, 9.0));
        let (width, height) = (17, 11);
        let basis = camera.basis(width, height);
        let frame = camera.primary_rays(width, height);
        for y in 0..height {
            for x in 0..width {
                let per_pixel = camera.primary_ray(x, y, width, height);
                let from_basis = basis.primary_ray(x, y);
                assert_eq!(per_pixel, from_basis, "pixel ({x}, {y})");
                assert_eq!(frame[y * width + x], per_pixel, "pixel ({x}, {y})");
            }
        }
    }

    #[test]
    fn straight_down_camera_renders_without_nan_rays() {
        // Regression test for the degenerate-basis bug: `up × forward` is the zero vector when
        // the camera looks straight along the up axis, and normalising it poisoned every ray of
        // the frame with NaN directions.
        let triangles = floor_quad(50.0);
        let bvh = Bvh4::build(&triangles);
        for look in [Vec3::new(0.0, -1.0, 0.0), Vec3::new(0.0, 1.0, 0.0)] {
            let camera = Camera::looking_at(
                Vec3::new(0.0, 10.0, 0.0),
                Vec3::new(0.0, 10.0, 0.0) + look * 10.0,
            );
            let rays = camera.primary_rays(16, 16);
            assert!(
                rays.iter()
                    .all(|r| r.dir.is_finite() && r.origin.is_finite()),
                "no NaN ray directions looking along {look:?}"
            );
            let mut renderer = Renderer::new();
            let image = renderer.render(&bvh, &triangles, &camera, 16, 16);
            for y in 0..16 {
                for x in 0..16 {
                    assert!(image.pixel(x, y).is_finite(), "pixel ({x}, {y}) is NaN");
                }
            }
            if look.y < 0.0 {
                assert!(image.coverage() > 0.9, "the floor fills the downward view");
            }
        }
    }

    #[test]
    fn rendering_a_facing_quad_covers_the_image_centre() {
        let triangles = quad_at_z(5.0, 2.0);
        let bvh = Bvh4::build(&triangles);
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let mut renderer = Renderer::new();
        let image = renderer.render(&bvh, &triangles, &camera, 24, 24);
        assert_eq!(image.width(), 24);
        assert_eq!(image.height(), 24);
        assert!(image.pixel(12, 12) > 0.0, "centre pixel must be covered");
        assert!(image.coverage() > 0.3, "coverage {}", image.coverage());
        assert!(image.coverage() < 1.0, "corners should miss");
        assert!(renderer.stats().rays >= 24 * 24);
    }

    #[test]
    fn batched_frame_is_bit_identical_to_the_scalar_frame_on_the_icosphere() {
        // The golden test of the batched primary renderer: every pixel of the wavefront frame
        // equals the per-pixel scalar reference frame, and the traversal statistics match
        // exactly.
        let triangles = scenes::icosphere(2, 5.0, Vec3::new(0.0, 0.0, 20.0));
        let bvh = Bvh4::build(&triangles);
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 20.0));
        let (width, height) = (32, 24);

        let mut renderer = Renderer::new();
        let image = renderer.render(&bvh, &triangles, &camera, width, height);

        let mut reference = Renderer::new();
        let expected = reference.render_reference(&bvh, &triangles, &camera, width, height);
        assert_images_bit_identical(&image, &expected, "primary frame");
        assert_eq!(
            renderer.stats(),
            reference.stats(),
            "identical TraversalStats"
        );
        assert!(image.coverage() > 0.1, "the icosphere is visible");
    }

    #[test]
    fn deferred_frames_are_bit_identical_across_all_three_execution_modes() {
        // The golden test of the multi-pass deferred renderer: shadowed and shadowed+AO frames
        // from the batched pipeline equal the scalar multi-pass reference pixel-bit-for-bit and
        // stat-for-stat, and the parallel entry point matches both.
        let scene = scenes::lit_scene(1, 24.0);
        let bvh = Bvh4::build(&scene.triangles);
        let camera = Camera::looking_at(scene.eye, scene.target);
        let (width, height) = (24, 18);
        let configs = [
            RenderPasses::shadowed(scene.light),
            RenderPasses::shadowed(scene.light).with_ambient_occlusion(3, 6.0, 2024),
        ];
        for passes in configs {
            let mut batched = Renderer::new();
            let image =
                batched.render_deferred(&bvh, &scene.triangles, &camera, width, height, &passes);

            let mut reference = Renderer::new();
            let expected = reference.render_deferred_reference(
                &bvh,
                &scene.triangles,
                &camera,
                width,
                height,
                &passes,
            );
            assert_images_bit_identical(&image, &expected, "deferred frame");
            assert_eq!(
                batched.stats(),
                reference.stats(),
                "identical TraversalStats"
            );

            let (parallel_image, parallel_stats) = render_parallel(
                PipelineConfig::baseline_unified(),
                &bvh,
                &scene.triangles,
                &camera,
                width,
                height,
                &passes,
                4,
            );
            assert_images_bit_identical(&image, &parallel_image, "parallel deferred frame");
            assert_eq!(batched.stats(), parallel_stats, "parallel TraversalStats");

            assert!(image.coverage() > 0.2, "the lit scene is visible");
        }
    }

    #[test]
    fn the_shadow_pass_darkens_occluded_floor_pixels() {
        let scene = scenes::lit_scene(1, 24.0);
        let bvh = Bvh4::build(&scene.triangles);
        // Look straight down at the floor under the occluder from high above: the shadow of the
        // floating sphere must produce pixels strictly darker than the lit floor around them.
        let camera = Camera::looking_at(Vec3::new(0.0, 20.0, -0.1), Vec3::new(0.0, 0.0, 0.0));
        let passes = RenderPasses::shadowed(scene.light);
        let mut renderer = Renderer::new();
        let image = renderer.render_deferred(&bvh, &scene.triangles, &camera, 24, 24, &passes);
        let mut values: Vec<f32> = (0..24 * 24)
            .map(|i| image.pixel(i % 24, i / 24))
            .filter(|&p| p > 0.0)
            .collect();
        values.sort_by(f32::total_cmp);
        assert!(!values.is_empty());
        let (darkest, brightest) = (values[0], values[values.len() - 1]);
        assert!(
            brightest > darkest + 0.3,
            "shadowed pixels ({darkest}) must be darker than lit ones ({brightest})"
        );
    }

    #[test]
    fn ambient_occlusion_darkens_but_never_brightens() {
        let scene = scenes::lit_scene(1, 24.0);
        let bvh = Bvh4::build(&scene.triangles);
        let camera = Camera::looking_at(scene.eye, scene.target);
        let shadow_only = RenderPasses::shadowed(scene.light);
        let with_ao = shadow_only.with_ambient_occlusion(8, 8.0, 7);
        let mut renderer = Renderer::new();
        let base = renderer.render_deferred(&bvh, &scene.triangles, &camera, 20, 16, &shadow_only);
        let ao = renderer.render_deferred(&bvh, &scene.triangles, &camera, 20, 16, &with_ao);
        let mut darkened = 0;
        for y in 0..16 {
            for x in 0..20 {
                assert!(
                    ao.pixel(x, y) <= base.pixel(x, y) + 1e-6,
                    "AO can only darken pixel ({x}, {y})"
                );
                if ao.pixel(x, y) < base.pixel(x, y) - 1e-3 {
                    darkened += 1;
                }
            }
        }
        assert!(darkened > 0, "some pixels show ambient occlusion");
    }

    #[test]
    fn zero_sized_frames_render_without_panicking() {
        let triangles = quad_at_z(5.0, 2.0);
        let bvh = Bvh4::build(&triangles);
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let passes = RenderPasses::shadowed(Vec3::new(0.0, 10.0, 0.0));
        let mut renderer = Renderer::new();
        for (width, height) in [(0, 0), (0, 8), (8, 0)] {
            let image = renderer.render_deferred(&bvh, &triangles, &camera, width, height, &passes);
            assert_eq!((image.width(), image.height()), (width, height));
            assert_eq!(image.coverage(), 0.0);
            assert!(image.to_ascii().chars().all(|c| c == '\n'));
            let (parallel_image, _) = render_parallel(
                PipelineConfig::baseline_unified(),
                &bvh,
                &triangles,
                &camera,
                width,
                height,
                &passes,
                4,
            );
            assert_eq!(image, parallel_image);
        }
    }

    #[test]
    fn a_light_exactly_on_a_surfel_stays_finite() {
        // The degenerate shadow-ray extent: place the light exactly on the surfel of the centre
        // pixel.  The shadow ray collapses to an empty extent (never reports occlusion) and
        // shading must not divide by the zero light distance.
        let triangles = quad_at_z(5.0, 4.0);
        let bvh = Bvh4::build(&triangles);
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let (width, height) = (9, 9);
        let mut engine = TraversalEngine::baseline();
        let rays = camera.primary_rays(width, height);
        let hits = engine.closest_hits(&bvh, &triangles, &rays);
        let (surfels, _) = extract_surfels(&triangles, &rays, &hits);
        let light_on_surfel = surfels[surfels.len() / 2].0;

        let passes = RenderPasses::shadowed(light_on_surfel).with_ambient_occlusion(2, 1.0, 3);
        let mut renderer = Renderer::new();
        let image = renderer.render_deferred(&bvh, &triangles, &camera, width, height, &passes);
        let mut reference = Renderer::new();
        let expected =
            reference.render_deferred_reference(&bvh, &triangles, &camera, width, height, &passes);
        assert_images_bit_identical(&image, &expected, "degenerate-light frame");
        for y in 0..height {
            for x in 0..width {
                assert!(image.pixel(x, y).is_finite(), "pixel ({x}, {y}) is NaN");
            }
        }
    }

    #[test]
    fn zero_ao_samples_equals_the_shadow_only_frame() {
        let scene = scenes::lit_scene(1, 24.0);
        let bvh = Bvh4::build(&scene.triangles);
        let camera = Camera::looking_at(scene.eye, scene.target);
        let shadow_only = RenderPasses::shadowed(scene.light);
        let zero_ao = shadow_only.with_ambient_occlusion(0, 4.0, 11);
        let mut renderer = Renderer::new();
        let a = renderer.render_deferred(&bvh, &scene.triangles, &camera, 16, 12, &shadow_only);
        let b = renderer.render_deferred(&bvh, &scene.triangles, &camera, 16, 12, &zero_ao);
        assert_images_bit_identical(&a, &b, "samples_per_point == 0 skips the AO pass");
    }

    #[test]
    fn fully_shadowed_frames_stay_well_formed() {
        // A floor seen from above with an occluder quad covering the whole sky between floor and
        // light: every surfel is shadowed, leaving only the ambient term.  Coverage, ASCII and
        // PGM outputs must stay well-formed with no NaN.
        let mut triangles = floor_quad(40.0);
        // The occluder ceiling is wound the other way (normal up) so the upward shadow rays
        // strike its front face.
        let half = 60.0;
        triangles.push(Triangle::new(
            Vec3::new(-half, 15.0, -half),
            Vec3::new(half, 15.0, half),
            Vec3::new(half, 15.0, -half),
        ));
        triangles.push(Triangle::new(
            Vec3::new(-half, 15.0, -half),
            Vec3::new(-half, 15.0, half),
            Vec3::new(half, 15.0, half),
        ));
        let bvh = Bvh4::build(&triangles);
        let camera = Camera::looking_at(Vec3::new(0.0, 10.0, -20.0), Vec3::new(0.0, 0.0, 10.0));
        let passes = RenderPasses::shadowed(Vec3::new(0.0, 100.0, 0.0));
        let mut renderer = Renderer::new();
        let image = renderer.render_deferred(&bvh, &triangles, &camera, 16, 8, &passes);
        assert!(image.coverage() > 0.0, "the floor is visible");
        let floor_pixels: Vec<f32> = (0..16 * 8)
            .map(|i| image.pixel(i % 16, i / 16))
            .filter(|&p| p > 0.0)
            .collect();
        assert!(
            floor_pixels
                .iter()
                .all(|&p| p.is_finite() && p <= 0.15 + 1e-6),
            "every covered pixel is shadowed down to the ambient term"
        );
        let ascii = image.to_ascii();
        assert_eq!(ascii.lines().count(), 8);
        let pgm = image.to_pgm();
        assert_eq!(pgm.len(), b"P5\n16 8\n255\n".len() + 16 * 8);
    }

    #[test]
    fn ascii_and_pgm_outputs_are_well_formed() {
        let triangles = quad_at_z(5.0, 2.0);
        let bvh = Bvh4::build(&triangles);
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let image = Renderer::new().render(&bvh, &triangles, &camera, 16, 8);
        let ascii = image.to_ascii();
        assert_eq!(ascii.lines().count(), 8);
        assert!(ascii.lines().all(|l| l.chars().count() == 16));
        let pgm = image.to_pgm();
        assert!(pgm.starts_with(b"P5\n16 8\n255\n"));
        assert_eq!(pgm.len(), b"P5\n16 8\n255\n".len() + 16 * 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_pixel_access_panics() {
        let triangles = quad_at_z(5.0, 2.0);
        let bvh = Bvh4::build(&triangles);
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let image = Renderer::new().render(&bvh, &triangles, &camera, 4, 4);
        let _ = image.pixel(4, 0);
    }
}
