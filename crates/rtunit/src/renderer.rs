//! A multi-pass deferred renderer driving the batched query engine (used by the examples and the
//! render-pass benchmark suite).
//!
//! Rendering is a sequence of traversal queries over one frame, described by a [`FrameDesc`]:
//!
//! 1. **Primary pass** — one closest-hit ray per pixel (a [`FrameDesc::primary`] frame stops
//!    here and shades with a fixed directional light);
//! 2. **Surfel extraction** — every hit becomes a `(point, normal)` G-buffer record
//!    ([`extract_surfels`]), the deferred inputs of the secondary passes;
//! 3. **Bounce + shadow passes** — one any-hit ray per surfel toward the scene's point light
//!    ([`rayflex_workloads::rays::surfel_shadow_rays`]; a hit means the surfel is shadowed),
//!    paired with an optional one-bounce mirror closest-hit stream
//!    ([`rayflex_workloads::rays::surfel_reflection_rays`]) — a heterogeneous pair the
//!    [`Fused`](crate::ExecMode::Fused) policy traces in shared bulk passes;
//! 4. **Ambient-occlusion pass** (optional) — `ao_samples` any-hit hemisphere probes per surfel
//!    ([`rayflex_workloads::rays::ambient_occlusion_rays`]); the unoccluded fraction scales the
//!    pixel.
//!
//! Shading composes diffuse × shadow visibility × AO visibility ([`shade_deferred`]) into a
//! grayscale [`Image`].  **One entry point, every execution mode:** [`Renderer::render`] takes
//! the frame description plus an [`ExecPolicy`](crate::ExecPolicy), and every pass stream is
//! traced through [`TraversalEngine::trace`] under that policy — scalar reference, wavefront,
//! parallel or fused, all pixel-bit-identical with identical [`TraversalStats`] (pinned by the
//! golden tests, `rtunit/tests/proptest_render.rs` and the cross-policy matrix in
//! `rtunit/tests/proptest_policy.rs`).  The pre-policy `render_deferred*` method family
//! survives as deprecated shims.

use rayflex_core::PipelineConfig;
use rayflex_geometry::{Ray, Triangle, Vec3};
use rayflex_workloads::rays::{ambient_occlusion_rays, surfel_reflection_rays, surfel_shadow_rays};

use crate::error::{QueryError, QueryOutcome, SceneValidator};
use crate::policy::ExecPolicy;
use crate::traversal::{TraceOutput, TraceRequest};
use crate::{Bvh4, Scene, TraversalEngine, TraversalHit, TraversalStats};

/// A pinhole camera generating one primary ray per pixel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Camera position.
    pub position: Vec3,
    /// Point the camera looks at.
    pub look_at: Vec3,
    /// Up direction.
    pub up: Vec3,
    /// Vertical field of view in degrees.
    pub fov_degrees: f32,
}

impl Camera {
    /// A camera at `position` looking at `look_at` with a 60° field of view.
    #[must_use]
    pub fn looking_at(position: Vec3, look_at: Vec3) -> Self {
        Camera {
            position,
            look_at,
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_degrees: 60.0,
        }
    }

    /// The precomputed frame basis for a `width`×`height` image: orthonormal axes and view-plane
    /// half-extents computed **once** per frame rather than once per pixel, so frame-ray
    /// generation is O(1) setup plus O(pixels) ray construction.
    ///
    /// When `up` is (anti-)parallel to the view direction — a camera looking straight up or down
    /// with the default `up` — the naive `up × forward` basis is the zero vector and normalising
    /// it would poison every ray of the frame with NaN directions.  The basis falls back to a
    /// stable alternate axis (the world axis least aligned with the view direction) instead.
    // Never inlined: the basis holds the frame's only evaluation of `tan`, and letting it inline
    // allowed constant folding to produce rays differing in the last ulp between call sites
    // (observed between `render` and the per-pixel reference under thin-LTO), breaking the
    // bit-identity the golden tests pin.  One out-of-line evaluation is shared by every frontend.
    #[inline(never)]
    #[must_use]
    pub fn basis(&self, width: usize, height: usize) -> CameraBasis {
        let forward = (self.look_at - self.position).normalized();
        let cross = self.up.cross(forward);
        let right = if cross.length_squared() > 0.0 {
            cross.normalized()
        } else {
            // `up` is parallel to the view direction; use the world axis least aligned with it.
            let alternate = if forward.x.abs() < 0.5 {
                Vec3::new(1.0, 0.0, 0.0)
            } else {
                Vec3::new(0.0, 0.0, 1.0)
            };
            alternate.cross(forward).normalized()
        };
        let true_up = forward.cross(right);
        let aspect = width as f32 / height as f32;
        let half_height = (self.fov_degrees.to_radians() * 0.5).tan();
        let half_width = half_height * aspect;
        CameraBasis {
            position: self.position,
            forward,
            right,
            true_up,
            half_width,
            half_height,
            width: width as f32,
            height: height as f32,
        }
    }

    /// The primary ray through pixel `(x, y)` of a `width`×`height` image.
    ///
    /// Scalar convenience wrapper: builds the frame basis and casts one ray through it.  Frame
    /// loops should hoist [`Camera::basis`] (or call [`Camera::primary_rays`]) so the basis is
    /// computed once, not per pixel; the per-ray results are bit-identical either way.
    #[must_use]
    pub fn primary_ray(&self, x: usize, y: usize, width: usize, height: usize) -> Ray {
        self.basis(width, height).primary_ray(x, y)
    }

    /// All primary rays of a `width`×`height` frame in row-major pixel order — the ray stream a
    /// batched frame traces in one wavefront pass.  The camera basis is computed once for the
    /// whole frame.
    #[must_use]
    pub fn primary_rays(&self, width: usize, height: usize) -> Vec<Ray> {
        let basis = self.basis(width, height);
        let mut rays = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                rays.push(basis.primary_ray(x, y));
            }
        }
        rays
    }
}

/// The per-frame camera state precomputed by [`Camera::basis`]: the orthonormal view axes, the
/// view-plane half-extents, and the frame dimensions as floats.  Casting a ray through the basis
/// costs a handful of multiply-adds and no trigonometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraBasis {
    position: Vec3,
    forward: Vec3,
    right: Vec3,
    true_up: Vec3,
    half_width: f32,
    half_height: f32,
    width: f32,
    height: f32,
}

impl CameraBasis {
    /// The primary ray through pixel `(x, y)` of the frame this basis was built for.
    #[must_use]
    pub fn primary_ray(&self, x: usize, y: usize) -> Ray {
        let u = ((x as f32 + 0.5) / self.width * 2.0 - 1.0) * self.half_width;
        let v = (1.0 - (y as f32 + 0.5) / self.height * 2.0) * self.half_height;
        let dir = self.forward + self.right * u + self.true_up * v;
        Ray::new(self.position, dir)
    }
}

/// The renderer's shading model for one primary-ray hit under the fixed directional light:
/// two-sided Lambertian with a small ambient term, `0.0` for a miss.  Public so reference paths
/// (benchmarks, golden tests) can shade scalar hits with the exact arithmetic the batched frame
/// uses.
#[must_use]
pub fn shade(triangles: &[Triangle], light_dir: Vec3, hit: Option<&TraversalHit>) -> f32 {
    shade_primitive(&|prim| triangles[prim], light_dir, hit)
}

/// [`shade`] over an arbitrary primitive-id → world-triangle lookup — the shared arithmetic
/// behind the slice frontend and the scene-backed frame pipelines (instanced scenes have no
/// triangle slice; they materialise the hit triangle through [`Scene::triangle`]).
fn shade_primitive(
    triangle: &dyn Fn(usize) -> Triangle,
    light_dir: Vec3,
    hit: Option<&TraversalHit>,
) -> f32 {
    match hit {
        Some(hit) => {
            let normal = triangle(hit.primitive).normal().normalized();
            let diffuse = normal.dot(light_dir).abs();
            (0.15 + 0.85 * diffuse).clamp(0.0, 1.0)
        }
        None => 0.0,
    }
}

/// The fixed directional light the primary-only renderer shades with.
#[must_use]
pub fn default_light_dir() -> Vec3 {
    Vec3::new(0.4, 0.8, -0.45).normalized()
}

/// Deferred shading for one surfel: Lambertian diffuse toward the point light, zeroed while the
/// surfel is shadowed, scaled by the ambient-occlusion visibility, plus a small ambient term that
/// AO alone can darken.  Shared verbatim by the batched, scalar-reference and parallel frames, so
/// bit-identical traversal verdicts compose into bit-identical pixels.
///
/// Degenerate inputs stay finite: a light sitting exactly on the surfel shades as if lit along
/// the normal (full diffuse) instead of normalising a zero vector.
#[must_use]
pub fn shade_deferred(
    point: Vec3,
    normal: Vec3,
    light: Vec3,
    shadowed: bool,
    ao_visibility: f32,
) -> f32 {
    let to_light = light - point;
    let distance = to_light.length();
    let light_dir = if distance > 0.0 {
        to_light / distance
    } else {
        normal
    };
    let diffuse = normal.dot(light_dir).max(0.0);
    let visibility = if shadowed { 0.0 } else { 1.0 };
    ((0.15 + 0.85 * diffuse * visibility) * ao_visibility).clamp(0.0, 1.0)
}

/// Parameters of the deferred passes: the point light of the shadow pass, the configuration of
/// the optional ambient-occlusion pass (`ao_samples == 0` skips it entirely, `adaptive_ao`
/// restricts it to penumbra surfels), and the reflectivity of the optional one-bounce
/// reflection pass (`bounce_reflectivity == 0.0` skips it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderPasses {
    /// Point-light position the shadow pass traces toward.
    pub light: Vec3,
    /// Hemisphere probes per surfel in the ambient-occlusion pass; `0` disables the pass.
    pub ao_samples: usize,
    /// Maximum parametric extent of an ambient-occlusion probe.
    pub ao_radius: f32,
    /// Seed of the deterministic ambient-occlusion probe directions.
    pub ao_seed: u64,
    /// Adaptive ambient-occlusion sampling: trace AO probes only for surfels in the shadow
    /// penumbra (a 4-neighbour pixel whose shadow verdict differs), treating fully-lit and
    /// fully-shadowed regions as unoccluded.  `false` keeps the uniform per-surfel sampling.
    pub adaptive_ao: bool,
    /// Mirror reflectivity of the one-bounce reflection pass
    /// ([`Renderer::render_deferred_bounce`]); `0.0` disables the bounce stream entirely.
    pub bounce_reflectivity: f32,
}

impl RenderPasses {
    /// Shadow pass only (no ambient occlusion, no bounce), lit by a point light at `light`.
    #[must_use]
    pub fn shadowed(light: Vec3) -> Self {
        RenderPasses {
            light,
            ao_samples: 0,
            ao_radius: 1.0,
            ao_seed: 0x5eed,
            adaptive_ao: false,
            bounce_reflectivity: 0.0,
        }
    }

    /// Adds an ambient-occlusion pass of `samples` probes per surfel with the given probe radius
    /// and direction seed.
    #[must_use]
    pub fn with_ambient_occlusion(mut self, samples: usize, radius: f32, seed: u64) -> Self {
        self.ao_samples = samples;
        self.ao_radius = radius;
        self.ao_seed = seed;
        self
    }

    /// Enables or disables adaptive (penumbra-only) ambient-occlusion sampling.
    #[must_use]
    pub fn with_adaptive_ao(mut self, adaptive: bool) -> Self {
        self.adaptive_ao = adaptive;
        self
    }

    /// Sets the mirror reflectivity of the one-bounce reflection pass (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_bounce(mut self, reflectivity: f32) -> Self {
        self.bounce_reflectivity = reflectivity.clamp(0.0, 1.0);
        self
    }
}

impl Default for RenderPasses {
    /// The shadow-only configuration under an overhead point light at `(0, 10, 0)` — no ambient
    /// occlusion, no bounce.  A neutral starting point for the builder methods.
    fn default() -> Self {
        RenderPasses::shadowed(Vec3::new(0.0, 10.0, 0.0))
    }
}

/// One frame description: the camera, the image dimensions, and the pass configuration —
/// `None` for a primary-only frame shaded under the fixed directional light
/// ([`default_light_dir`]), `Some` for the full deferred pipeline (shadows, optional ambient
/// occlusion, optional one-bounce reflections).
///
/// This is the *what* of a frame; the [`ExecPolicy`](crate::ExecPolicy) passed alongside it to
/// [`Renderer::render`] is the *how*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameDesc {
    /// The pinhole camera generating one primary ray per pixel.
    pub camera: Camera,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// The deferred pass configuration, or `None` for a primary-only frame.
    pub passes: Option<RenderPasses>,
}

impl FrameDesc {
    /// A primary-only frame: one closest-hit ray per pixel, shaded with the fixed directional
    /// light — no shadow, ambient-occlusion or bounce passes.
    #[must_use]
    pub fn primary(camera: Camera, width: usize, height: usize) -> Self {
        FrameDesc {
            camera,
            width,
            height,
            passes: None,
        }
    }

    /// A full deferred frame under the given pass configuration.
    #[must_use]
    pub fn deferred(camera: Camera, width: usize, height: usize, passes: RenderPasses) -> Self {
        FrameDesc {
            camera,
            width,
            height,
            passes: Some(passes),
        }
    }
}

/// Extracts the G-buffer of a primary pass: one `(point, normal)` surfel per hit pixel (in pixel
/// order) plus the pixel index each surfel shades.  Normals are unit length and oriented toward
/// the viewer (two-sided shading); a degenerate sliver triangle whose geometric normal cannot be
/// normalised falls back to facing the incoming ray, so no NaN ever enters the G-buffer.
#[must_use]
pub fn extract_surfels(
    triangles: &[Triangle],
    rays: &[Ray],
    hits: &[Option<TraversalHit>],
) -> (Vec<(Vec3, Vec3)>, Vec<usize>) {
    extract_surfels_with(&|prim| triangles[prim], rays, hits)
}

/// [`extract_surfels`] over an arbitrary primitive-id → world-triangle lookup — shared by the
/// slice frontend and the scene-backed frame pipelines.
fn extract_surfels_with(
    triangle: &dyn Fn(usize) -> Triangle,
    rays: &[Ray],
    hits: &[Option<TraversalHit>],
) -> (Vec<(Vec3, Vec3)>, Vec<usize>) {
    let mut surfels = Vec::new();
    let mut pixels = Vec::new();
    for (pixel, (ray, hit)) in rays.iter().zip(hits).enumerate() {
        let Some(hit) = hit else { continue };
        let point = ray.at(hit.t);
        let mut normal = triangle(hit.primitive).normal().normalized();
        if !normal.is_finite() {
            normal = -ray.dir.normalized();
        }
        if normal.dot(ray.dir) > 0.0 {
            normal = -normal;
        }
        surfels.push((point, normal));
        pixels.push(pixel);
    }
    (surfels, pixels)
}

/// Which query kind a deferred pass traces — the hook the three execution modes implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassKind {
    /// The primary pass: closest-hit rays.
    ClosestHit,
    /// The shadow and ambient-occlusion passes: any-hit rays.
    AnyHit,
}

/// The surfels that trace ambient-occlusion probes under **adaptive** sampling: surfels in the
/// shadow *penumbra*, i.e. with a 4-neighbour pixel whose surfel carries the opposite shadow
/// verdict.  Interior surfels of fully-lit or fully-shadowed regions (and surfels with no
/// surfel neighbours at all) skip their probes entirely.
fn penumbra_mask(
    width: usize,
    height: usize,
    surfel_pixels: &[usize],
    shadow_hits: &[Option<TraversalHit>],
) -> Vec<bool> {
    // Per-pixel shadow verdicts (None where the primary ray missed).
    let mut verdicts: Vec<Option<bool>> = vec![None; width * height];
    for (surfel, &pixel) in surfel_pixels.iter().enumerate() {
        verdicts[pixel] = Some(shadow_hits[surfel].is_some());
    }
    surfel_pixels
        .iter()
        .enumerate()
        .map(|(surfel, &pixel)| {
            let own = shadow_hits[surfel].is_some();
            let (x, y) = (pixel % width, pixel / width);
            let mut neighbours = [None; 4];
            if x > 0 {
                neighbours[0] = verdicts[pixel - 1];
            }
            if x + 1 < width {
                neighbours[1] = verdicts[pixel + 1];
            }
            if y > 0 {
                neighbours[2] = verdicts[pixel - width];
            }
            if y + 1 < height {
                neighbours[3] = verdicts[pixel + width];
            }
            neighbours
                .iter()
                .any(|&verdict| matches!(verdict, Some(v) if v != own))
        })
        .collect()
}

/// The ambient-occlusion pass shared by every frame pipeline: traces `ao_samples` hemisphere
/// probes per selected surfel (all surfels, or only the penumbra under adaptive sampling) and
/// returns one ambient visibility per surfel — `1.0` for skipped surfels.
fn ao_visibilities(
    width: usize,
    height: usize,
    passes: &RenderPasses,
    surfels: &[(Vec3, Vec3)],
    surfel_pixels: &[usize],
    shadow_hits: &[Option<TraversalHit>],
    trace: &mut impl FnMut(PassKind, &[Ray]) -> Vec<Option<TraversalHit>>,
) -> Vec<f32> {
    if passes.ao_samples == 0 {
        return vec![1.0; surfels.len()];
    }
    let visibility = |probes: &[Option<TraversalHit>]| {
        let occluded = probes.iter().filter(|probe| probe.is_some()).count();
        1.0 - occluded as f32 / passes.ao_samples as f32
    };
    if !passes.adaptive_ao {
        // Uniform sampling probes every surfel straight off the G-buffer slice — no mask and no
        // surfel copy on the default path.
        let ao_rays =
            ambient_occlusion_rays(passes.ao_seed, surfels, passes.ao_samples, passes.ao_radius);
        let ao_hits = trace(PassKind::AnyHit, &ao_rays);
        return ao_hits.chunks(passes.ao_samples).map(visibility).collect();
    }
    let probed_mask = penumbra_mask(width, height, surfel_pixels, shadow_hits);
    let probed: Vec<(Vec3, Vec3)> = surfels
        .iter()
        .zip(&probed_mask)
        .filter(|(_, &traced)| traced)
        .map(|(&surfel, _)| surfel)
        .collect();
    let ao_rays =
        ambient_occlusion_rays(passes.ao_seed, &probed, passes.ao_samples, passes.ao_radius);
    let ao_hits = trace(PassKind::AnyHit, &ao_rays);
    let mut probe_chunks = ao_hits.chunks(passes.ao_samples);
    probed_mask
        .iter()
        .map(|&traced| {
            if !traced {
                return 1.0;
            }
            // One probe chunk exists per traced surfel by construction; treat a missing
            // chunk as fully visible rather than panicking.
            probe_chunks.next().map_or(1.0, visibility)
        })
        .collect()
}

/// Validates a frame description before any beat is issued: the camera basis must be finite
/// and non-degenerate, and every configured pass knob finite.  Zero-dimension frames are valid
/// (they render an empty image), so this guards *malformed* requests, not small ones.
fn validate_frame(frame: &FrameDesc) -> Result<(), QueryError> {
    let invalid = |reason: &str| QueryError::InvalidRequest {
        reason: reason.to_owned(),
    };
    let camera = &frame.camera;
    if !camera.position.is_finite() || !camera.look_at.is_finite() || !camera.up.is_finite() {
        return Err(invalid("camera position/look_at/up must be finite"));
    }
    if (camera.look_at - camera.position).length_squared() == 0.0 {
        return Err(invalid("camera look_at coincides with its position"));
    }
    if camera.up.length_squared() == 0.0 {
        return Err(invalid("camera up vector must be non-zero"));
    }
    if !camera.fov_degrees.is_finite() || camera.fov_degrees <= 0.0 || camera.fov_degrees >= 180.0 {
        return Err(invalid("camera field of view must lie in (0, 180) degrees"));
    }
    if let Some(passes) = &frame.passes {
        if !passes.light.is_finite() {
            return Err(invalid("pass light position must be finite"));
        }
        if passes.ao_samples > 0 && !(passes.ao_radius.is_finite() && passes.ao_radius > 0.0) {
            return Err(invalid(
                "ambient-occlusion radius must be finite and positive when ao_samples > 0",
            ));
        }
        if !passes.bounce_reflectivity.is_finite()
            || !(0.0..=1.0).contains(&passes.bounce_reflectivity)
        {
            return Err(invalid("bounce reflectivity must be finite within [0, 1]"));
        }
    }
    Ok(())
}

/// The traversal backend of a frame: one engine, one scene, one policy.  Every pass stream —
/// single-kind or the fused bounce+shadow pair — routes through
/// [`TraversalEngine::trace`] under the same [`ExecPolicy`], which is what makes all execution
/// modes bit-identical by construction: the pipeline around the tracer is common code.
struct FrameTracer<'a> {
    engine: &'a mut TraversalEngine,
    scene: &'a Scene,
    policy: ExecPolicy,
    /// Frame-wide beat deadline ([`ExecPolicy::max_total_beats`]); `0` disables the budget and
    /// every pass traces to completion.
    budget: u64,
    /// The engine's lifetime beat total when the frame started — the budget is charged against
    /// `total_ops() - baseline_ops`, which also accounts the beats a cancelled pass spent.
    baseline_ops: u64,
    /// Set once the frame crosses its deadline; every later pass yields all-miss outputs
    /// without touching the datapath, so the pipeline drains cheaply and the caller can surface
    /// a typed error instead of a silently wrong image.
    exhausted: bool,
}

impl FrameTracer<'_> {
    /// Routes one request through the engine, enforcing the frame-level beat budget when one is
    /// set: a request starting past the deadline — or cancelled mid-run by the capped
    /// scheduler — marks the tracer exhausted.
    fn run(&mut self, request: &TraceRequest<'_>) -> TraceOutput {
        if self.budget == 0 {
            return self.engine.trace(request, &self.policy);
        }
        if !self.exhausted {
            let spent = self.engine.stats().total_ops() - self.baseline_ops;
            let remaining = self.budget.saturating_sub(spent);
            if remaining > 0 {
                let capped = self.policy.with_max_total_beats(remaining);
                if let Ok(QueryOutcome::Complete(output)) =
                    self.engine.trace_capped(request, &capped)
                {
                    return output;
                }
            }
            self.exhausted = true;
        }
        TraceOutput {
            closest: vec![None; request.closest_rays().len()],
            any: vec![None; request.any_rays().len()],
        }
    }

    /// Traces one single-kind pass stream under the frame's policy.
    fn trace(&mut self, kind: PassKind, rays: &[Ray]) -> Vec<Option<TraversalHit>> {
        let request = match kind {
            PassKind::ClosestHit => TraceRequest::closest_hit(self.scene, rays),
            PassKind::AnyHit => TraceRequest::any_hit(self.scene, rays),
        };
        let output = self.run(&request);
        match kind {
            PassKind::ClosestHit => output.closest,
            PassKind::AnyHit => output.any,
        }
    }

    /// Traces the bounce closest-hit stream and the shadow any-hit stream as one heterogeneous
    /// pair, returning `(bounce hits, shadow hits)`.  Under the fused policy the two kinds share
    /// bulk passes; under every other mode they trace closest-first — bit-identical either way.
    fn trace_pair(
        &mut self,
        bounce: &[Ray],
        shadow: &[Ray],
    ) -> (Vec<Option<TraversalHit>>, Vec<Option<TraversalHit>>) {
        let output = self.run(&TraceRequest::pair(self.scene, bounce, shadow));
        (output.closest, output.any)
    }
}

/// The bounce contribution of one surfel: the one-bounce mirror term, shading the bounce hit
/// with the same deferred model (unshadowed, full ambient visibility), `0.0` for an escaped
/// bounce ray.  Shared by the fused and reference frames so their pixels stay bit-identical.
fn shade_bounce(
    triangle: &dyn Fn(usize) -> Triangle,
    bounce_ray: &Ray,
    hit: Option<&TraversalHit>,
    light: Vec3,
) -> f32 {
    let Some(hit) = hit else { return 0.0 };
    let point = bounce_ray.at(hit.t);
    let mut normal = triangle(hit.primitive).normal().normalized();
    if !normal.is_finite() {
        normal = -bounce_ray.dir.normalized();
    }
    if normal.dot(bounce_ray.dir) > 0.0 {
        normal = -normal;
    }
    shade_deferred(point, normal, light, false, 1.0)
}

/// The primary-only frame pipeline: one closest-hit ray per pixel traced under the frame's
/// policy, shaded with the fixed directional light ([`default_light_dir`]).
fn primary_frame(
    camera: &Camera,
    width: usize,
    height: usize,
    tracer: &mut FrameTracer<'_>,
) -> Image {
    let light_dir = default_light_dir();
    let scene = tracer.scene;
    let rays = camera.primary_rays(width, height);
    let hits = tracer.trace(PassKind::ClosestHit, &rays);
    let pixels = hits
        .iter()
        .map(|hit| shade_primitive(&|prim| scene.triangle(prim), light_dir, hit.as_ref()))
        .collect();
    Image {
        width,
        height,
        pixels,
    }
}

/// The deferred frame pipeline: primary pass, surfel extraction, the bounce+shadow pair, the
/// optional ambient-occlusion pass, compose.  After surfel extraction the mirror-bounce
/// closest-hit stream and the shadow any-hit stream are traced **together** through the
/// tracer's pair hook, and the composed pixel adds `bounce_reflectivity × bounce term`.  With
/// `bounce_reflectivity == 0` the bounce stream is empty and the frame degenerates to the plain
/// shadow/AO pipeline (same rays, same beats — pinned by the zero-reflectivity golden test).
fn deferred_frame(
    camera: &Camera,
    width: usize,
    height: usize,
    passes: &RenderPasses,
    tracer: &mut FrameTracer<'_>,
) -> Image {
    let scene = tracer.scene;
    let triangle = |prim: usize| scene.triangle(prim);
    // Pass 1: primary closest-hit stream, one ray per pixel.
    let rays = camera.primary_rays(width, height);
    let hits = tracer.trace(PassKind::ClosestHit, &rays);

    // G-buffer: one surfel per hit pixel.
    let (surfels, surfel_pixels) = extract_surfels_with(&triangle, &rays, &hits);

    // Pass 2, fused: the bounce closest-hit stream and the shadow any-hit stream share the same
    // bulk passes over one datapath.  Each surfel's bounce ray mirrors the incident direction
    // that produced it (its pixel's primary ray).
    let bounce_rays = if passes.bounce_reflectivity > 0.0 {
        let incident: Vec<Vec3> = surfel_pixels.iter().map(|&pixel| rays[pixel].dir).collect();
        surfel_reflection_rays(&surfels, &incident)
    } else {
        Vec::new()
    };
    let shadow_rays = surfel_shadow_rays(&surfels, passes.light);
    let (bounce_hits, shadow_hits) = tracer.trace_pair(&bounce_rays, &shadow_rays);

    // Pass 3 (optional): ambient occlusion, exactly as in the plain deferred pipeline.
    let ao_visibility = ao_visibilities(
        width,
        height,
        passes,
        &surfels,
        &surfel_pixels,
        &shadow_hits,
        &mut |kind, rays| tracer.trace(kind, rays),
    );

    // Compose: the deferred base term plus the mirrored one-bounce contribution.
    let mut pixels = vec![0.0f32; width * height];
    for (surfel, &pixel) in surfel_pixels.iter().enumerate() {
        let (point, normal) = surfels[surfel];
        let mut value = shade_deferred(
            point,
            normal,
            passes.light,
            shadow_hits[surfel].is_some(),
            ao_visibility[surfel],
        );
        if passes.bounce_reflectivity > 0.0 {
            value += passes.bounce_reflectivity
                * shade_bounce(
                    &triangle,
                    &bounce_rays[surfel],
                    bounce_hits[surfel].as_ref(),
                    passes.light,
                );
        }
        pixels[pixel] = value.clamp(0.0, 1.0);
    }
    Image {
        width,
        height,
        pixels,
    }
}

/// A grayscale image produced by the renderer (one intensity in `[0, 1]` per pixel, row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

impl Image {
    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The intensity of pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    pub fn pixel(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Fraction of pixels whose primary ray hit geometry.
    #[must_use]
    pub fn coverage(&self) -> f32 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().filter(|&&p| p > 0.0).count() as f32 / self.pixels.len() as f32
    }

    /// Renders the image as ASCII art (one character per pixel), brightest to darkest.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let value = self.pixel(x, y).clamp(0.0, 1.0);
                let index = (value * (RAMP.len() - 1) as f32).round() as usize;
                out.push(RAMP[index] as char);
            }
            out.push('\n');
        }
        out
    }

    /// The coordinates of the first pixel whose **bit pattern** differs from `other`'s, scanning
    /// in row-major order, or `None` when every pixel is bit-identical — the comparison the
    /// golden tests, property tests and benchmark cross-checks all share.
    ///
    /// # Panics
    ///
    /// Panics if the images have different dimensions.
    #[must_use]
    pub fn first_mismatch(&self, other: &Image) -> Option<(usize, usize)> {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image shapes differ"
        );
        self.pixels
            .iter()
            .zip(&other.pixels)
            .position(|(a, b)| a.to_bits() != b.to_bits())
            .map(|index| (index % self.width, index / self.width))
    }

    /// Encodes the image as a binary PGM (portable graymap) file.
    #[must_use]
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(
            self.pixels
                .iter()
                .map(|p| (p.clamp(0.0, 1.0) * 255.0).round() as u8),
        );
        out
    }
}

/// The multi-pass deferred renderer, entirely driven by datapath beats.  One entry point —
/// [`Renderer::render`] — takes the frame description ([`FrameDesc`]: primary-only or the full
/// deferred pipeline) and the execution policy ([`ExecPolicy`](crate::ExecPolicy)); every mode
/// renders the same frame bit for bit.
#[derive(Debug)]
pub struct Renderer {
    engine: TraversalEngine,
}

impl Renderer {
    /// Creates a renderer over a baseline-unified datapath.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(PipelineConfig::baseline_unified())
    }

    /// Creates a renderer over a datapath of the given configuration.
    #[must_use]
    pub fn with_config(config: PipelineConfig) -> Self {
        Renderer {
            engine: TraversalEngine::with_config(config),
        }
    }

    /// Renders one frame — **the** rendering entry point, for every frame shape and every
    /// execution mode.
    ///
    /// The [`FrameDesc`] describes *what* to render (camera, dimensions, pass configuration:
    /// primary-only, shadowed, +AO, +bounce); the [`Scene`] carries the geometry (flat or
    /// two-level instanced — instanced frames are pixel-bit-identical to rendering
    /// [`Scene::flatten`]); the [`ExecPolicy`](crate::ExecPolicy) selects *how* every pass
    /// stream is traced (scalar reference, wavefront, parallel sharding, or fused — where the
    /// bounce closest-hit stream and the shadow any-hit stream share bulk passes over the
    /// engine's single datapath, the paper's §V-A scenario, honouring the policy's beat
    /// budget).
    ///
    /// Pixels and accumulated [`TraversalStats`] are **bit-identical across all execution
    /// modes** — pinned by the golden tests, `rtunit/tests/proptest_render.rs` and the
    /// cross-policy matrix in `rtunit/tests/proptest_policy.rs`.
    ///
    /// # Example
    ///
    /// ```
    /// use rayflex_geometry::{Triangle, Vec3};
    /// use rayflex_rtunit::{Camera, ExecPolicy, FrameDesc, Renderer, Scene};
    ///
    /// let scene = Scene::flat(vec![Triangle::new(
    ///     Vec3::new(-2.0, -2.0, 5.0),
    ///     Vec3::new(2.0, -2.0, 5.0),
    ///     Vec3::new(0.0, 2.0, 5.0),
    /// )]);
    /// let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
    /// let mut renderer = Renderer::new();
    /// let frame = FrameDesc::primary(camera, 16, 12);
    /// let image = renderer.render(&scene, &frame, &ExecPolicy::wavefront());
    /// assert!(image.coverage() > 0.0);
    /// ```
    pub fn render(&mut self, scene: &Scene, frame: &FrameDesc, policy: &ExecPolicy) -> Image {
        let mut tracer = FrameTracer {
            engine: &mut self.engine,
            scene,
            policy: *policy,
            budget: 0,
            baseline_ops: 0,
            exhausted: false,
        };
        match &frame.passes {
            None => primary_frame(&frame.camera, frame.width, frame.height, &mut tracer),
            Some(passes) => deferred_frame(
                &frame.camera,
                frame.width,
                frame.height,
                passes,
                &mut tracer,
            ),
        }
    }

    /// Renders one frame with up-front validation and deadline-aware cancellation — the
    /// `Result`-returning variant of [`Renderer::render`].
    ///
    /// The scene is checked by [`SceneValidator`] and the frame description is checked for
    /// finiteness (camera basis, field of view, light, AO radius, bounce reflectivity) before
    /// any beat is issued.  When the policy carries a deadline
    /// ([`ExecPolicy::with_max_total_beats`]) the budget spans the **whole frame**: every pass
    /// stream runs capped by the remaining beats, the first pass to overrun is cancelled
    /// cooperatively at a pass boundary, and the rest of the pipeline drains without touching
    /// the datapath.  A frame that crosses its deadline surfaces
    /// [`QueryError::DeadlineExceeded`] rather than a silently incomplete image; an uncapped
    /// `try_render` is pixel-bit-identical to [`Renderer::render`].
    ///
    /// # Errors
    ///
    /// * [`QueryError::InvalidScene`] — non-finite vertices, degenerate triangles, or a
    ///   malformed BVH.
    /// * [`QueryError::InvalidRequest`] — a non-finite or degenerate camera / pass
    ///   configuration.  Zero-dimension frames are *valid* and render an empty image.
    /// * [`QueryError::DeadlineExceeded`] — the frame crossed
    ///   [`ExecPolicy::max_total_beats`].
    ///
    /// # Example
    ///
    /// ```
    /// use rayflex_geometry::{Triangle, Vec3};
    /// use rayflex_rtunit::{Camera, ExecPolicy, FrameDesc, QueryError, Renderer, Scene};
    ///
    /// let scene = Scene::flat(vec![Triangle::new(
    ///     Vec3::new(-2.0, -2.0, 5.0),
    ///     Vec3::new(2.0, -2.0, 5.0),
    ///     Vec3::new(0.0, 2.0, 5.0),
    /// )]);
    /// let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
    /// let frame = FrameDesc::primary(camera, 16, 12);
    /// let mut renderer = Renderer::new();
    ///
    /// let image = renderer
    ///     .try_render(&scene, &frame, &ExecPolicy::wavefront())
    ///     .unwrap();
    /// assert!(image.coverage() > 0.0);
    ///
    /// // One beat is never enough for a 16x12 frame: the deadline surfaces as a typed error.
    /// let starved = ExecPolicy::wavefront().with_max_total_beats(1);
    /// let err = renderer.try_render(&scene, &frame, &starved).unwrap_err();
    /// assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
    /// ```
    pub fn try_render(
        &mut self,
        scene: &Scene,
        frame: &FrameDesc,
        policy: &ExecPolicy,
    ) -> Result<Image, QueryError> {
        SceneValidator::validate_scene(scene)?;
        validate_frame(frame)?;
        let baseline_ops = self.engine.stats().total_ops();
        let mut tracer = FrameTracer {
            engine: &mut self.engine,
            scene,
            policy: *policy,
            budget: policy.max_total_beats,
            baseline_ops,
            exhausted: false,
        };
        let image = match &frame.passes {
            None => primary_frame(&frame.camera, frame.width, frame.height, &mut tracer),
            Some(passes) => deferred_frame(
                &frame.camera,
                frame.width,
                frame.height,
                passes,
                &mut tracer,
            ),
        };
        let exhausted = tracer.exhausted;
        if exhausted {
            return Err(QueryError::DeadlineExceeded {
                beats_spent: self.engine.stats().total_ops() - baseline_ops,
                max_total_beats: policy.max_total_beats,
            });
        }
        Ok(image)
    }

    // --- Deprecated flat-signature entry points, kept as thin shims over `render`. -----------

    /// [`Renderer::render`] over a loose `(bvh, triangles)` pair — the pre-[`Scene`]
    /// signature.  Clones the borrowed geometry into a flat [`Scene`]; wrap the scene once
    /// with [`Scene::from_parts`] instead.
    #[deprecated(note = "wrap the geometry once with Scene::from_parts and call \
                         Renderer::render(&scene, ..)")]
    pub fn render_flat(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        frame: &FrameDesc,
        policy: &ExecPolicy,
    ) -> Image {
        self.render(
            &Scene::from_parts(bvh.clone(), triangles.to_vec()),
            frame,
            policy,
        )
    }

    /// [`Renderer::try_render`] over a loose `(bvh, triangles)` pair — the pre-[`Scene`]
    /// signature.
    ///
    /// # Errors
    ///
    /// Exactly [`Renderer::try_render`]'s.
    #[deprecated(note = "wrap the geometry once with Scene::from_parts and call \
                         Renderer::try_render(&scene, ..)")]
    pub fn try_render_flat(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        frame: &FrameDesc,
        policy: &ExecPolicy,
    ) -> Result<Image, QueryError> {
        self.try_render(
            &Scene::from_parts(bvh.clone(), triangles.to_vec()),
            frame,
            policy,
        )
    }

    // --- Deprecated pre-policy frame flavours, kept as thin shims over `render`. -------------

    /// The scalar per-pixel reference of a primary-only frame.
    #[deprecated(note = "use Renderer::render(.., &FrameDesc::primary(..), \
                         &ExecPolicy::scalar())")]
    pub fn render_reference(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        camera: &Camera,
        width: usize,
        height: usize,
    ) -> Image {
        self.render(
            &Scene::from_parts(bvh.clone(), triangles.to_vec()),
            &FrameDesc::primary(*camera, width, height),
            &ExecPolicy::scalar(),
        )
    }

    /// Renders one deferred frame (shadow + optional AO passes, no bounce) through the batched
    /// wavefront.
    #[deprecated(note = "use Renderer::render(.., &FrameDesc::deferred(..), \
                         &ExecPolicy::wavefront())")]
    pub fn render_deferred(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        camera: &Camera,
        width: usize,
        height: usize,
        passes: &RenderPasses,
    ) -> Image {
        // The pre-policy method ignored the bounce knob; preserve that exactly.
        let plain = RenderPasses {
            bounce_reflectivity: 0.0,
            ..*passes
        };
        self.render(
            &Scene::from_parts(bvh.clone(), triangles.to_vec()),
            &FrameDesc::deferred(*camera, width, height, plain),
            &ExecPolicy::wavefront(),
        )
    }

    /// The scalar multi-pass reference of a deferred frame (no bounce).
    #[deprecated(note = "use Renderer::render(.., &FrameDesc::deferred(..), \
                         &ExecPolicy::scalar())")]
    pub fn render_deferred_reference(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        camera: &Camera,
        width: usize,
        height: usize,
        passes: &RenderPasses,
    ) -> Image {
        let plain = RenderPasses {
            bounce_reflectivity: 0.0,
            ..*passes
        };
        self.render(
            &Scene::from_parts(bvh.clone(), triangles.to_vec()),
            &FrameDesc::deferred(*camera, width, height, plain),
            &ExecPolicy::scalar(),
        )
    }

    /// Renders one deferred frame **plus the one-bounce mirror pass**, the bounce and shadow
    /// streams fused in shared bulk passes.
    #[deprecated(note = "use Renderer::render(.., &FrameDesc::deferred(..) with \
                         RenderPasses::with_bounce, &ExecPolicy::fused())")]
    pub fn render_deferred_bounce(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        camera: &Camera,
        width: usize,
        height: usize,
        passes: &RenderPasses,
    ) -> Image {
        self.render(
            &Scene::from_parts(bvh.clone(), triangles.to_vec()),
            &FrameDesc::deferred(*camera, width, height, *passes),
            &ExecPolicy::fused(),
        )
    }

    /// The scalar sequential reference of the bounce frame.
    #[deprecated(note = "use Renderer::render(.., &FrameDesc::deferred(..) with \
                         RenderPasses::with_bounce, &ExecPolicy::scalar())")]
    pub fn render_deferred_bounce_reference(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        camera: &Camera,
        width: usize,
        height: usize,
        passes: &RenderPasses,
    ) -> Image {
        self.render(
            &Scene::from_parts(bvh.clone(), triangles.to_vec()),
            &FrameDesc::deferred(*camera, width, height, *passes),
            &ExecPolicy::scalar(),
        )
    }

    /// Per-opcode (and per-query-kind) breakdown of every beat the renderer's datapath has
    /// executed — the fused bounce+shadow passes show up in its `fused_passes` count and
    /// per-kind columns.
    #[must_use]
    pub fn beat_mix(&self) -> rayflex_core::BeatMix {
        self.engine.beat_mix()
    }

    /// The traversal statistics accumulated over everything rendered so far.
    #[must_use]
    pub fn stats(&self) -> TraversalStats {
        self.engine.stats()
    }
}

impl Default for Renderer {
    fn default() -> Self {
        Self::new()
    }
}

/// A deferred frame (no bounce) with every pass sharded across up to `threads` workers.
#[deprecated(note = "use Renderer::render(.., &FrameDesc::deferred(..), \
                     &ExecPolicy::parallel(threads)) — stats come from Renderer::stats")]
#[must_use]
#[allow(clippy::too_many_arguments)] // the pre-policy signature: config + scene + frame + tuning
pub fn render_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    camera: &Camera,
    width: usize,
    height: usize,
    passes: &RenderPasses,
    threads: usize,
) -> (Image, TraversalStats) {
    let plain = RenderPasses {
        bounce_reflectivity: 0.0,
        ..*passes
    };
    let mut renderer = Renderer::with_config(config);
    let image = renderer.render(
        &Scene::from_parts(bvh.clone(), triangles.to_vec()),
        &FrameDesc::deferred(*camera, width, height, plain),
        &ExecPolicy::parallel(threads),
    );
    (image, renderer.stats())
}

/// A deferred frame including the one-bounce pass with every pass sharded across up to
/// `threads` workers (the bounce+shadow pair runs fused inside each worker).
#[deprecated(note = "use Renderer::render(.., &FrameDesc::deferred(..), \
                     &ExecPolicy::parallel(threads)) — stats come from Renderer::stats")]
#[must_use]
#[allow(clippy::too_many_arguments)] // the pre-policy signature: config + scene + frame + tuning
pub fn render_bounce_parallel(
    config: PipelineConfig,
    bvh: &Bvh4,
    triangles: &[Triangle],
    camera: &Camera,
    width: usize,
    height: usize,
    passes: &RenderPasses,
    threads: usize,
) -> (Image, TraversalStats) {
    let mut renderer = Renderer::with_config(config);
    let image = renderer.render(
        &Scene::from_parts(bvh.clone(), triangles.to_vec()),
        &FrameDesc::deferred(*camera, width, height, *passes),
        &ExecPolicy::parallel(threads),
    );
    (image, renderer.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ExecMode;
    use rayflex_workloads::scenes;

    fn quad_at_z(z: f32, half: f32) -> Vec<Triangle> {
        vec![
            Triangle::new(
                Vec3::new(-half, -half, z),
                Vec3::new(half, -half, z),
                Vec3::new(half, half, z),
            ),
            Triangle::new(
                Vec3::new(-half, -half, z),
                Vec3::new(half, half, z),
                Vec3::new(-half, half, z),
            ),
        ]
    }

    /// A floor quad at `y = 0` spanning ±`half` in x/z, wound like the `soft_shadow` floor so
    /// rays arriving from above hit it under the paper's `dir · (AB × AC) > 0` culling
    /// convention.
    fn floor_quad(half: f32) -> Vec<Triangle> {
        vec![
            Triangle::new(
                Vec3::new(-half, 0.0, -half),
                Vec3::new(half, 0.0, -half),
                Vec3::new(half, 0.0, half),
            ),
            Triangle::new(
                Vec3::new(-half, 0.0, -half),
                Vec3::new(half, 0.0, half),
                Vec3::new(-half, 0.0, half),
            ),
        ]
    }

    fn assert_images_bit_identical(a: &Image, b: &Image, what: &str) {
        assert_eq!(a.first_mismatch(b), None, "{what}");
    }

    /// The policy sweep of the renderer golden tests: the reference first, then every other
    /// mode (including budgeted fusion).
    fn non_reference_policies() -> Vec<ExecPolicy> {
        vec![
            ExecPolicy::wavefront(),
            ExecPolicy::parallel(4),
            ExecPolicy::fused(),
            ExecPolicy::fused().with_beat_budget(1),
        ]
    }

    #[test]
    fn camera_rays_cover_the_view_frustum() {
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let center = camera.primary_ray(16, 16, 32, 32);
        assert!(center.dir.z > 0.9 * center.dir.length());
        let corner = camera.primary_ray(0, 0, 32, 32);
        assert!(corner.dir.x < 0.0 && corner.dir.y > 0.0);
    }

    #[test]
    fn the_hoisted_basis_matches_per_pixel_rays_bit_for_bit() {
        let camera = Camera::looking_at(Vec3::new(1.0, 2.0, -3.0), Vec3::new(0.5, 0.0, 9.0));
        let (width, height) = (17, 11);
        let basis = camera.basis(width, height);
        let frame = camera.primary_rays(width, height);
        for y in 0..height {
            for x in 0..width {
                let per_pixel = camera.primary_ray(x, y, width, height);
                let from_basis = basis.primary_ray(x, y);
                assert_eq!(per_pixel, from_basis, "pixel ({x}, {y})");
                assert_eq!(frame[y * width + x], per_pixel, "pixel ({x}, {y})");
            }
        }
    }

    #[test]
    fn straight_down_camera_renders_without_nan_rays() {
        // Regression test for the degenerate-basis bug: `up × forward` is the zero vector when
        // the camera looks straight along the up axis, and normalising it poisoned every ray of
        // the frame with NaN directions.
        let triangles = floor_quad(50.0);
        let world = Scene::flat(triangles.clone());
        for look in [Vec3::new(0.0, -1.0, 0.0), Vec3::new(0.0, 1.0, 0.0)] {
            let camera = Camera::looking_at(
                Vec3::new(0.0, 10.0, 0.0),
                Vec3::new(0.0, 10.0, 0.0) + look * 10.0,
            );
            let rays = camera.primary_rays(16, 16);
            assert!(
                rays.iter()
                    .all(|r| r.dir.is_finite() && r.origin.is_finite()),
                "no NaN ray directions looking along {look:?}"
            );
            let mut renderer = Renderer::new();
            let image = renderer.render(
                &world,
                &FrameDesc::primary(camera, 16, 16),
                &ExecPolicy::wavefront(),
            );
            for y in 0..16 {
                for x in 0..16 {
                    assert!(image.pixel(x, y).is_finite(), "pixel ({x}, {y}) is NaN");
                }
            }
            if look.y < 0.0 {
                assert!(image.coverage() > 0.9, "the floor fills the downward view");
            }
        }
    }

    #[test]
    fn rendering_a_facing_quad_covers_the_image_centre() {
        let triangles = quad_at_z(5.0, 2.0);
        let world = Scene::flat(triangles.clone());
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let mut renderer = Renderer::new();
        let image = renderer.render(
            &world,
            &FrameDesc::primary(camera, 24, 24),
            &ExecPolicy::wavefront(),
        );
        assert_eq!(image.width(), 24);
        assert_eq!(image.height(), 24);
        assert!(image.pixel(12, 12) > 0.0, "centre pixel must be covered");
        assert!(image.coverage() > 0.3, "coverage {}", image.coverage());
        assert!(image.coverage() < 1.0, "corners should miss");
        assert!(renderer.stats().rays >= 24 * 24);
    }

    #[test]
    fn primary_frames_are_bit_identical_across_every_policy() {
        // The golden test of the primary renderer: every execution mode's frame equals the
        // scalar per-pixel reference frame, and the traversal statistics match exactly.
        let triangles = scenes::icosphere(2, 5.0, Vec3::new(0.0, 0.0, 20.0));
        let world = Scene::flat(triangles.clone());
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 20.0));
        let frame = FrameDesc::primary(camera, 32, 24);

        let mut reference = Renderer::new();
        let expected = reference.render(&world, &frame, &ExecPolicy::scalar());
        assert!(expected.coverage() > 0.1, "the icosphere is visible");

        for policy in non_reference_policies() {
            let mut renderer = Renderer::new();
            let image = renderer.render(&world, &frame, &policy);
            assert_images_bit_identical(&image, &expected, "primary frame");
            assert_eq!(
                renderer.stats(),
                reference.stats(),
                "identical TraversalStats under {}",
                policy.mode
            );
        }
    }

    #[test]
    fn deferred_frames_are_bit_identical_across_every_policy() {
        // The golden test of the multi-pass deferred renderer: shadowed and shadowed+AO frames
        // equal the scalar multi-pass reference pixel-bit-for-bit and stat-for-stat under every
        // execution policy.
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        let camera = Camera::looking_at(scene.eye, scene.target);
        let configs = [
            RenderPasses::shadowed(scene.light),
            RenderPasses::shadowed(scene.light).with_ambient_occlusion(3, 6.0, 2024),
        ];
        for passes in configs {
            let frame = FrameDesc::deferred(camera, 24, 18, passes);
            let mut reference = Renderer::new();
            let expected = reference.render(&world, &frame, &ExecPolicy::scalar());
            assert!(expected.coverage() > 0.2, "the lit scene is visible");

            for policy in non_reference_policies() {
                let mut renderer = Renderer::new();
                let image = renderer.render(&world, &frame, &policy);
                assert_images_bit_identical(&image, &expected, "deferred frame");
                assert_eq!(
                    renderer.stats(),
                    reference.stats(),
                    "identical TraversalStats under {}",
                    policy.mode
                );
            }
        }
    }

    #[test]
    fn bounce_frames_are_bit_identical_across_every_policy_and_observably_fused() {
        // The golden test of the one-bounce reflection pass: the frame whose bounce closest-hit
        // stream and shadow any-hit stream can share bulk passes equals the scalar sequential
        // reference pixel-bit-for-bit and stat-for-stat, with and without AO, under every
        // policy — and under the fused policy the sharing is observable in the beat mix.
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        let camera = Camera::looking_at(scene.eye, scene.target);
        let configs = [
            RenderPasses::shadowed(scene.light).with_bounce(0.4),
            RenderPasses::shadowed(scene.light)
                .with_bounce(0.25)
                .with_ambient_occlusion(3, 6.0, 2024),
        ];
        for passes in configs {
            let frame = FrameDesc::deferred(camera, 24, 18, passes);
            let mut reference = Renderer::new();
            let expected = reference.render(&world, &frame, &ExecPolicy::scalar());

            for policy in non_reference_policies() {
                let mut renderer = Renderer::new();
                let image = renderer.render(&world, &frame, &policy);
                assert_images_bit_identical(&image, &expected, "bounce frame");
                assert_eq!(
                    renderer.stats(),
                    reference.stats(),
                    "identical TraversalStats under {}",
                    policy.mode
                );
                if policy.mode == ExecMode::Fused {
                    // The fusion itself is observable: bounce (closest-hit) and shadow
                    // (any-hit) beats shared bulk passes on the fused renderer's datapath.
                    let mix = renderer.beat_mix();
                    assert!(mix.fused_passes() > 0, "bounce and shadow shared passes");
                    assert!(mix.kind_total(rayflex_core::QueryKind::ClosestHit) > 0);
                    assert!(mix.kind_total(rayflex_core::QueryKind::AnyHit) > 0);
                }
            }
        }
    }

    #[test]
    fn a_zero_reflectivity_bounce_frame_equals_the_plain_deferred_frame() {
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        let camera = Camera::looking_at(scene.eye, scene.target);
        let passes = RenderPasses::shadowed(scene.light).with_ambient_occlusion(2, 5.0, 9);
        let frame = FrameDesc::deferred(camera, 20, 14, passes.with_bounce(0.0));
        let mut renderer = Renderer::new();
        let deferred = renderer.render(&world, &frame, &ExecPolicy::wavefront());
        let fused = renderer.render(&world, &frame, &ExecPolicy::fused());
        assert_images_bit_identical(&deferred, &fused, "reflectivity 0 disables the bounce");
    }

    #[test]
    fn the_bounce_pass_only_brightens_and_shows_reflections() {
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        let camera = Camera::looking_at(scene.eye, scene.target);
        let base_passes = RenderPasses::shadowed(scene.light);
        let mut renderer = Renderer::new();
        let base = renderer.render(
            &world,
            &FrameDesc::deferred(camera, 24, 18, base_passes),
            &ExecPolicy::fused(),
        );
        let bounced = renderer.render(
            &world,
            &FrameDesc::deferred(camera, 24, 18, base_passes.with_bounce(0.5)),
            &ExecPolicy::fused(),
        );
        let mut brightened = 0;
        for y in 0..18 {
            for x in 0..24 {
                assert!(
                    bounced.pixel(x, y) >= base.pixel(x, y) - 1e-6,
                    "an additive mirror term cannot darken pixel ({x}, {y})"
                );
                if bounced.pixel(x, y) > base.pixel(x, y) + 1e-3 {
                    brightened += 1;
                }
            }
        }
        assert!(brightened > 0, "some pixels pick up reflected light");
    }

    #[test]
    fn adaptive_ao_off_pins_the_uniform_sampling_frame() {
        // The golden test of the adaptive-AO satellite: with adaptivity off the frame is the
        // uniform-sampling frame, bit for bit (the flag defaults to off, so this also pins
        // backward compatibility of the deferred pipeline).
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        let camera = Camera::looking_at(scene.eye, scene.target);
        let uniform = RenderPasses::shadowed(scene.light).with_ambient_occlusion(4, 6.0, 2024);
        let explicit_off = uniform.with_adaptive_ao(false);
        let mut renderer = Renderer::new();
        let policy = ExecPolicy::wavefront();
        let a = renderer.render(
            &world,
            &FrameDesc::deferred(camera, 24, 18, uniform),
            &policy,
        );
        let b = renderer.render(
            &world,
            &FrameDesc::deferred(camera, 24, 18, explicit_off),
            &policy,
        );
        assert_images_bit_identical(&a, &b, "adaptivity off is the uniform frame");
    }

    #[test]
    fn adaptive_ao_skips_probes_outside_the_penumbra_in_every_mode() {
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        // The straight-down framing guarantees large fully-lit floor regions around a real
        // shadow boundary, so adaptivity has something to skip *and* something to keep.
        let camera = Camera::looking_at(Vec3::new(0.0, 20.0, -0.1), Vec3::new(0.0, 0.0, 0.0));
        let uniform = RenderPasses::shadowed(scene.light).with_ambient_occlusion(4, 6.0, 7);
        let adaptive = uniform.with_adaptive_ao(true);
        let (width, height) = (24, 24);
        let uniform_frame = FrameDesc::deferred(camera, width, height, uniform);
        let adaptive_frame = FrameDesc::deferred(camera, width, height, adaptive);

        let mut uniform_renderer = Renderer::new();
        let _ = uniform_renderer.render(&world, &uniform_frame, &ExecPolicy::wavefront());
        let mut adaptive_renderer = Renderer::new();
        let adaptive_image =
            adaptive_renderer.render(&world, &adaptive_frame, &ExecPolicy::wavefront());
        assert!(
            adaptive_renderer.stats().rays < uniform_renderer.stats().rays,
            "penumbra-only sampling traces fewer AO probes ({} vs {})",
            adaptive_renderer.stats().rays,
            uniform_renderer.stats().rays
        );

        // Every execution mode agrees on the adaptive frame too.
        let mut reference = Renderer::new();
        let expected = reference.render(&world, &adaptive_frame, &ExecPolicy::scalar());
        assert_images_bit_identical(&adaptive_image, &expected, "adaptive frame");
        assert_eq!(adaptive_renderer.stats(), reference.stats());
        let mut parallel = Renderer::new();
        let parallel_image = parallel.render(&world, &adaptive_frame, &ExecPolicy::parallel(4));
        assert_images_bit_identical(&adaptive_image, &parallel_image, "parallel adaptive frame");
        assert_eq!(adaptive_renderer.stats(), parallel.stats());
    }

    #[test]
    fn the_shadow_pass_darkens_occluded_floor_pixels() {
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        // Look straight down at the floor under the occluder from high above: the shadow of the
        // floating sphere must produce pixels strictly darker than the lit floor around them.
        let camera = Camera::looking_at(Vec3::new(0.0, 20.0, -0.1), Vec3::new(0.0, 0.0, 0.0));
        let frame = FrameDesc::deferred(camera, 24, 24, RenderPasses::shadowed(scene.light));
        let mut renderer = Renderer::new();
        let image = renderer.render(&world, &frame, &ExecPolicy::wavefront());
        let mut values: Vec<f32> = (0..24 * 24)
            .map(|i| image.pixel(i % 24, i / 24))
            .filter(|&p| p > 0.0)
            .collect();
        values.sort_by(f32::total_cmp);
        assert!(!values.is_empty());
        let (darkest, brightest) = (values[0], values[values.len() - 1]);
        assert!(
            brightest > darkest + 0.3,
            "shadowed pixels ({darkest}) must be darker than lit ones ({brightest})"
        );
    }

    #[test]
    fn ambient_occlusion_darkens_but_never_brightens() {
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        let camera = Camera::looking_at(scene.eye, scene.target);
        let shadow_only = RenderPasses::shadowed(scene.light);
        let with_ao = shadow_only.with_ambient_occlusion(8, 8.0, 7);
        let mut renderer = Renderer::new();
        let policy = ExecPolicy::wavefront();
        let base = renderer.render(
            &world,
            &FrameDesc::deferred(camera, 20, 16, shadow_only),
            &policy,
        );
        let ao = renderer.render(
            &world,
            &FrameDesc::deferred(camera, 20, 16, with_ao),
            &policy,
        );
        let mut darkened = 0;
        for y in 0..16 {
            for x in 0..20 {
                assert!(
                    ao.pixel(x, y) <= base.pixel(x, y) + 1e-6,
                    "AO can only darken pixel ({x}, {y})"
                );
                if ao.pixel(x, y) < base.pixel(x, y) - 1e-3 {
                    darkened += 1;
                }
            }
        }
        assert!(darkened > 0, "some pixels show ambient occlusion");
    }

    #[test]
    fn zero_sized_frames_render_without_panicking() {
        let triangles = quad_at_z(5.0, 2.0);
        let world = Scene::flat(triangles.clone());
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let passes = RenderPasses::shadowed(Vec3::new(0.0, 10.0, 0.0));
        let mut renderer = Renderer::new();
        for (width, height) in [(0, 0), (0, 8), (8, 0)] {
            let frame = FrameDesc::deferred(camera, width, height, passes);
            let image = renderer.render(&world, &frame, &ExecPolicy::wavefront());
            assert_eq!((image.width(), image.height()), (width, height));
            assert_eq!(image.coverage(), 0.0);
            assert!(image.to_ascii().chars().all(|c| c == '\n'));
            let parallel_image = renderer.render(&world, &frame, &ExecPolicy::parallel(4));
            assert_eq!(image, parallel_image);
        }
    }

    #[test]
    fn a_light_exactly_on_a_surfel_stays_finite() {
        // The degenerate shadow-ray extent: place the light exactly on the surfel of the centre
        // pixel.  The shadow ray collapses to an empty extent (never reports occlusion) and
        // shading must not divide by the zero light distance.
        let triangles = quad_at_z(5.0, 4.0);
        let world = Scene::flat(triangles.clone());
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let (width, height) = (9, 9);
        let mut engine = TraversalEngine::baseline();
        let rays = camera.primary_rays(width, height);
        let hits = engine
            .trace(
                &TraceRequest::closest_hit(&world, &rays),
                &ExecPolicy::wavefront(),
            )
            .into_closest();
        let (surfels, _) = extract_surfels(&triangles, &rays, &hits);
        let light_on_surfel = surfels[surfels.len() / 2].0;

        let passes = RenderPasses::shadowed(light_on_surfel).with_ambient_occlusion(2, 1.0, 3);
        let frame = FrameDesc::deferred(camera, width, height, passes);
        let mut renderer = Renderer::new();
        let image = renderer.render(&world, &frame, &ExecPolicy::wavefront());
        let mut reference = Renderer::new();
        let expected = reference.render(&world, &frame, &ExecPolicy::scalar());
        assert_images_bit_identical(&image, &expected, "degenerate-light frame");
        for y in 0..height {
            for x in 0..width {
                assert!(image.pixel(x, y).is_finite(), "pixel ({x}, {y}) is NaN");
            }
        }
    }

    #[test]
    fn zero_ao_samples_equals_the_shadow_only_frame() {
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        let camera = Camera::looking_at(scene.eye, scene.target);
        let shadow_only = RenderPasses::shadowed(scene.light);
        let zero_ao = shadow_only.with_ambient_occlusion(0, 4.0, 11);
        let mut renderer = Renderer::new();
        let policy = ExecPolicy::wavefront();
        let a = renderer.render(
            &world,
            &FrameDesc::deferred(camera, 16, 12, shadow_only),
            &policy,
        );
        let b = renderer.render(
            &world,
            &FrameDesc::deferred(camera, 16, 12, zero_ao),
            &policy,
        );
        assert_images_bit_identical(&a, &b, "samples_per_point == 0 skips the AO pass");
    }

    #[test]
    fn fully_shadowed_frames_stay_well_formed() {
        // A floor seen from above with an occluder quad covering the whole sky between floor and
        // light: every surfel is shadowed, leaving only the ambient term.  Coverage, ASCII and
        // PGM outputs must stay well-formed with no NaN.
        let mut triangles = floor_quad(40.0);
        // The occluder ceiling is wound the other way (normal up) so the upward shadow rays
        // strike its front face.
        let half = 60.0;
        triangles.push(Triangle::new(
            Vec3::new(-half, 15.0, -half),
            Vec3::new(half, 15.0, half),
            Vec3::new(half, 15.0, -half),
        ));
        triangles.push(Triangle::new(
            Vec3::new(-half, 15.0, -half),
            Vec3::new(-half, 15.0, half),
            Vec3::new(half, 15.0, half),
        ));
        let world = Scene::flat(triangles.clone());
        let camera = Camera::looking_at(Vec3::new(0.0, 10.0, -20.0), Vec3::new(0.0, 0.0, 10.0));
        let frame = FrameDesc::deferred(
            camera,
            16,
            8,
            RenderPasses::shadowed(Vec3::new(0.0, 100.0, 0.0)),
        );
        let mut renderer = Renderer::new();
        let image = renderer.render(&world, &frame, &ExecPolicy::wavefront());
        assert!(image.coverage() > 0.0, "the floor is visible");
        let floor_pixels: Vec<f32> = (0..16 * 8)
            .map(|i| image.pixel(i % 16, i / 16))
            .filter(|&p| p > 0.0)
            .collect();
        assert!(
            floor_pixels
                .iter()
                .all(|&p| p.is_finite() && p <= 0.15 + 1e-6),
            "every covered pixel is shadowed down to the ambient term"
        );
        let ascii = image.to_ascii();
        assert_eq!(ascii.lines().count(), 8);
        let pgm = image.to_pgm();
        assert_eq!(pgm.len(), b"P5\n16 8\n255\n".len() + 16 * 8);
    }

    #[test]
    fn ascii_and_pgm_outputs_are_well_formed() {
        let triangles = quad_at_z(5.0, 2.0);
        let world = Scene::flat(triangles.clone());
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let image = Renderer::new().render(
            &world,
            &FrameDesc::primary(camera, 16, 8),
            &ExecPolicy::wavefront(),
        );
        let ascii = image.to_ascii();
        assert_eq!(ascii.lines().count(), 8);
        assert!(ascii.lines().all(|l| l.chars().count() == 16));
        let pgm = image.to_pgm();
        assert!(pgm.starts_with(b"P5\n16 8\n255\n"));
        assert_eq!(pgm.len(), b"P5\n16 8\n255\n".len() + 16 * 8);
    }

    #[test]
    fn render_passes_default_is_the_shadowed_builder_seed() {
        let default = RenderPasses::default();
        assert_eq!(default, RenderPasses::shadowed(Vec3::new(0.0, 10.0, 0.0)));
        assert_eq!(default.ao_samples, 0);
        assert_eq!(default.bounce_reflectivity, 0.0);
        assert!(!default.adaptive_ao);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_render_shims_delegate_to_the_policy_entry_point() {
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        let bvh = Bvh4::build(&scene.triangles);
        let camera = Camera::looking_at(scene.eye, scene.target);
        let passes = RenderPasses::shadowed(scene.light)
            .with_ambient_occlusion(2, 6.0, 11)
            .with_bounce(0.3);
        let (width, height) = (16, 12);
        let plain = RenderPasses {
            bounce_reflectivity: 0.0,
            ..passes
        };

        let mut policy_renderer = Renderer::new();
        let deferred = policy_renderer.render(
            &world,
            &FrameDesc::deferred(camera, width, height, plain),
            &ExecPolicy::wavefront(),
        );
        let bounce = policy_renderer.render(
            &world,
            &FrameDesc::deferred(camera, width, height, passes),
            &ExecPolicy::fused(),
        );
        let primary_reference = policy_renderer.render(
            &world,
            &FrameDesc::primary(camera, width, height),
            &ExecPolicy::scalar(),
        );

        let mut shim = Renderer::new();
        assert_images_bit_identical(
            &shim.render_deferred(&bvh, &scene.triangles, &camera, width, height, &passes),
            &deferred,
            "render_deferred shim",
        );
        assert_images_bit_identical(
            &shim.render_deferred_bounce(&bvh, &scene.triangles, &camera, width, height, &passes),
            &bounce,
            "render_deferred_bounce shim",
        );
        assert_images_bit_identical(
            &shim.render_reference(&bvh, &scene.triangles, &camera, width, height),
            &primary_reference,
            "render_reference shim",
        );
        assert_images_bit_identical(
            &shim.render_deferred_reference(
                &bvh,
                &scene.triangles,
                &camera,
                width,
                height,
                &passes,
            ),
            &deferred,
            "render_deferred_reference shim",
        );
        assert_images_bit_identical(
            &shim.render_deferred_bounce_reference(
                &bvh,
                &scene.triangles,
                &camera,
                width,
                height,
                &passes,
            ),
            &bounce,
            "render_deferred_bounce_reference shim",
        );
        let (parallel_image, parallel_stats) = render_parallel(
            PipelineConfig::baseline_unified(),
            &bvh,
            &scene.triangles,
            &camera,
            width,
            height,
            &passes,
            4,
        );
        assert_images_bit_identical(&parallel_image, &deferred, "render_parallel shim");
        assert!(parallel_stats.rays > 0);
        let (bounce_parallel_image, _) = render_bounce_parallel(
            PipelineConfig::baseline_unified(),
            &bvh,
            &scene.triangles,
            &camera,
            width,
            height,
            &passes,
            4,
        );
        assert_images_bit_identical(
            &bounce_parallel_image,
            &bounce,
            "render_bounce_parallel shim",
        );
        let flat_frame = FrameDesc::deferred(camera, width, height, plain);
        assert_images_bit_identical(
            &shim.render_flat(
                &bvh,
                &scene.triangles,
                &flat_frame,
                &ExecPolicy::wavefront(),
            ),
            &deferred,
            "render_flat shim",
        );
        let tried = shim
            .try_render_flat(
                &bvh,
                &scene.triangles,
                &flat_frame,
                &ExecPolicy::wavefront(),
            )
            .unwrap();
        assert_images_bit_identical(&tried, &deferred, "try_render_flat shim");
    }

    #[test]
    fn try_render_rejects_bad_scenes_and_frames_before_any_beat() {
        let triangles = quad_at_z(5.0, 2.0);
        let world = Scene::flat(triangles.clone());
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let policy = ExecPolicy::wavefront();
        let mut renderer = Renderer::new();

        let mut poisoned = triangles.clone();
        poisoned[0].v0.x = f32::NAN;
        let poisoned_scene = Scene::from_parts(world.bvh().expect("flat").clone(), poisoned);
        let err = renderer
            .try_render(&poisoned_scene, &FrameDesc::primary(camera, 8, 8), &policy)
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidScene { .. }), "{err}");

        let bad_frames = [
            FrameDesc::primary(
                Camera::looking_at(Vec3::new(f32::NAN, 0.0, 0.0), Vec3::new(0.0, 0.0, 5.0)),
                8,
                8,
            ),
            FrameDesc::primary(Camera::looking_at(Vec3::ZERO, Vec3::ZERO), 8, 8),
            FrameDesc::primary(
                Camera {
                    up: Vec3::ZERO,
                    ..camera
                },
                8,
                8,
            ),
            FrameDesc::primary(
                Camera {
                    fov_degrees: f32::INFINITY,
                    ..camera
                },
                8,
                8,
            ),
            FrameDesc::deferred(
                camera,
                8,
                8,
                RenderPasses::shadowed(Vec3::new(0.0, f32::NAN, 0.0)),
            ),
            FrameDesc::deferred(
                camera,
                8,
                8,
                RenderPasses::shadowed(Vec3::ZERO).with_ambient_occlusion(2, -1.0, 7),
            ),
        ];
        for frame in &bad_frames {
            let err = renderer.try_render(&world, frame, &policy).unwrap_err();
            assert!(matches!(err, QueryError::InvalidRequest { .. }), "{err}");
        }
        assert_eq!(
            renderer.stats(),
            TraversalStats::default(),
            "rejected frames must not issue a single beat"
        );
    }

    #[test]
    fn try_render_without_a_deadline_matches_render_in_every_mode() {
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        let camera = Camera::looking_at(scene.eye, scene.target);
        let passes = RenderPasses::shadowed(scene.light)
            .with_ambient_occlusion(2, 5.0, 9)
            .with_bounce(0.25);
        for frame in [
            FrameDesc::primary(camera, 16, 12),
            FrameDesc::deferred(camera, 16, 12, passes),
            FrameDesc::primary(camera, 0, 0),
        ] {
            for policy in std::iter::once(ExecPolicy::scalar()).chain(non_reference_policies()) {
                let expected = Renderer::new().render(&world, &frame, &policy);
                let mut renderer = Renderer::new();
                let image = renderer.try_render(&world, &frame, &policy).unwrap();
                assert_images_bit_identical(&image, &expected, "uncapped try_render");
            }
        }
    }

    #[test]
    fn a_starved_frame_surfaces_deadline_exceeded_in_every_mode() {
        let scene = scenes::lit_scene(1, 24.0);
        let world = Scene::flat(scene.triangles.clone());
        let camera = Camera::looking_at(scene.eye, scene.target);
        let frame = FrameDesc::deferred(camera, 16, 12, RenderPasses::shadowed(scene.light));
        for base in std::iter::once(ExecPolicy::scalar()).chain(non_reference_policies()) {
            let starved = base.with_max_total_beats(1);
            let err = Renderer::new()
                .try_render(&world, &frame, &starved)
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    QueryError::DeadlineExceeded {
                        max_total_beats: 1,
                        ..
                    }
                ),
                "{} gave {err}",
                base.mode
            );

            let generous = base.with_max_total_beats(u64::MAX);
            let expected = Renderer::new().render(&world, &frame, &base);
            let image = Renderer::new()
                .try_render(&world, &frame, &generous)
                .unwrap();
            assert_images_bit_identical(&image, &expected, "generous deadline");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_pixel_access_panics() {
        let triangles = quad_at_z(5.0, 2.0);
        let world = Scene::flat(triangles.clone());
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let image = Renderer::new().render(
            &world,
            &FrameDesc::primary(camera, 4, 4),
            &ExecPolicy::wavefront(),
        );
        let _ = image.pixel(4, 0);
    }
}
