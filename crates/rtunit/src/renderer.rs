//! A small ray-casting renderer driving the traversal engine (used by the examples).
//!
//! Rendering is a batched query: a frame generates one primary ray per pixel, traces the whole
//! stream through the wavefront scheduler in one pass, and shades the returned hits.  The scalar
//! per-pixel drive loop of the original reproduction is gone — the renderer is now simply a
//! camera plus one [`TraversalEngine::closest_hits_wavefront`] call per frame, which makes the
//! frame bit-identical to shading per-pixel scalar hits (pinned by the golden test below) at
//! several times the throughput.

use rayflex_core::PipelineConfig;
use rayflex_geometry::{Ray, Triangle, Vec3};

use crate::{Bvh4, TraversalEngine, TraversalHit, TraversalStats};

/// A pinhole camera generating one primary ray per pixel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Camera position.
    pub position: Vec3,
    /// Point the camera looks at.
    pub look_at: Vec3,
    /// Up direction.
    pub up: Vec3,
    /// Vertical field of view in degrees.
    pub fov_degrees: f32,
}

impl Camera {
    /// A camera at `position` looking at `look_at` with a 60° field of view.
    #[must_use]
    pub fn looking_at(position: Vec3, look_at: Vec3) -> Self {
        Camera {
            position,
            look_at,
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_degrees: 60.0,
        }
    }

    /// The primary ray through pixel `(x, y)` of a `width`×`height` image.
    #[must_use]
    pub fn primary_ray(&self, x: usize, y: usize, width: usize, height: usize) -> Ray {
        let forward = (self.look_at - self.position).normalized();
        let right = self.up.cross(forward).normalized();
        let true_up = forward.cross(right);
        let aspect = width as f32 / height as f32;
        let half_height = (self.fov_degrees.to_radians() * 0.5).tan();
        let half_width = half_height * aspect;
        let u = ((x as f32 + 0.5) / width as f32 * 2.0 - 1.0) * half_width;
        let v = (1.0 - (y as f32 + 0.5) / height as f32 * 2.0) * half_height;
        let dir = forward + right * u + true_up * v;
        Ray::new(self.position, dir)
    }

    /// All primary rays of a `width`×`height` frame in row-major pixel order — the ray stream a
    /// batched frame traces in one wavefront pass.
    #[must_use]
    pub fn primary_rays(&self, width: usize, height: usize) -> Vec<Ray> {
        let mut rays = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                rays.push(self.primary_ray(x, y, width, height));
            }
        }
        rays
    }
}

/// The renderer's shading model for one primary-ray hit: two-sided Lambertian with a small
/// ambient term, `0.0` for a miss.  Public so reference paths (benchmarks, golden tests) can
/// shade scalar hits with the exact arithmetic the batched frame uses.
#[must_use]
pub fn shade(triangles: &[Triangle], light_dir: Vec3, hit: Option<&TraversalHit>) -> f32 {
    match hit {
        Some(hit) => {
            let normal = triangles[hit.primitive].normal().normalized();
            let diffuse = normal.dot(light_dir).abs();
            (0.15 + 0.85 * diffuse).clamp(0.0, 1.0)
        }
        None => 0.0,
    }
}

/// The fixed directional light the renderer shades with.
#[must_use]
pub fn default_light_dir() -> Vec3 {
    Vec3::new(0.4, 0.8, -0.45).normalized()
}

/// A grayscale image produced by the renderer (one intensity in `[0, 1]` per pixel, row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

impl Image {
    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The intensity of pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    pub fn pixel(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Fraction of pixels whose primary ray hit geometry.
    #[must_use]
    pub fn coverage(&self) -> f32 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().filter(|&&p| p > 0.0).count() as f32 / self.pixels.len() as f32
    }

    /// Renders the image as ASCII art (one character per pixel), brightest to darkest.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let value = self.pixel(x, y).clamp(0.0, 1.0);
                let index = (value * (RAMP.len() - 1) as f32).round() as usize;
                out.push(RAMP[index] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Encodes the image as a binary PGM (portable graymap) file.
    #[must_use]
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(
            self.pixels
                .iter()
                .map(|p| (p.clamp(0.0, 1.0) * 255.0).round() as u8),
        );
        out
    }
}

/// A primary-ray renderer with simple Lambertian shading, entirely driven by datapath beats.
#[derive(Debug)]
pub struct Renderer {
    engine: TraversalEngine,
}

impl Renderer {
    /// Creates a renderer over a baseline-unified datapath.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(PipelineConfig::baseline_unified())
    }

    /// Creates a renderer over a datapath of the given configuration.
    #[must_use]
    pub fn with_config(config: PipelineConfig) -> Self {
        Renderer {
            engine: TraversalEngine::with_config(config),
        }
    }

    /// Renders one `width`×`height` frame of the scene from the camera and returns the image.
    ///
    /// The frame's primary rays are traced as **one batched stream** through the wavefront
    /// scheduler; hits (and therefore pixels and [`TraversalStats`]) are bit-identical to
    /// tracing each pixel's ray through the scalar path and shading with [`shade`].
    pub fn render(
        &mut self,
        bvh: &Bvh4,
        triangles: &[Triangle],
        camera: &Camera,
        width: usize,
        height: usize,
    ) -> Image {
        let light_dir = default_light_dir();
        let rays = camera.primary_rays(width, height);
        let hits = self.engine.closest_hits_wavefront(bvh, triangles, &rays);
        let pixels = hits
            .iter()
            .map(|hit| shade(triangles, light_dir, hit.as_ref()))
            .collect();
        Image {
            width,
            height,
            pixels,
        }
    }

    /// The traversal statistics accumulated over everything rendered so far.
    #[must_use]
    pub fn stats(&self) -> TraversalStats {
        self.engine.stats()
    }
}

impl Default for Renderer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_at_z(z: f32, half: f32) -> Vec<Triangle> {
        vec![
            Triangle::new(
                Vec3::new(-half, -half, z),
                Vec3::new(half, -half, z),
                Vec3::new(half, half, z),
            ),
            Triangle::new(
                Vec3::new(-half, -half, z),
                Vec3::new(half, half, z),
                Vec3::new(-half, half, z),
            ),
        ]
    }

    #[test]
    fn camera_rays_cover_the_view_frustum() {
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let center = camera.primary_ray(16, 16, 32, 32);
        assert!(center.dir.z > 0.9 * center.dir.length());
        let corner = camera.primary_ray(0, 0, 32, 32);
        assert!(corner.dir.x < 0.0 && corner.dir.y > 0.0);
    }

    #[test]
    fn rendering_a_facing_quad_covers_the_image_centre() {
        let triangles = quad_at_z(5.0, 2.0);
        let bvh = Bvh4::build(&triangles);
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let mut renderer = Renderer::new();
        let image = renderer.render(&bvh, &triangles, &camera, 24, 24);
        assert_eq!(image.width(), 24);
        assert_eq!(image.height(), 24);
        assert!(image.pixel(12, 12) > 0.0, "centre pixel must be covered");
        assert!(image.coverage() > 0.3, "coverage {}", image.coverage());
        assert!(image.coverage() < 1.0, "corners should miss");
        assert!(renderer.stats().rays >= 24 * 24);
    }

    #[test]
    fn batched_frame_is_bit_identical_to_the_scalar_frame_on_the_icosphere() {
        // The golden test of the batched renderer: every pixel of the wavefront frame equals the
        // frame obtained by tracing each primary ray through the scalar path and shading the
        // scalar hit, and the traversal statistics match exactly.
        let triangles = rayflex_workloads::scenes::icosphere(2, 5.0, Vec3::new(0.0, 0.0, 20.0));
        let bvh = Bvh4::build(&triangles);
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 20.0));
        let (width, height) = (32, 24);

        let mut renderer = Renderer::new();
        let image = renderer.render(&bvh, &triangles, &camera, width, height);

        let mut scalar = TraversalEngine::baseline();
        let light_dir = default_light_dir();
        for y in 0..height {
            for x in 0..width {
                let ray = camera.primary_ray(x, y, width, height);
                let hit = scalar.closest_hit(&bvh, &triangles, &ray);
                let expected = shade(&triangles, light_dir, hit.as_ref());
                assert_eq!(
                    image.pixel(x, y).to_bits(),
                    expected.to_bits(),
                    "pixel ({x}, {y})"
                );
            }
        }
        assert_eq!(renderer.stats(), scalar.stats(), "identical TraversalStats");
        assert!(image.coverage() > 0.1, "the icosphere is visible");
    }

    #[test]
    fn ascii_and_pgm_outputs_are_well_formed() {
        let triangles = quad_at_z(5.0, 2.0);
        let bvh = Bvh4::build(&triangles);
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let image = Renderer::new().render(&bvh, &triangles, &camera, 16, 8);
        let ascii = image.to_ascii();
        assert_eq!(ascii.lines().count(), 8);
        assert!(ascii.lines().all(|l| l.chars().count() == 16));
        let pgm = image.to_pgm();
        assert!(pgm.starts_with(b"P5\n16 8\n255\n"));
        assert_eq!(pgm.len(), b"P5\n16 8\n255\n".len() + 16 * 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_pixel_access_panics() {
        let triangles = quad_at_z(5.0, 2.0);
        let bvh = Bvh4::build(&triangles);
        let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 5.0));
        let image = Renderer::new().render(&bvh, &triangles, &camera, 4, 4);
        let _ = image.pixel(4, 0);
    }
}
