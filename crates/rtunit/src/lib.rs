//! # rayflex-rtunit
//!
//! The RT-unit substrate above the RayFlex datapath.
//!
//! The RayFlex paper models only the intersection-test datapath of a GPU ray-tracing unit; the
//! surrounding machinery — the acceleration structure, its traversal, the scheduling of memory
//! fetches and intersection transactions — is assumed to exist (Vulkan-Sim models it in the
//! paper's ecosystem).  To run realistic workloads against the Rust datapath, this crate rebuilds
//! that machinery:
//!
//! * [`Bvh4`] — a four-wide bounding volume hierarchy builder matching the datapath's
//!   four-boxes-per-instruction interface,
//! * [`WavefrontScheduler`] / [`BatchQuery`] — the generic batched query engine: one wavefront
//!   scheduler (active-set management, pooled per-item state, bulk beat dispatch) that every
//!   query kind — closest-hit, any-hit/shadow, rendering, distance scoring — instantiates with
//!   its own per-item state machine,
//! * [`TraversalEngine`] — closest-hit and any-hit/shadow traversal with two frontends: a scalar
//!   per-ray path driving the register-accurate datapath emulation, and wavefront ray-stream
//!   paths running through the shared scheduler (bit-identical hits and statistics, several
//!   times the throughput),
//! * [`trace_rays_parallel`] / [`trace_shadow_rays_parallel`] — the wavefront frontends sharded
//!   across OS threads with auto-tuned shard sizing (short or single-threaded streams run the
//!   batched path inline), per-shard [`TraversalStats`] merged by summation,
//! * [`RtUnit`] — a simplified single-issue RT-unit timing model: pooled per-ray traversal state
//!   machines scheduled through a FIFO transaction queue, a fixed-latency node-fetch memory model
//!   and the datapath's eleven-cycle latency and one-beat-per-cycle issue limit, plus
//!   [`RtUnit::trace_rays_parallel`] for modelling several RT units side by side,
//! * [`KnnEngine`] — k-nearest-neighbour search over arbitrary-dimensional vectors using the
//!   extended datapath's Euclidean and cosine operations (case study §V-A), with all candidate
//!   scoring batched through the shared scheduler,
//! * [`Renderer`] — a multi-pass deferred renderer: a batched closest-hit primary pass, surfel
//!   (G-buffer) extraction, a batched any-hit shadow pass and an optional batched any-hit
//!   ambient-occlusion pass, composed into a frame that is pixel-bit-identical to its scalar
//!   multi-pass reference; [`render_parallel`] shards every pass across worker threads.
//!
//! # Example
//!
//! ```
//! use rayflex_geometry::{Triangle, Ray, Vec3};
//! use rayflex_rtunit::{Bvh4, TraversalEngine};
//!
//! let scene = vec![Triangle::new(
//!     Vec3::new(-1.0, -1.0, 3.0),
//!     Vec3::new(1.0, -1.0, 3.0),
//!     Vec3::new(0.0, 1.0, 3.0),
//! )];
//! let bvh = Bvh4::build(&scene);
//! let mut engine = TraversalEngine::baseline();
//! let hit = engine.closest_hit(&bvh, &scene, &Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0)));
//! assert!(hit.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bvh;
mod hierarchical;
mod knn;
mod parallel;
mod query;
mod renderer;
mod rt_unit;
mod traversal;

pub use bvh::{Bvh4, Bvh4Node, Primitive};
pub use hierarchical::{CollectStream, CollectWork, HierarchicalSearch, HierarchicalStats};
pub use knn::{select_k_nearest, DistanceStream, KnnEngine, KnnMetric, KnnStats, Neighbor};
pub use parallel::{
    default_parallelism, trace_fused_parallel, trace_packet_parallel, trace_rays_parallel,
    trace_shadow_rays_parallel, MIN_RAYS_PER_SHARD,
};
pub use query::{
    BatchQuery, FusedScheduler, FusedStream, QueryKind, StreamRunner, WavefrontScheduler,
};
pub use renderer::{
    default_light_dir, extract_surfels, render_bounce_parallel, render_parallel, shade,
    shade_deferred, Camera, CameraBasis, Image, RenderPasses, Renderer,
};
pub use rt_unit::{RtUnit, RtUnitConfig, RtUnitStats};
pub use traversal::{TraversalEngine, TraversalHit, TraversalStats, TraversalStream};
