//! # rayflex-rtunit
//!
//! The RT-unit substrate above the RayFlex datapath.
//!
//! The RayFlex paper models only the intersection-test datapath of a GPU ray-tracing unit; the
//! surrounding machinery — the acceleration structure, its traversal, the scheduling of memory
//! fetches and intersection transactions — is assumed to exist (Vulkan-Sim models it in the
//! paper's ecosystem).  To run realistic workloads against the Rust datapath, this crate rebuilds
//! that machinery:
//!
//! * [`Bvh4`] — a four-wide bounding volume hierarchy builder matching the datapath's
//!   four-boxes-per-instruction interface,
//! * [`TraversalEngine`] — a stack-based closest-hit traversal that issues ray–box and
//!   ray–triangle beats to a functional datapath and gathers statistics,
//! * [`RtUnit`] — a simplified single-issue RT-unit timing model: per-ray traversal state
//!   machines, a fixed-latency node-fetch memory model and the datapath's eleven-cycle latency
//!   and one-beat-per-cycle issue limit,
//! * [`KnnEngine`] — k-nearest-neighbour search over arbitrary-dimensional vectors using the
//!   extended datapath's Euclidean and cosine operations (case study §V-A),
//! * [`Renderer`] — a small ray-casting renderer used by the examples.
//!
//! # Example
//!
//! ```
//! use rayflex_geometry::{Triangle, Ray, Vec3};
//! use rayflex_rtunit::{Bvh4, TraversalEngine};
//!
//! let scene = vec![Triangle::new(
//!     Vec3::new(-1.0, -1.0, 3.0),
//!     Vec3::new(1.0, -1.0, 3.0),
//!     Vec3::new(0.0, 1.0, 3.0),
//! )];
//! let bvh = Bvh4::build(&scene);
//! let mut engine = TraversalEngine::baseline();
//! let hit = engine.closest_hit(&bvh, &scene, &Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0)));
//! assert!(hit.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bvh;
mod hierarchical;
mod knn;
mod renderer;
mod rt_unit;
mod traversal;

pub use bvh::{Bvh4, Bvh4Node, Primitive};
pub use hierarchical::{HierarchicalSearch, HierarchicalStats};
pub use knn::{KnnEngine, KnnMetric, Neighbor};
pub use renderer::{Camera, Image, Renderer};
pub use rt_unit::{RtUnit, RtUnitConfig, RtUnitStats};
pub use traversal::{TraversalEngine, TraversalHit, TraversalStats};
