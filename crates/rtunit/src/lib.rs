//! # rayflex-rtunit
//!
//! The RT-unit substrate above the RayFlex datapath.
//!
//! The RayFlex paper models only the intersection-test datapath of a GPU ray-tracing unit; the
//! surrounding machinery — the acceleration structure, its traversal, the scheduling of memory
//! fetches and intersection transactions — is assumed to exist (Vulkan-Sim models it in the
//! paper's ecosystem).  To run realistic workloads against the Rust datapath, this crate rebuilds
//! that machinery:
//!
//! * [`Bvh4`] — a four-wide bounding volume hierarchy builder matching the datapath's
//!   four-boxes-per-instruction interface,
//! * [`Scene`] — the first-class scene boundary every policy entry point traces against: flat
//!   ([`Scene::flat`]) or two-level TLAS/BLAS instanced ([`Scene::instanced`]), with
//!   [`Scene::flatten`] baking the instanced form into a bit-identical flat twin and
//!   [`Scene::refit`] following animated transforms without rebuilding any BLAS,
//! * [`ExecPolicy`] / [`ExecMode`] — the execution-policy layer: **one policy-taking entry
//!   point per query kind** ([`TraversalEngine::trace`], [`Renderer::render`],
//!   [`KnnEngine::k_nearest`], [`HierarchicalSearch::radius_queries`]), each dispatchable as
//!   the scalar register-accurate reference, a batched wavefront, a thread-parallel sharding or
//!   a fused multi-kind run — bit-identical outputs and statistics across all modes,
//! * [`WavefrontScheduler`] / [`BatchQuery`] — the generic batched query engine: one wavefront
//!   scheduler (active-set management, pooled per-item state, bulk beat dispatch) that every
//!   query kind — closest-hit, any-hit/shadow, rendering, distance scoring — instantiates with
//!   its own per-item state machine,
//! * [`FusedScheduler`] / [`FusedStream`] — the fused multi-stream layer merging heterogeneous
//!   query kinds into shared bulk passes, with a per-stream **beat budget** admission policy
//!   ([`ExecPolicy::beat_budget_per_stream`]) modelling QoS between concurrent workloads,
//! * [`TraversalEngine`] — closest-hit and any-hit/shadow traversal behind one policy-driven
//!   [`TraversalEngine::trace`] entry point ([`TraceRequest`] carries one or both ray streams),
//! * [`RtUnit`] — a simplified single-issue RT-unit timing model: pooled per-ray traversal state
//!   machines scheduled through a FIFO transaction queue, a fixed-latency node-fetch memory model
//!   and the datapath's eleven-cycle latency and one-beat-per-cycle issue limit, plus
//!   [`RtUnit::trace_rays_multi_unit`] for modelling several RT units side by side,
//! * [`KnnEngine`] — k-nearest-neighbour search over arbitrary-dimensional vectors using the
//!   extended datapath's Euclidean and cosine operations (case study §V-A), with all candidate
//!   scoring batched through the shared scheduler,
//! * [`Renderer`] — a multi-pass deferred renderer: a closest-hit primary pass, surfel
//!   (G-buffer) extraction, an any-hit shadow pass, an optional any-hit ambient-occlusion pass
//!   and an optional fused one-bounce reflection pass, described by a [`FrameDesc`] and traced
//!   under any [`ExecPolicy`] with pixel-bit-identical frames.
//!
//! # Example
//!
//! ```
//! use rayflex_geometry::{Triangle, Ray, Vec3};
//! use rayflex_rtunit::{ExecPolicy, Scene, TraceRequest, TraversalEngine};
//!
//! let scene = Scene::flat(vec![Triangle::new(
//!     Vec3::new(-1.0, -1.0, 3.0),
//!     Vec3::new(1.0, -1.0, 3.0),
//!     Vec3::new(0.0, 1.0, 3.0),
//! )]);
//! let rays = [Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0))];
//! let mut engine = TraversalEngine::baseline();
//! let hits = engine
//!     .trace(&TraceRequest::closest_hit(&scene, &rays), &ExecPolicy::wavefront())
//!     .into_closest();
//! assert!(hits[0].is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod bvh;
mod error;
pub mod fault;
mod hierarchical;
mod knn;
mod parallel;
mod policy;
mod query;
mod renderer;
mod rt_unit;
mod scene;
mod traversal;

pub use bvh::{Bvh4, Bvh4Node, Primitive};
pub use error::{PartialResult, QueryError, QueryOutcome, SceneValidator};
pub use hierarchical::{CollectStream, CollectWork, HierarchicalSearch, HierarchicalStats};
pub use knn::{select_k_nearest, DistanceStream, KnnEngine, KnnMetric, KnnStats, Neighbor};
pub use parallel::{
    default_parallelism, PoolStats, CHUNKS_PER_WORKER, MIN_ANY_RAYS_PER_SHARD, MIN_RAYS_PER_SHARD,
};
#[allow(deprecated)]
pub use parallel::{
    trace_fused_parallel, trace_packet_parallel, trace_rays_parallel, trace_shadow_rays_parallel,
};
pub use policy::{AdmissionOrder, CoherenceMode, ExecMode, ExecPolicy, ShardHint};
pub use query::{
    BatchQuery, CappedFusedRun, CappedRun, FusedScheduler, FusedStream, QueryKind, StreamRunner,
    WavefrontScheduler,
};
pub use renderer::{
    default_light_dir, extract_surfels, shade, shade_deferred, Camera, CameraBasis, FrameDesc,
    Image, RenderPasses, Renderer,
};
#[allow(deprecated)]
pub use renderer::{render_bounce_parallel, render_parallel};
pub use rt_unit::{RtUnit, RtUnitConfig, RtUnitStats};
pub use scene::{Blas, Instance, Scene};
pub use traversal::{
    TraceOutput, TraceRequest, TraversalEngine, TraversalHit, TraversalStats, TraversalStream,
};
