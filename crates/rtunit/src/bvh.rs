//! A four-wide bounding volume hierarchy matching the datapath's four-boxes-per-beat interface.

use rayflex_geometry::{Aabb, Sphere, Triangle, Vec3};

/// Anything that can be bounded by an axis-aligned box and therefore placed in a BVH.
pub trait Primitive {
    /// The primitive's axis-aligned bounds.
    fn bounds(&self) -> Aabb;
}

impl Primitive for Triangle {
    fn bounds(&self) -> Aabb {
        Triangle::bounds(self)
    }
}

impl Primitive for Sphere {
    fn bounds(&self) -> Aabb {
        Sphere::bounds(self)
    }
}

impl Primitive for Aabb {
    fn bounds(&self) -> Aabb {
        *self
    }
}

/// One node of the four-wide BVH.
#[derive(Debug, Clone, PartialEq)]
pub enum Bvh4Node {
    /// An internal node with up to four children; absent slots are `None`.  The child bounds are
    /// stored here so a single ray–box beat can test all four slots.
    Internal {
        /// Indices of the child nodes, aligned with `child_bounds`.
        children: [Option<usize>; 4],
        /// Bounds of each child slot.  Absent slots hold the point box at `f32::MAX`, which no
        /// finite-extent ray can hit, so the table is beat-ready as stored — traversal loops
        /// hand it straight to [`rayflex_core::RayFlexRequest`] without per-visit padding.
        child_bounds: [Aabb; 4],
    },
    /// A leaf node referencing a contiguous run of primitive indices.
    Leaf {
        /// Start offset into [`Bvh4::primitive_indices`].
        first: usize,
        /// Number of primitives in the leaf.
        count: usize,
    },
}

/// A four-wide bounding volume hierarchy (paper Fig. 1, with the RDNA-style four-children node
/// format of §III-A).
#[derive(Debug, Clone, PartialEq)]
pub struct Bvh4 {
    nodes: Vec<Bvh4Node>,
    primitive_indices: Vec<usize>,
    bounds: Aabb,
    max_leaf_size: usize,
}

impl Bvh4 {
    /// Default maximum number of primitives per leaf.
    pub const DEFAULT_LEAF_SIZE: usize = 4;

    /// Builds a BVH over a slice of primitives with the default leaf size.
    #[must_use]
    pub fn build<P: Primitive>(primitives: &[P]) -> Self {
        Self::build_with_leaf_size(primitives, Self::DEFAULT_LEAF_SIZE)
    }

    /// Builds a BVH with an explicit maximum leaf size (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `max_leaf_size` is zero.
    #[must_use]
    pub fn build_with_leaf_size<P: Primitive>(primitives: &[P], max_leaf_size: usize) -> Self {
        assert!(
            max_leaf_size >= 1,
            "leaf size must be at least one primitive"
        );
        let bounds: Vec<Aabb> = primitives.iter().map(Primitive::bounds).collect();
        let centroids: Vec<_> = bounds.iter().map(Aabb::centroid).collect();
        let scene_bounds = bounds.iter().fold(Aabb::empty(), |acc, b| acc.union(b));
        let mut indices: Vec<usize> = (0..primitives.len()).collect();
        let mut builder = Builder {
            bounds: &bounds,
            centroids: &centroids,
            nodes: Vec::new(),
            max_leaf_size,
        };
        if indices.is_empty() {
            builder.nodes.push(Bvh4Node::Leaf { first: 0, count: 0 });
        } else {
            builder.build_node(&mut indices, 0);
        }
        Bvh4 {
            nodes: builder.nodes,
            primitive_indices: indices,
            bounds: scene_bounds,
            max_leaf_size,
        }
    }

    /// The root node index (always 0).
    #[must_use]
    pub fn root(&self) -> usize {
        0
    }

    /// The node table.
    #[must_use]
    pub fn nodes(&self) -> &[Bvh4Node] {
        &self.nodes
    }

    /// One node by index.
    #[must_use]
    pub fn node(&self, index: usize) -> &Bvh4Node {
        &self.nodes[index]
    }

    /// The (permuted) primitive index array leaves point into.
    #[must_use]
    pub fn primitive_indices(&self) -> &[usize] {
        &self.primitive_indices
    }

    /// Mutable access to the node table — for the fault-injection harness
    /// ([`crate::fault`]) only, which deliberately corrupts topology to exercise the
    /// [`SceneValidator`](crate::SceneValidator).  Not public: a `Bvh4` built by
    /// [`Bvh4::build`] is otherwise always well-formed.
    pub(crate) fn nodes_mut(&mut self) -> &mut Vec<Bvh4Node> {
        &mut self.nodes
    }

    /// The primitive indices of a leaf node.
    ///
    /// # Panics
    ///
    /// Panics if `index` refers to an internal node.
    #[must_use]
    pub fn leaf_primitives(&self, index: usize) -> &[usize] {
        match &self.nodes[index] {
            Bvh4Node::Leaf { first, count } => &self.primitive_indices[*first..*first + *count],
            Bvh4Node::Internal { .. } => panic!("node {index} is not a leaf"),
        }
    }

    /// The bounds of the whole scene.
    #[must_use]
    pub fn scene_bounds(&self) -> Aabb {
        self.bounds
    }

    /// Number of nodes in the hierarchy.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The maximum leaf size the tree was built with.
    #[must_use]
    pub fn max_leaf_size(&self) -> usize {
        self.max_leaf_size
    }

    /// Maximum depth of the tree (1 for a single leaf).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth_of(self.root())
    }

    /// Refits every node's child bounds to new per-primitive bounds **without changing the
    /// topology**: leaves keep their primitive runs, internal nodes keep their children, and
    /// only the stored `child_bounds` (and the scene bounds) are recomputed bottom-up.
    ///
    /// This is the TLAS refit primitive of [`crate::Scene::refit`]: after instance transforms
    /// move, the tree's boxes follow the new bounds exactly (each slot becomes the exact union
    /// of its subtree's primitive bounds), so containment — and therefore hit correctness — is
    /// preserved even though the split structure may no longer be the one a fresh build would
    /// choose.  Absent child slots keep their never-hit `f32::MAX` point boxes.
    ///
    /// # Panics
    ///
    /// Panics if `prim_bounds` is shorter than the primitive index space the tree was built
    /// over.
    pub fn refit_with(&mut self, prim_bounds: &[Aabb]) {
        self.bounds = self.refit_node(self.root(), prim_bounds);
    }

    fn refit_node(&mut self, index: usize, prim_bounds: &[Aabb]) -> Aabb {
        match self.nodes[index].clone() {
            Bvh4Node::Leaf { first, count } => (first..first + count)
                .map(|i| prim_bounds[self.primitive_indices[i]])
                .fold(Aabb::empty(), |acc, b| acc.union(&b)),
            Bvh4Node::Internal {
                children,
                mut child_bounds,
            } => {
                let mut total = Aabb::empty();
                for slot in 0..4 {
                    if let Some(child) = children[slot] {
                        let refit = self.refit_node(child, prim_bounds);
                        child_bounds[slot] = refit;
                        total = total.union(&refit);
                    }
                }
                self.nodes[index] = Bvh4Node::Internal {
                    children,
                    child_bounds,
                };
                total
            }
        }
    }

    fn depth_of(&self, index: usize) -> usize {
        match &self.nodes[index] {
            Bvh4Node::Leaf { .. } => 1,
            Bvh4Node::Internal { children, .. } => {
                1 + children
                    .iter()
                    .flatten()
                    .map(|&c| self.depth_of(c))
                    .max()
                    .unwrap_or(0)
            }
        }
    }
}

struct Builder<'a> {
    bounds: &'a [Aabb],
    centroids: &'a [rayflex_geometry::Vec3],
    nodes: Vec<Bvh4Node>,
    max_leaf_size: usize,
}

impl Builder<'_> {
    /// Builds the subtree over `indices[range]` (passed as a sub-slice starting at absolute
    /// offset `first`), returning the created node's index.
    fn build_node(&mut self, indices: &mut [usize], first: usize) -> usize {
        if indices.len() <= self.max_leaf_size {
            let node = Bvh4Node::Leaf {
                first,
                count: indices.len(),
            };
            self.nodes.push(node);
            return self.nodes.len() - 1;
        }
        // Split into four partitions: a median split along the longest centroid axis, applied
        // twice (binary split, then each half split again).
        let quarters = self.partition_into_four(indices);
        // Reserve our slot before recursing so the root lands at index 0.
        let node_index = self.nodes.len();
        self.nodes.push(Bvh4Node::Leaf { first: 0, count: 0 }); // placeholder
        let mut children = [None; 4];
        // Absent slots keep the never-hit point box at +MAX (see the field docs): padding once
        // at build time keeps the per-beat path free of slot fixups.
        let mut child_bounds = [Aabb::new(Vec3::splat(f32::MAX), Vec3::splat(f32::MAX)); 4];
        let mut offset = 0usize;
        for (slot, quarter_len) in quarters.into_iter().enumerate() {
            if quarter_len == 0 {
                continue;
            }
            let (chunk, _) = indices[offset..].split_at_mut(quarter_len);
            let bounds = chunk
                .iter()
                .fold(Aabb::empty(), |acc, &i| acc.union(&self.bounds[i]));
            let child = self.build_node(chunk, first + offset);
            children[slot] = Some(child);
            child_bounds[slot] = bounds;
            offset += quarter_len;
        }
        self.nodes[node_index] = Bvh4Node::Internal {
            children,
            child_bounds,
        };
        node_index
    }

    /// Splits the index slice into four contiguous partitions by recursive median splits along
    /// the longest centroid axis; returns the partition lengths (which sum to the slice length).
    fn partition_into_four(&self, indices: &mut [usize]) -> [usize; 4] {
        let mid = self.median_split(indices);
        let (left, right) = indices.split_at_mut(mid);
        let left_mid = self.median_split(left);
        let right_mid = self.median_split(right);
        [
            left_mid,
            left.len() - left_mid,
            right_mid,
            right.len() - right_mid,
        ]
    }

    /// Sorts the slice along the longest centroid axis and returns the median split point.
    fn median_split(&self, indices: &mut [usize]) -> usize {
        if indices.len() < 2 {
            return indices.len();
        }
        let centroid_bounds = indices
            .iter()
            .fold(Aabb::empty(), |acc, &i| acc.union_point(self.centroids[i]));
        let axis = centroid_bounds.longest_axis();
        indices.sort_by(|&a, &b| {
            self.centroids[a]
                .axis(axis)
                .partial_cmp(&self.centroids[b].axis(axis))
                .unwrap_or(core::cmp::Ordering::Equal)
        });
        indices.len() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::Vec3;

    fn grid_triangles(n: usize) -> Vec<Triangle> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f32 * 3.0;
                let y = ((i / 10) % 10) as f32 * 3.0;
                let z = (i / 100) as f32 * 3.0;
                Triangle::new(
                    Vec3::new(x, y, z),
                    Vec3::new(x + 1.0, y, z),
                    Vec3::new(x, y + 1.0, z),
                )
            })
            .collect()
    }

    #[test]
    fn builds_a_single_leaf_for_tiny_scenes() {
        let tris = grid_triangles(3);
        let bvh = Bvh4::build(&tris);
        assert_eq!(bvh.node_count(), 1);
        assert_eq!(bvh.depth(), 1);
        assert_eq!(bvh.leaf_primitives(bvh.root()).len(), 3);
    }

    #[test]
    fn every_primitive_appears_exactly_once() {
        let tris = grid_triangles(250);
        let bvh = Bvh4::build(&tris);
        let mut seen = vec![false; tris.len()];
        for &i in bvh.primitive_indices() {
            assert!(!seen[i], "primitive {i} referenced twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(bvh.node_count() > 1);
        assert!(bvh.depth() >= 2);
    }

    #[test]
    fn child_bounds_contain_their_subtrees() {
        let tris = grid_triangles(120);
        let bvh = Bvh4::build(&tris);
        fn check(bvh: &Bvh4, tris: &[Triangle], node: usize, bounds: &Aabb) {
            match bvh.node(node) {
                Bvh4Node::Leaf { .. } => {
                    for &p in bvh.leaf_primitives(node) {
                        let tb = tris[p].bounds();
                        assert!(bounds.contains(tb.min) && bounds.contains(tb.max));
                    }
                }
                Bvh4Node::Internal {
                    children,
                    child_bounds,
                } => {
                    for (child, cb) in children.iter().zip(child_bounds) {
                        if let Some(c) = child {
                            check(bvh, tris, *c, cb);
                        }
                    }
                }
            }
        }
        check(&bvh, &tris, bvh.root(), &bvh.scene_bounds());
    }

    #[test]
    fn leaf_size_is_respected() {
        let tris = grid_triangles(300);
        for leaf_size in [1usize, 2, 4, 8] {
            let bvh = Bvh4::build_with_leaf_size(&tris, leaf_size);
            for (i, node) in bvh.nodes().iter().enumerate() {
                if let Bvh4Node::Leaf { count, .. } = node {
                    assert!(*count <= leaf_size, "node {i} has {count} > {leaf_size}");
                }
            }
            assert_eq!(bvh.max_leaf_size(), leaf_size);
        }
    }

    #[test]
    fn empty_scenes_build_an_empty_leaf() {
        let bvh = Bvh4::build::<Triangle>(&[]);
        assert_eq!(bvh.node_count(), 1);
        assert_eq!(bvh.leaf_primitives(0).len(), 0);
        assert!(bvh.scene_bounds().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one primitive")]
    fn zero_leaf_size_is_rejected() {
        let _ = Bvh4::build_with_leaf_size(&grid_triangles(5), 0);
    }

    #[test]
    fn spheres_and_boxes_are_primitives_too() {
        let spheres = vec![
            Sphere::new(Vec3::ZERO, 1.0),
            Sphere::new(Vec3::new(5.0, 0.0, 0.0), 0.5),
            Sphere::new(Vec3::new(0.0, 5.0, 0.0), 0.25),
            Sphere::new(Vec3::new(0.0, 0.0, 5.0), 2.0),
            Sphere::new(Vec3::new(5.0, 5.0, 5.0), 1.0),
        ];
        let bvh = Bvh4::build(&spheres);
        assert!(bvh.scene_bounds().contains(Vec3::new(5.0, 5.0, 5.0)));
        let boxes = vec![Aabb::new(Vec3::ZERO, Vec3::ONE); 6];
        let bvh = Bvh4::build(&boxes);
        assert_eq!(bvh.primitive_indices().len(), 6);
    }
}
