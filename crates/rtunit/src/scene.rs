//! The first-class scene boundary: what every policy entry point traces against.
//!
//! A [`Scene`] owns its geometry and acceleration structure in one of two representations:
//!
//! * **Flat** ([`Scene::flat`] / [`Scene::from_parts`]) — one triangle list indexed by one
//!   [`Bvh4`], exactly the `(bvh, triangles)` pair the engines historically took as loose
//!   arguments;
//! * **Instanced** ([`Scene::instanced`]) — a two-level TLAS/BLAS structure: a list of
//!   bottom-level acceleration structures ([`Blas`], each a flat mesh with its own BVH) plus a
//!   list of [`Instance`]s (an affine transform and a BLAS index each), with a top-level
//!   [`Bvh4`] built over the instances' world-space bounds.  This is how real RT workloads
//!   reach large scenes without large memory: `n` instances of an `m`-triangle mesh cost
//!   `O(m + n)` storage instead of the `O(n·m)` a flattened copy pays.
//!
//! # The bit-identity contract
//!
//! Tracing an instanced scene yields **bit-identical hits** to tracing [`Scene::flatten`] — the
//! same geometry baked into one flat BVH — for every query kind and every
//! [`ExecPolicy`](crate::ExecPolicy).  Three design choices make this exact rather than
//! approximate:
//!
//! * rays stay in **world space** throughout; instanced traversal transforms each candidate
//!   triangle through its instance transform at intersection time with
//!   [`Triangle::transformed`] — the very arithmetic [`Scene::flatten`] uses at bake time, so
//!   the datapath sees the same nine vertex floats either way and returns the same hit bits;
//! * per-visit transformed node boxes ([`Aabb::transformed`](rayflex_geometry::Aabb)) are
//!   rigorously conservative, so the two-level traversal can visit *extra* nodes but can never
//!   miss a primitive the flat traversal finds;
//! * hit primitive ids are globalised through per-instance bases laid out in the exact order
//!   [`Scene::flatten`] bakes triangles (instance-major, BLAS order within an instance).
//!
//! Traversal **statistics** are structural, not geometric: a two-level hierarchy visits
//! different node counts than a flat one, so [`TraversalStats`](crate::TraversalStats) are
//! *not* pinned between an instanced scene and its flattened twin (the `rays` count is; the
//! TLAS-phase share is reported separately via
//! [`TraversalStats::tlas_box_ops`](crate::TraversalStats::tlas_box_ops) and the datapath's
//! [`BeatMix::tlas_box_beats`](rayflex_core::BeatMix::tlas_box_beats)).  Within one scene,
//! statistics remain bit-identical across every [`ExecMode`](crate::ExecMode) — the
//! cross-policy invariant is representation-independent.
//!
//! # Refit
//!
//! [`Scene::refit`] re-derives every instance's world bounds from its current transform and
//! refits the TLAS bottom-up **without touching any BLAS** and without re-sorting the TLAS
//! topology — the animated-geometry amortisation of two-level hierarchies.  A refit scene
//! re-traces bit-identical to one whose TLAS was rebuilt from scratch: hits depend only on the
//! triangles (identical) and on conservative containment (both the refit and the fresh tree
//! are exact unions of the new instance bounds).

use rayflex_core::TLAS_PHASE_TAG;
use rayflex_geometry::{Aabb, Affine, Triangle, Vec3};

use crate::bvh::{Bvh4, Bvh4Node};

/// A bottom-level acceleration structure: one mesh (triangle list in **object space**) with its
/// own [`Bvh4`], shared by any number of [`Instance`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Blas {
    bvh: Bvh4,
    triangles: Vec<Triangle>,
}

impl Blas {
    /// Builds a BLAS over a mesh (builds the mesh's BVH).
    #[must_use]
    pub fn new(triangles: Vec<Triangle>) -> Self {
        let bvh = Bvh4::build(&triangles);
        Blas { bvh, triangles }
    }

    /// Wraps a prebuilt BVH and its triangle list as a BLAS.
    #[must_use]
    pub fn from_parts(bvh: Bvh4, triangles: Vec<Triangle>) -> Self {
        Blas { bvh, triangles }
    }

    /// The mesh's BVH (object space).
    #[must_use]
    pub fn bvh(&self) -> &Bvh4 {
        &self.bvh
    }

    /// The mesh's triangles (object space).
    #[must_use]
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// The exact world-space bounds of this mesh under `transform`: the union of every
    /// triangle's transformed bounds, using the same per-vertex arithmetic
    /// [`Scene::flatten`] bakes with — so the box contains the baked triangles bit-exactly.
    fn world_bounds(&self, transform: &Affine) -> Aabb {
        self.triangles.iter().fold(Aabb::empty(), |acc, tri| {
            acc.union(&tri.transformed(transform).bounds())
        })
    }
}

/// One placement of a BLAS in the world: an affine transform plus the index of the BLAS it
/// instantiates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instance {
    /// Object-to-world transform of this instance.
    pub transform: Affine,
    /// Index into the scene's BLAS list.
    pub blas: usize,
}

impl Instance {
    /// An instance of `blas` placed by `transform`.
    #[must_use]
    pub fn new(blas: usize, transform: Affine) -> Self {
        Instance { transform, blas }
    }
}

/// The two-level representation behind [`Scene::instanced`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct InstancedScene {
    pub(crate) blas: Vec<Blas>,
    pub(crate) instances: Vec<Instance>,
    /// Top-level BVH over the instances' world bounds; its "primitives" are instance indices.
    pub(crate) tlas: Bvh4,
    /// `prim_base[k]` is the global primitive id of instance `k`'s first triangle in the
    /// flattened order (instance-major, BLAS order within the instance).
    pub(crate) prim_base: Vec<usize>,
    /// Total triangles across all instances (`prim_base.last() + last instance's mesh size`).
    pub(crate) total_primitives: usize,
}

impl InstancedScene {
    /// The world bounds of every instance, in instance order (the TLAS "primitive" set).
    /// Instances with a dangling BLAS index contribute a degenerate origin box so construction
    /// stays total; the [`SceneValidator`](crate::SceneValidator) names such instances before
    /// any hardened trace accepts the scene.
    pub(crate) fn instance_bounds(blas: &[Blas], instances: &[Instance]) -> Vec<Aabb> {
        instances
            .iter()
            .map(|instance| match blas.get(instance.blas) {
                Some(mesh) => mesh.world_bounds(&instance.transform),
                None => Aabb::from_point(rayflex_geometry::Vec3::ZERO),
            })
            .collect()
    }

    fn new(blas: Vec<Blas>, instances: Vec<Instance>) -> Self {
        let bounds = Self::instance_bounds(&blas, &instances);
        let tlas = Bvh4::build(&bounds);
        let mut prim_base = Vec::with_capacity(instances.len());
        let mut total = 0usize;
        for instance in &instances {
            prim_base.push(total);
            total += blas.get(instance.blas).map_or(0, |m| m.triangles.len());
        }
        InstancedScene {
            blas,
            instances,
            tlas,
            prim_base,
            total_primitives: total,
        }
    }

    /// The instance owning global primitive `prim` and the primitive's mesh-local index.
    pub(crate) fn locate(&self, prim: usize) -> (usize, usize) {
        debug_assert!(prim < self.total_primitives);
        // prim_base is non-decreasing; partition_point finds the owning instance.
        let instance = self.prim_base.partition_point(|&base| base <= prim) - 1;
        (instance, prim - self.prim_base[instance])
    }

    /// The world-space triangle with global primitive id `prim`.
    pub(crate) fn triangle(&self, prim: usize) -> Triangle {
        let (instance, local) = self.locate(prim);
        let inst = &self.instances[instance];
        self.blas[inst.blas].triangles[local].transformed(&inst.transform)
    }
}

/// What every policy entry point traces against: the owned scene boundary (flat or two-level
/// instanced — see DESIGN.md, "Scenes and two-level acceleration").
///
/// # Example
///
/// ```
/// use rayflex_geometry::{Affine, Triangle, Vec3};
/// use rayflex_rtunit::{Blas, Instance, Scene};
///
/// let tri = Triangle::new(
///     Vec3::new(-1.0, -1.0, 0.0),
///     Vec3::new(1.0, -1.0, 0.0),
///     Vec3::new(0.0, 1.0, 0.0),
/// );
/// let scene = Scene::instanced(
///     vec![Blas::new(vec![tri])],
///     vec![
///         Instance::new(0, Affine::translation(Vec3::new(0.0, 0.0, 3.0))),
///         Instance::new(0, Affine::translation(Vec3::new(0.0, 0.0, 6.0))),
///     ],
/// );
/// assert!(scene.is_instanced());
/// assert_eq!(scene.triangle_count(), 2);
/// let flattened = scene.flatten();
/// assert!(!flattened.is_instanced());
/// assert_eq!(flattened.triangle_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    repr: SceneRepr,
}

#[derive(Debug, Clone, PartialEq)]
enum SceneRepr {
    Flat { bvh: Bvh4, triangles: Vec<Triangle> },
    Instanced(InstancedScene),
}

impl Scene {
    /// A flat scene over one triangle list (builds its BVH with the default leaf size).
    #[must_use]
    pub fn flat(triangles: Vec<Triangle>) -> Self {
        let bvh = Bvh4::build(&triangles);
        Scene {
            repr: SceneRepr::Flat { bvh, triangles },
        }
    }

    /// A flat scene from a prebuilt BVH and the triangle list it indexes.
    #[must_use]
    pub fn from_parts(bvh: Bvh4, triangles: Vec<Triangle>) -> Self {
        Scene {
            repr: SceneRepr::Flat { bvh, triangles },
        }
    }

    /// A two-level instanced scene: BLAS meshes plus instance placements, with a TLAS built
    /// over the instances' world bounds.
    ///
    /// Construction is total even over malformed input (a dangling BLAS index or a non-finite
    /// transform yields a scene the [`SceneValidator`](crate::SceneValidator) rejects with the
    /// offending instance named); only the hardened `try_*` entry points check — the plain
    /// entry points treat such scenes as programmer error, like any other malformed scene.
    #[must_use]
    pub fn instanced(blas: Vec<Blas>, instances: Vec<Instance>) -> Self {
        Scene {
            repr: SceneRepr::Instanced(InstancedScene::new(blas, instances)),
        }
    }

    /// `true` for the two-level representation.
    #[must_use]
    pub fn is_instanced(&self) -> bool {
        matches!(self.repr, SceneRepr::Instanced(_))
    }

    /// Total primitives addressable by global primitive id — the id space of
    /// [`TraversalHit::primitive`](crate::TraversalHit::primitive).
    #[must_use]
    pub fn triangle_count(&self) -> usize {
        match &self.repr {
            SceneRepr::Flat { triangles, .. } => triangles.len(),
            SceneRepr::Instanced(scene) => scene.total_primitives,
        }
    }

    /// The world-space triangle with global primitive id `prim` — flat scenes index their list,
    /// instanced scenes transform the owning instance's mesh triangle on the fly (bit-identical
    /// to the triangle [`Scene::flatten`] bakes at the same id).
    ///
    /// # Panics
    ///
    /// Panics if `prim` is outside `0..self.triangle_count()`.
    #[must_use]
    pub fn triangle(&self, prim: usize) -> Triangle {
        match &self.repr {
            SceneRepr::Flat { triangles, .. } => triangles[prim],
            SceneRepr::Instanced(scene) => scene.triangle(prim),
        }
    }

    /// The flat representation's BVH (`None` for instanced scenes).
    #[must_use]
    pub fn bvh(&self) -> Option<&Bvh4> {
        match &self.repr {
            SceneRepr::Flat { bvh, .. } => Some(bvh),
            SceneRepr::Instanced(_) => None,
        }
    }

    /// The flat representation's triangle list (`None` for instanced scenes).
    #[must_use]
    pub fn triangles(&self) -> Option<&[Triangle]> {
        match &self.repr {
            SceneRepr::Flat { triangles, .. } => Some(triangles),
            SceneRepr::Instanced(_) => None,
        }
    }

    /// World-space triangle centroids, one per global primitive id — the dataset the point-query
    /// engines ([`KnnEngine`](crate::KnnEngine), [`HierarchicalSearch`](crate::HierarchicalSearch))
    /// consume at the scene boundary.  Instanced scenes contribute one centroid per *placed*
    /// triangle with its instance transform applied, exactly the centroids
    /// [`Scene::flatten`] would yield.
    #[must_use]
    pub fn centroids(&self) -> Vec<Vec3> {
        (0..self.triangle_count())
            .map(|prim| self.triangle(prim).centroid())
            .collect()
    }

    /// The instance list (empty for flat scenes).
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        match &self.repr {
            SceneRepr::Flat { .. } => &[],
            SceneRepr::Instanced(scene) => &scene.instances,
        }
    }

    /// The BLAS list (empty for flat scenes).
    #[must_use]
    pub fn blas_list(&self) -> &[Blas] {
        match &self.repr {
            SceneRepr::Flat { .. } => &[],
            SceneRepr::Instanced(scene) => &scene.blas,
        }
    }

    /// The top-level BVH over instance bounds (`None` for flat scenes).
    #[must_use]
    pub fn tlas(&self) -> Option<&Bvh4> {
        match &self.repr {
            SceneRepr::Flat { .. } => None,
            SceneRepr::Instanced(scene) => Some(&scene.tlas),
        }
    }

    /// Bakes the scene into its flat twin: every instance's triangles transformed to world
    /// space in instance-major order (BLAS order within each instance) and indexed by one fresh
    /// flat BVH.  Flat scenes return a clone of themselves.
    ///
    /// Global primitive ids are preserved: the triangle at id `p` here is bit-identical to
    /// [`Scene::triangle`]`(p)` of the instanced original, which is what pins instanced
    /// traversal bit-identical to flattened traversal.
    #[must_use]
    pub fn flatten(&self) -> Scene {
        match &self.repr {
            SceneRepr::Flat { .. } => self.clone(),
            SceneRepr::Instanced(scene) => {
                let mut baked = Vec::with_capacity(scene.total_primitives);
                for instance in &scene.instances {
                    let mesh = &scene.blas[instance.blas];
                    baked.extend(
                        mesh.triangles
                            .iter()
                            .map(|tri| tri.transformed(&instance.transform)),
                    );
                }
                Scene::flat(baked)
            }
        }
    }

    /// Replaces one instance's transform **without** updating the TLAS — call
    /// [`Scene::refit`] (cheap) or rebuild via [`Scene::instanced`] before tracing again.
    /// No-op on flat scenes.
    ///
    /// # Panics
    ///
    /// Panics if the scene is instanced and `index` is out of range.
    pub fn set_instance_transform(&mut self, index: usize, transform: Affine) {
        if let SceneRepr::Instanced(scene) = &mut self.repr {
            scene.instances[index].transform = transform;
        }
    }

    /// Refits the TLAS to the instances' current transforms without touching any BLAS and
    /// without re-sorting the TLAS topology: every instance's world bounds are re-derived from
    /// its transform, and the TLAS node boxes are recomputed bottom-up as exact unions
    /// ([`Bvh4::refit_with`]).  No-op on flat scenes.
    ///
    /// Because the refit boxes contain exactly the same geometry a fresh TLAS build would
    /// bound, a refit scene re-traces **bit-identical hits** to a freshly built one (the tree
    /// shapes — and therefore the statistics — may differ).
    pub fn refit(&mut self) {
        if let SceneRepr::Instanced(scene) = &mut self.repr {
            let bounds = InstancedScene::instance_bounds(&scene.blas, &scene.instances);
            scene.tlas.refit_with(&bounds);
        }
    }

    /// Approximate resident size of the acceleration structures and geometry, in bytes — the
    /// memory axis of the instancing benchmarks (flattening multiplies triangle storage by the
    /// instance count; instancing does not).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        fn bvh_bytes(bvh: &Bvh4) -> usize {
            core::mem::size_of_val(bvh.nodes()) + core::mem::size_of_val(bvh.primitive_indices())
        }
        match &self.repr {
            SceneRepr::Flat { bvh, triangles } => {
                bvh_bytes(bvh) + triangles.len() * core::mem::size_of::<Triangle>()
            }
            SceneRepr::Instanced(scene) => {
                let blas: usize = scene
                    .blas
                    .iter()
                    .map(|m| {
                        bvh_bytes(&m.bvh) + m.triangles.len() * core::mem::size_of::<Triangle>()
                    })
                    .sum();
                blas + bvh_bytes(&scene.tlas)
                    + scene.instances.len() * core::mem::size_of::<Instance>()
                    + scene.prim_base.len() * core::mem::size_of::<usize>()
            }
        }
    }

    /// The borrowed traversal view of this scene.
    pub(crate) fn view(&self) -> SceneView<'_> {
        match &self.repr {
            SceneRepr::Flat { bvh, triangles } => SceneView::Flat { bvh, triangles },
            SceneRepr::Instanced(scene) => SceneView::Instanced(scene),
        }
    }

    /// Mutable instance access for the fault-injection harness ([`crate::fault`]), which
    /// deliberately corrupts placements to exercise the validator; deliberately does **not**
    /// refit, so the corruption is observable.
    pub(crate) fn instances_mut(&mut self) -> Option<&mut Vec<Instance>> {
        match &mut self.repr {
            SceneRepr::Flat { .. } => None,
            SceneRepr::Instanced(scene) => Some(&mut scene.instances),
        }
    }
}

// --- Traversal handles -----------------------------------------------------------------------
//
// Two-level traversal walks nodes of several BVHs with one stack, so stack (and pending-leaf)
// entries are 64-bit *handles*: the low 32 bits index a node (or a mesh-local primitive), the
// next 31 bits carry the context — 0 for the top-level structure (the flat BVH, or the TLAS),
// `k + 1` for instance `k`'s BLAS.  Box-beat tags reuse the same encoding so a response finds
// its children table; the top bit is `TLAS_PHASE_TAG`, set on TLAS-phase box beats for the
// datapath's beat attribution and masked off before decoding.

/// Context id of the top-level structure (flat BVH or TLAS).
pub(crate) const TOP_CTX: u32 = 0;

/// Encodes a (context, index) pair as a traversal handle.
#[inline]
pub(crate) fn handle(ctx: u32, index: usize) -> u64 {
    debug_assert!(
        index <= u32::MAX as usize,
        "node index overflows the handle"
    );
    (u64::from(ctx) << 32) | index as u64
}

/// The context of a handle (TLAS phase tag tolerated and masked).
#[inline]
pub(crate) fn handle_ctx(handle: u64) -> u32 {
    ((handle & !TLAS_PHASE_TAG) >> 32) as u32
}

/// The node / mesh-local primitive index of a handle.
#[inline]
pub(crate) fn handle_index(handle: u64) -> usize {
    (handle & 0xFFFF_FFFF) as usize
}

/// A borrowed, `Copy` view of a scene — what the traversal internals, the parallel shard
/// workers and the frame tracer thread through instead of a `(bvh, triangles)` pair.  The
/// deprecated flat-signature shims construct a `Flat` view directly from their borrowed
/// arguments, so they run without cloning geometry into a [`Scene`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum SceneView<'a> {
    /// One flat BVH over one triangle list.
    Flat {
        /// The BVH.
        bvh: &'a Bvh4,
        /// The triangles it indexes.
        triangles: &'a [Triangle],
    },
    /// A two-level instanced scene.
    Instanced(&'a InstancedScene),
}

/// The bounds operand of a box beat: borrowed straight from a node (flat/TLAS phases) or a
/// transformed per-visit copy (BLAS phase under an instance transform).
pub(crate) enum BoxBounds<'a> {
    /// Bounds used as stored.
    Borrowed(&'a [Aabb; 4]),
    /// Bounds transformed into world space for this visit.
    Owned([Aabb; 4]),
}

impl BoxBounds<'_> {
    #[inline]
    pub(crate) fn as_array(&self) -> &[Aabb; 4] {
        match self {
            BoxBounds::Borrowed(bounds) => bounds,
            BoxBounds::Owned(bounds) => bounds,
        }
    }
}

/// What a traversal does after popping a stack handle — the single node-expansion step both
/// the scalar reference walk and the wavefront state machine share, which is what keeps their
/// per-ray beat sequences (and statistics) bit-identical.
pub(crate) enum NodeStep<'a> {
    /// An internal node: issue one ray–box beat with `tag`, testing `bounds`; on response,
    /// resolve hit slots through this `children` table into context `ctx`.
    BoxBeat {
        /// The beat tag (handle of this node, TLAS-phase bit included where applicable).
        tag: u64,
        /// The four child slot bounds to test.
        bounds: BoxBounds<'a>,
        /// The children table of this node.
        children: &'a [Option<usize>; 4],
        /// Context the children live in.
        ctx: u32,
        /// `true` when this is a TLAS-phase beat (for the TLAS statistics split).
        tlas: bool,
    },
    /// A geometry leaf: extend the pending queue with these mesh-local primitives (encoded
    /// into `ctx`), to be triangle-tested in leaf order.
    Leaf {
        /// Mesh-local primitive indices of the leaf.
        prims: &'a [usize],
        /// Context the primitives live in.
        ctx: u32,
    },
    /// A TLAS leaf: descend into these instances (push each instance's BLAS root, in leaf
    /// order).
    Instances {
        /// Instance indices of the TLAS leaf.
        prims: &'a [usize],
    },
}

impl<'a> SceneView<'a> {
    /// The handle traversal starts from.
    #[inline]
    pub(crate) fn root_handle(&self) -> u64 {
        match self {
            SceneView::Flat { bvh, .. } => handle(TOP_CTX, bvh.root()),
            SceneView::Instanced(scene) => handle(TOP_CTX, scene.tlas.root()),
        }
    }

    /// Total primitives addressable by global id.
    pub(crate) fn triangle_count(&self) -> usize {
        match self {
            SceneView::Flat { triangles, .. } => triangles.len(),
            SceneView::Instanced(scene) => scene.total_primitives,
        }
    }

    /// Expands the node behind a popped stack handle into its traversal step.
    ///
    /// BLAS-phase internal nodes get their stored child bounds conservatively transformed into
    /// world space per visit (absent slots keep the canonical never-hit `f32::MAX` point box,
    /// untransformed, so their behaviour matches a flat traversal's padding exactly).
    pub(crate) fn step(&self, popped: u64) -> NodeStep<'a> {
        let ctx = handle_ctx(popped);
        let index = handle_index(popped);
        match self {
            SceneView::Flat { bvh, .. } => match bvh.node(index) {
                Bvh4Node::Leaf { .. } => NodeStep::Leaf {
                    prims: bvh.leaf_primitives(index),
                    ctx: TOP_CTX,
                },
                Bvh4Node::Internal {
                    children,
                    child_bounds,
                } => NodeStep::BoxBeat {
                    tag: handle(TOP_CTX, index),
                    bounds: BoxBounds::Borrowed(child_bounds),
                    children,
                    ctx: TOP_CTX,
                    tlas: false,
                },
            },
            SceneView::Instanced(scene) => {
                if ctx == TOP_CTX {
                    match scene.tlas.node(index) {
                        Bvh4Node::Leaf { .. } => NodeStep::Instances {
                            prims: scene.tlas.leaf_primitives(index),
                        },
                        Bvh4Node::Internal {
                            children,
                            child_bounds,
                        } => NodeStep::BoxBeat {
                            tag: handle(TOP_CTX, index) | TLAS_PHASE_TAG,
                            bounds: BoxBounds::Borrowed(child_bounds),
                            children,
                            ctx: TOP_CTX,
                            tlas: true,
                        },
                    }
                } else {
                    let instance = &scene.instances[ctx as usize - 1];
                    let mesh = &scene.blas[instance.blas];
                    match mesh.bvh.node(index) {
                        Bvh4Node::Leaf { .. } => NodeStep::Leaf {
                            prims: mesh.bvh.leaf_primitives(index),
                            ctx,
                        },
                        Bvh4Node::Internal {
                            children,
                            child_bounds,
                        } => {
                            let mut bounds = *child_bounds;
                            for (slot, child) in children.iter().enumerate() {
                                if child.is_some() {
                                    bounds[slot] =
                                        child_bounds[slot].transformed(&instance.transform);
                                }
                            }
                            NodeStep::BoxBeat {
                                tag: handle(ctx, index),
                                bounds: BoxBounds::Owned(bounds),
                                children,
                                ctx,
                                tlas: false,
                            }
                        }
                    }
                }
            }
        }
    }

    /// The children table (and child context) of the internal node a box-beat response with
    /// `tag` tested — the apply-phase twin of [`SceneView::step`].
    pub(crate) fn children_for_tag(&self, tag: u64) -> (&'a [Option<usize>; 4], u32) {
        let ctx = handle_ctx(tag);
        let index = handle_index(tag);
        let node = match self {
            SceneView::Flat { bvh, .. } => bvh.node(index),
            SceneView::Instanced(scene) => {
                if ctx == TOP_CTX {
                    scene.tlas.node(index)
                } else {
                    let instance = &scene.instances[ctx as usize - 1];
                    scene.blas[instance.blas].bvh.node(index)
                }
            }
        };
        match node {
            Bvh4Node::Internal { children, .. } => (children, ctx),
            Bvh4Node::Leaf { .. } => unreachable!("box beats only test internal nodes"),
        }
    }

    /// The handle of the BLAS root entered by descending into instance `instance_index` —
    /// what a TLAS leaf pushes per instance.
    #[inline]
    pub(crate) fn instance_root(&self, instance_index: usize) -> u64 {
        match self {
            SceneView::Flat { .. } => unreachable!("flat scenes have no instances"),
            SceneView::Instanced(scene) => {
                let instance = &scene.instances[instance_index];
                handle(
                    instance_index as u32 + 1,
                    scene.blas[instance.blas].bvh.root(),
                )
            }
        }
    }

    /// The global primitive id behind a pending-queue entry (the id reported in hits).
    #[inline]
    pub(crate) fn global_primitive(&self, pending: u64) -> usize {
        let local = handle_index(pending);
        match self {
            SceneView::Flat { .. } => local,
            SceneView::Instanced(scene) => {
                scene.prim_base[handle_ctx(pending) as usize - 1] + local
            }
        }
    }

    /// The world-space triangle (and its global primitive id) behind a pending-queue entry.
    #[inline]
    pub(crate) fn pending_triangle(&self, pending: u64) -> (Triangle, usize) {
        let ctx = handle_ctx(pending);
        let local = handle_index(pending);
        match self {
            SceneView::Flat { triangles, .. } => (triangles[local], local),
            SceneView::Instanced(scene) => {
                if ctx == TOP_CTX {
                    unreachable!("instanced pending entries always carry a BLAS context")
                }
                let instance_index = ctx as usize - 1;
                let instance = &scene.instances[instance_index];
                (
                    scene.blas[instance.blas].triangles[local].transformed(&instance.transform),
                    scene.prim_base[instance_index] + local,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::Vec3;

    fn shard() -> Vec<Triangle> {
        vec![
            Triangle::new(
                Vec3::new(-0.5, -0.5, 0.0),
                Vec3::new(0.5, -0.5, 0.0),
                Vec3::new(0.0, 0.5, 0.0),
            ),
            Triangle::new(
                Vec3::new(-0.5, -0.5, 0.2),
                Vec3::new(0.0, 0.5, 0.2),
                Vec3::new(0.5, -0.5, 0.2),
            ),
        ]
    }

    fn two_instance_scene() -> Scene {
        Scene::instanced(
            vec![Blas::new(shard())],
            vec![
                Instance::new(0, Affine::translation(Vec3::new(0.0, 0.0, 3.0))),
                Instance::new(0, Affine::translation(Vec3::new(2.0, 0.0, 5.0))),
            ],
        )
    }

    #[test]
    fn flatten_preserves_global_primitive_ids_bit_exactly() {
        let scene = two_instance_scene();
        let flattened = scene.flatten();
        assert_eq!(flattened.triangle_count(), scene.triangle_count());
        for prim in 0..scene.triangle_count() {
            let a = scene.triangle(prim);
            let b = flattened.triangle(prim);
            assert_eq!(
                a.v0.to_array().map(f32::to_bits),
                b.v0.to_array().map(f32::to_bits)
            );
            assert_eq!(
                a.v1.to_array().map(f32::to_bits),
                b.v1.to_array().map(f32::to_bits)
            );
            assert_eq!(
                a.v2.to_array().map(f32::to_bits),
                b.v2.to_array().map(f32::to_bits)
            );
        }
    }

    #[test]
    fn handles_round_trip_context_and_index() {
        let h = handle(7, 123);
        assert_eq!(handle_ctx(h), 7);
        assert_eq!(handle_index(h), 123);
        assert_eq!(handle_ctx(h | TLAS_PHASE_TAG), 7);
        assert_eq!(handle_index(h | TLAS_PHASE_TAG), 123);
    }

    #[test]
    fn tlas_bounds_contain_every_instanced_triangle() {
        let scene = two_instance_scene();
        let tlas = scene.tlas().expect("instanced scene has a TLAS");
        let bounds = tlas.scene_bounds();
        for prim in 0..scene.triangle_count() {
            let tri = scene.triangle(prim);
            assert!(bounds.contains(tri.v0) && bounds.contains(tri.v1) && bounds.contains(tri.v2));
        }
    }

    #[test]
    fn refit_follows_moved_instances() {
        let mut scene = two_instance_scene();
        scene.set_instance_transform(1, Affine::translation(Vec3::new(50.0, 0.0, 5.0)));
        scene.refit();
        let bounds = scene.tlas().expect("tlas").scene_bounds();
        for prim in 0..scene.triangle_count() {
            let tri = scene.triangle(prim);
            assert!(bounds.contains(tri.v0), "refit lost {prim}");
        }
    }

    #[test]
    fn memory_accounting_shows_the_instancing_advantage() {
        // A mesh dense enough that triangle storage dominates the per-instance TLAS overhead.
        let mesh: Vec<Triangle> = (0..32)
            .flat_map(|i| {
                let dz = i as f32 * 0.05;
                shard().into_iter().map(move |tri| {
                    Triangle::new(
                        tri.v0 + Vec3::new(0.0, 0.0, dz),
                        tri.v1 + Vec3::new(0.0, 0.0, dz),
                        tri.v2 + Vec3::new(0.0, 0.0, dz),
                    )
                })
            })
            .collect();
        let instances: Vec<Instance> = (0..64)
            .map(|i| Instance::new(0, Affine::translation(Vec3::new(i as f32 * 2.0, 0.0, 4.0))))
            .collect();
        let instanced = Scene::instanced(vec![Blas::new(mesh)], instances);
        let flattened = instanced.flatten();
        assert!(instanced.memory_bytes() < flattened.memory_bytes() / 4);
    }

    #[test]
    fn locate_maps_global_ids_to_instances() {
        let scene = two_instance_scene();
        let SceneView::Instanced(inner) = scene.view() else {
            panic!("expected instanced view");
        };
        assert_eq!(inner.locate(0), (0, 0));
        assert_eq!(inner.locate(1), (0, 1));
        assert_eq!(inner.locate(2), (1, 0));
        assert_eq!(inner.locate(3), (1, 1));
    }
}
