//! Ingress chaos: seeded [`FaultPlan`]s drive the four transport-level fault kinds —
//! [`FaultKind::MalformedFrame`], [`FaultKind::TruncatedFrame`], [`FaultKind::Disconnect`] and
//! [`FaultKind::DeadlineStorm`] — against a live loopback server.  The contract under every
//! fault: the client observes a structured error or a correct response, never a protocol
//! violation; and the server never panics or hangs a worker — proven by a healthy probe
//! request on a fresh connection after every injection, and a clean drain at the end.

use std::io::Write;
use std::time::Duration;

use proptest::prelude::*;

use rayflex_rtunit::fault::{FaultKind, FaultPlan};
use rayflex_server::{ServerConfig, ServerHandle};
use rayflex_workloads::wire::{
    catalog, code, encode_request, RequestBody, RequestFrame, ResponseBody, WireClient,
};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

fn trace_request(request_id: u64, seed: u64, rays: usize, deadline_us: u64) -> RequestFrame {
    RequestFrame {
        request_id,
        tenant: 0,
        deadline_us,
        scene: "wall".into(),
        body: RequestBody::Trace {
            rays: catalog::sample_rays("wall", seed, rays).expect("catalog rays"),
        },
    }
}

/// A full wire frame (length prefix + payload) for `request`.
fn frame_bytes(request: &RequestFrame) -> Vec<u8> {
    let payload = encode_request(request);
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

fn connect(addr: &str) -> WireClient {
    let mut client = WireClient::connect(addr).expect("client connects");
    client
        .stream_mut()
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("timeout set");
    client
}

/// Sends one healthy request on a fresh connection and asserts a correct answer — the
/// "no hung or dead worker" probe run after every fault injection.
fn probe(addr: &str, request_id: u64) {
    let mut client = connect(addr);
    let response = client
        .request(&trace_request(request_id, request_id, 3, 0))
        .expect("probe request round-trips after the fault");
    assert_eq!(response.request_id, request_id);
    assert!(
        matches!(response.body, ResponseBody::Hits { .. }),
        "probe must be served normally, got {:?}",
        response.body
    );
}

fn inject(addr: &str, plan: &FaultPlan, seed: u64) {
    match plan.kind {
        FaultKind::MalformedFrame => {
            // A complete frame with one payload bit flipped: the server must answer — either a
            // structured decode error, or (if the flip landed in a don't-care position that
            // still decodes) a normal response — and the connection must survive.
            let mut client = connect(addr);
            let mut frame = frame_bytes(&trace_request(1, seed, 4, 0));
            let flipped = plan.corrupt_frame(&mut frame);
            assert!(flipped.is_some(), "a request frame is never empty");
            client
                .stream_mut()
                .write_all(&frame)
                .expect("corrupt frame writes");
            let response = client
                .receive()
                .expect("a complete frame always gets a response");
            if let ResponseBody::Error { code: got, .. } = response.body {
                assert_eq!(got, code::INVALID_REQUEST, "decode failures map to code 1");
            }
            // Same connection still serves.
            let response = client
                .request(&trace_request(2, seed ^ 1, 2, 0))
                .expect("connection survives a malformed frame");
            assert_eq!(response.request_id, 2);
        }
        FaultKind::TruncatedFrame => {
            // The length prefix promises more bytes than ever arrive, then the client vanishes.
            // The server must treat it as a silent disconnect (no response owed for an
            // incomplete frame) without wedging the reader thread.
            let mut client = connect(addr);
            let mut frame = frame_bytes(&trace_request(1, seed, 4, 0));
            let kept = plan.truncate_frame(&mut frame);
            assert_eq!(kept, frame.len(), "truncation reports the kept length");
            client
                .stream_mut()
                .write_all(&frame)
                .expect("truncated frame writes");
            drop(client);
        }
        FaultKind::Disconnect => {
            // Mid-stream disconnect: one whole request is served, then the connection dies with
            // a second frame half-written.
            let mut client = connect(addr);
            let response = client
                .request(&trace_request(1, seed, 3, 0))
                .expect("first request serves");
            assert_eq!(response.request_id, 1);
            let frame = frame_bytes(&trace_request(2, seed ^ 2, 3, 0));
            let cut = 4 + (seed as usize % (frame.len() - 4));
            client
                .stream_mut()
                .write_all(&frame[..cut])
                .expect("partial frame writes");
            drop(client);
        }
        FaultKind::DeadlineStorm => {
            // Every request carries a ~1µs deadline: all of them are due immediately, so the
            // batcher must flush at once and EDF ordering churns constantly.  Each request is
            // still owed a response — complete, partial, or a structured error — in order.
            let mut client = connect(addr);
            for id in 1..=6u64 {
                let response = client
                    .request(&trace_request(id, seed ^ id, 4, 1))
                    .expect("deadline-storm requests are always answered");
                assert_eq!(response.request_id, id);
                match response.body {
                    ResponseBody::Hits { .. } | ResponseBody::PartialHits { .. } => {}
                    ResponseBody::Error { code: got, .. } => assert!(
                        got == code::DEADLINE_EXCEEDED || got == code::BUDGET_EXHAUSTED,
                        "storm errors must be deadline-shaped, got code {got}"
                    ),
                    other => panic!("unexpected body {other:?}"),
                }
            }
        }
        _ => unreachable!("only ingress kinds are injected here"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// One server per case survives a seeded sequence of all four ingress faults, serves a
    /// healthy probe after each, and drains cleanly.
    #[test]
    fn ingress_faults_yield_structured_outcomes_and_never_kill_the_server(
        seed in any::<u64>(),
        order in 0usize..4,
    ) {
        let server = ServerHandle::spawn(ServerConfig {
            max_batch: 4,
            flush_us: 300,
            ..ServerConfig::default()
        })
        .expect("server spawns");
        let addr = server.local_addr().to_string();

        let kinds = [
            FaultKind::MalformedFrame,
            FaultKind::TruncatedFrame,
            FaultKind::Disconnect,
            FaultKind::DeadlineStorm,
        ];
        for offset in 0..kinds.len() {
            let kind = kinds[(order + offset) % kinds.len()];
            let plan = FaultPlan::new(kind, seed.wrapping_add(offset as u64));
            inject(&addr, &plan, plan.seed);
            probe(&addr, 900 + offset as u64);
        }

        let report = server.shutdown();
        // Probes (4) + malformed follow-up (2) + disconnect's first request (1) + the storm (6).
        prop_assert!(report.served >= 11, "drain lost requests: {report:?}");
        prop_assert!(report.connections >= 8);
    }

    /// Raw corrupt-frame soup at higher volume: every seed's corruption against a shared
    /// server, each answered or cleanly dropped, with the server healthy throughout.
    #[test]
    fn repeated_malformed_frames_never_accumulate_damage(seeds in prop::collection::vec(any::<u64>(), 1..8)) {
        let server = ServerHandle::spawn(ServerConfig::default()).expect("server spawns");
        let addr = server.local_addr().to_string();
        let mut client = connect(&addr);
        for (index, seed) in seeds.iter().enumerate() {
            let plan = FaultPlan::new(FaultKind::MalformedFrame, *seed);
            let mut frame = frame_bytes(&trace_request(index as u64, *seed, 3, 0));
            plan.corrupt_frame(&mut frame);
            client.stream_mut().write_all(&frame).expect("frame writes");
            let response = client.receive().expect("every complete frame is answered");
            if let ResponseBody::Error { code: got, .. } = response.body {
                prop_assert_eq!(got, code::INVALID_REQUEST);
            }
        }
        drop(client);
        probe(&addr, 999);
        server.shutdown();
    }
}
