//! The serving bit-identity contract: a response served over the loopback TCP path — decoded,
//! admitted, batched with strangers into a shared fused run, extracted, re-encoded — is
//! **byte-identical** to encoding the answer of the equivalent direct library `try_*` call
//! under [`ExecMode::Fused`].  This is the repo's tentpole invariant (fusion and batching
//! change scheduling, never outputs) carried across the wire: `f32` payloads travel as raw
//! IEEE-754 bit patterns, so even the encoded frames must match bit for bit.

use rayflex_core::PipelineConfig;
use rayflex_rtunit::{
    Bvh4, ExecPolicy, HierarchicalSearch, KnnEngine, KnnMetric, QueryOutcome, Scene, TraceRequest,
    TraversalEngine,
};
use rayflex_server::{ServerConfig, ServerHandle};
use rayflex_workloads::wire::{
    catalog, encode_response, RequestBody, RequestFrame, ResponseBody, ResponseFrame, WireClient,
    WireHit, WireNeighbor,
};

fn fused() -> ExecPolicy {
    ExecPolicy::fused()
}

fn request(request_id: u64, scene: &str, body: RequestBody) -> RequestFrame {
    RequestFrame {
        request_id,
        tenant: 0,
        deadline_us: 0,
        scene: scene.into(),
        body,
    }
}

fn wire_hits(hits: Vec<Option<rayflex_rtunit::TraversalHit>>) -> Vec<Option<WireHit>> {
    hits.into_iter()
        .map(|hit| {
            hit.map(|hit| WireHit {
                primitive: hit.primitive as u64,
                t: hit.t,
            })
        })
        .collect()
}

fn wire_neighbors(neighbors: Vec<rayflex_rtunit::Neighbor>) -> Vec<WireNeighbor> {
    neighbors
        .into_iter()
        .map(|neighbor| WireNeighbor {
            index: neighbor.index as u64,
            distance: neighbor.distance,
        })
        .collect()
}

fn complete<T>(outcome: QueryOutcome<T>) -> T {
    match outcome {
        QueryOutcome::Complete(output) => output,
        QueryOutcome::Partial(_) => panic!("uncapped fused runs always complete"),
    }
}

/// Every request kind, served concurrently over one socket per request against a batching
/// server, must produce encoded responses byte-identical to the direct library composition.
#[test]
fn served_responses_are_byte_identical_to_direct_fused_library_calls() {
    let server = ServerHandle::spawn(ServerConfig {
        max_batch: 8,
        flush_us: 2_000,
        ..ServerConfig::default()
    })
    .expect("server spawns");
    let addr = server.local_addr().to_string();

    // The library side, composed exactly as a standalone user would.
    let mut expected: Vec<(RequestFrame, ResponseFrame)> = Vec::new();

    for scene_name in catalog::SCENES {
        let triangles = catalog::scene_triangles(scene_name).expect("catalog scene");
        let scene = Scene::from_parts(Bvh4::build(&triangles), triangles);
        let mut engine = TraversalEngine::with_config(PipelineConfig::extended_unified());

        let rays = catalog::sample_rays(scene_name, 101, 6).expect("catalog rays");
        let outcome = complete(
            engine
                .try_trace(&TraceRequest::closest_hit(&scene, &rays), &fused())
                .expect("valid trace"),
        );
        let id = expected.len() as u64 + 1;
        expected.push((
            request(id, scene_name, RequestBody::Trace { rays }),
            ResponseFrame {
                request_id: id,
                body: ResponseBody::Hits {
                    hits: wire_hits(outcome.into_closest()),
                },
            },
        ));

        let rays = catalog::sample_rays(scene_name, 202, 5).expect("catalog rays");
        let outcome = complete(
            engine
                .try_trace(&TraceRequest::any_hit(&scene, &rays), &fused())
                .expect("valid any-hit"),
        );
        let id = expected.len() as u64 + 1;
        expected.push((
            request(id, scene_name, RequestBody::AnyHit { rays }),
            ResponseFrame {
                request_id: id,
                body: ResponseBody::Hits {
                    hits: wire_hits(outcome.into_any()),
                },
            },
        ));
    }

    for dataset_name in catalog::DATASETS {
        let dataset = catalog::dataset_vectors(dataset_name).expect("catalog dataset");
        let queries = catalog::sample_queries(dataset_name, 303, 3).expect("catalog queries");
        let mut engine = KnnEngine::new();
        for (i, query) in queries.iter().enumerate() {
            let k = 3 + i;
            let neighbors = engine
                .try_k_nearest(query, &dataset, k, KnnMetric::Euclidean, &fused())
                .expect("valid knn");
            let id = expected.len() as u64 + 1;
            expected.push((
                request(
                    id,
                    dataset_name,
                    RequestBody::Knn {
                        k: k as u32,
                        query: query.clone(),
                    },
                ),
                ResponseFrame {
                    request_id: id,
                    body: ResponseBody::Neighbors {
                        neighbors: wire_neighbors(neighbors),
                    },
                },
            ));
        }
    }

    for cloud_name in catalog::CLOUDS {
        let points = catalog::cloud_points(cloud_name).expect("catalog cloud");
        let centers = catalog::sample_centers(cloud_name, 404, 3).expect("catalog centers");
        let mut engine =
            HierarchicalSearch::build(points, 0.05, PipelineConfig::extended_unified());
        for (center, radius) in &centers {
            let results = complete(
                engine
                    .try_radius_queries(&[(*center, *radius)], &fused())
                    .expect("valid radius"),
            );
            let id = expected.len() as u64 + 1;
            expected.push((
                request(
                    id,
                    cloud_name,
                    RequestBody::Radius {
                        center: [center.x, center.y, center.z],
                        radius: *radius,
                    },
                ),
                ResponseFrame {
                    request_id: id,
                    body: ResponseBody::Neighbors {
                        neighbors: wire_neighbors(results.into_iter().next().unwrap_or_default()),
                    },
                },
            ));
        }
    }

    // Serve every request concurrently — one connection per request, so the admission queue
    // genuinely coalesces them into shared batches — and compare *encoded bytes*.
    let handles: Vec<_> = expected
        .iter()
        .map(|(request, want)| {
            let addr = addr.clone();
            let request = request.clone();
            let want_bytes = encode_response(want);
            std::thread::spawn(move || {
                let mut client = WireClient::connect(&addr).expect("client connects");
                let got = client.request(&request).expect("request round-trips");
                assert_eq!(
                    encode_response(&got),
                    want_bytes,
                    "request {} served differently from the library",
                    request.request_id
                );
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no client thread panics");
    }

    let report = server.shutdown();
    assert_eq!(report.served, expected.len() as u64, "every request served");
    assert!(
        report.batches <= report.served,
        "batching never splits a request"
    );
}

/// The same contract under aggressive batching knobs: a single shared batch holding the whole
/// mixed load (batch size far above the request count, long flush window forcing coalescing)
/// still answers identically to isolated library calls.
#[test]
fn a_single_giant_mixed_batch_is_still_bit_identical() {
    let server = ServerHandle::spawn(ServerConfig {
        max_batch: 64,
        flush_us: 50_000,
        ..ServerConfig::default()
    })
    .expect("server spawns");
    let addr = server.local_addr().to_string();

    let triangles = catalog::scene_triangles("soup").expect("catalog scene");
    let scene = Scene::from_parts(Bvh4::build(&triangles), triangles);
    let mut engine = TraversalEngine::with_config(PipelineConfig::extended_unified());

    let mut batch: Vec<(RequestFrame, Vec<u8>)> = Vec::new();
    for id in 1..=12u64 {
        let rays = catalog::sample_rays("soup", id, 4).expect("catalog rays");
        let outcome = complete(
            engine
                .try_trace(&TraceRequest::closest_hit(&scene, &rays), &fused())
                .expect("valid trace"),
        );
        let want = ResponseFrame {
            request_id: id,
            body: ResponseBody::Hits {
                hits: wire_hits(outcome.into_closest()),
            },
        };
        batch.push((
            request(id, "soup", RequestBody::Trace { rays }),
            encode_response(&want),
        ));
    }

    let handles: Vec<_> = batch
        .into_iter()
        .map(|(request, want_bytes)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(&addr).expect("client connects");
                let got = client.request(&request).expect("request round-trips");
                assert_eq!(encode_response(&got), want_bytes);
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no client thread panics");
    }
    server.shutdown();
}
