//! The condvar-based admission queue that turns many concurrent connections into shared fused
//! batches: connection threads [`submit`](AdmissionQueue::submit) one job each and block on a
//! private response channel; the single executor thread blocks in
//! [`next_batch`](AdmissionQueue::next_batch), which releases a batch when
//!
//! * the queue holds at least `max_batch` jobs (**flush on size**), or
//! * the oldest job has waited `flush_us` microseconds (**flush on deadline**), or
//! * a job's own `deadline_us` expires sooner than the flush window (a deadline storm must not
//!   sit out the full window), or
//! * the queue is closed (drain: everything still pending is released in final batches).
//!
//! Batch *selection* is deadline-aware: under
//! [`AdmissionOrder::EarliestDeadlineFirst`](rayflex_rtunit::AdmissionOrder) the pending jobs
//! are sorted by absolute deadline (no deadline sorts last; ties by arrival) before the first
//! `max_batch` are taken, so under overload the tightest-deadline requests are served first —
//! the queue-level mirror of the scheduler-level admission knob.

use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use rayflex_rtunit::AdmissionOrder;
use rayflex_workloads::wire::{RequestFrame, ResponseFrame};

/// One admitted request waiting for a batch slot.
#[derive(Debug)]
pub struct Job {
    /// The decoded request.
    pub request: RequestFrame,
    /// When the job entered the queue (deadlines and flush windows are measured from here).
    pub enqueued_at: Instant,
    /// Arrival sequence number — the FIFO key, and the deadline tie-breaker.
    pub seq: u64,
    /// Where the executor sends the response; the connection thread blocks on the other end.
    pub responder: SyncSender<ResponseFrame>,
}

impl Job {
    /// The job's absolute deadline, or `None` for `deadline_us == 0`.
    #[must_use]
    pub fn absolute_deadline(&self) -> Option<Instant> {
        (self.request.deadline_us > 0)
            .then(|| self.enqueued_at + Duration::from_micros(self.request.deadline_us))
    }

    /// Microseconds until the job's deadline as the scheduler's sort key: `0` = no deadline,
    /// already-expired deadlines clamp to `1` (most urgent).
    #[must_use]
    pub fn remaining_deadline_us(&self, now: Instant) -> u64 {
        match self.absolute_deadline() {
            None => 0,
            Some(at) => at
                .saturating_duration_since(now)
                .as_micros()
                .max(1)
                .min(u64::MAX as u128) as u64,
        }
    }
}

#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<Job>,
    next_seq: u64,
    closed: bool,
}

/// The shared admission queue.  Cheap to share: one mutex, one condvar.
#[derive(Debug, Default)]
pub struct AdmissionQueue {
    state: Mutex<QueueState>,
    /// Signalled on every submit and on close; the executor waits here.
    arrived: Condvar,
}

impl AdmissionQueue {
    /// An empty, open queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits one request.  Returns `false` (dropping the job) when the queue is closed — the
    /// caller answers the client with a shutting-down error instead of blocking forever on a
    /// response that will never come.
    pub fn submit(&self, request: RequestFrame, responder: SyncSender<ResponseFrame>) -> bool {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return false;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.pending.push_back(Job {
            request,
            enqueued_at: Instant::now(),
            seq,
            responder,
        });
        drop(state);
        self.arrived.notify_one();
        true
    }

    /// Closes the queue: no further submissions are admitted, and once the pending jobs drain,
    /// [`AdmissionQueue::next_batch`] returns `None`.
    pub fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.arrived.notify_all();
    }

    /// How many jobs are waiting right now (diagnostics).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pending
            .len()
    }

    /// Blocks until a batch is due (see the module docs for the flush conditions), then removes
    /// and returns up to `max_batch` jobs, selected and ordered by `admission`.  Returns `None`
    /// exactly once the queue is closed **and** empty — the executor's signal to exit after a
    /// complete drain.
    pub fn next_batch(
        &self,
        max_batch: usize,
        flush_us: u64,
        admission: AdmissionOrder,
    ) -> Option<Vec<Job>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.closed {
                if state.pending.is_empty() {
                    return None;
                }
                return Some(Self::take_batch(&mut state, max_batch, admission));
            }
            if state.pending.len() >= max_batch {
                return Some(Self::take_batch(&mut state, max_batch, admission));
            }
            if let Some(due_at) = Self::flush_due_at(&state, flush_us) {
                let now = Instant::now();
                if due_at <= now {
                    return Some(Self::take_batch(&mut state, max_batch, admission));
                }
                let (next, _) = self
                    .arrived
                    .wait_timeout(state, due_at - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = next;
            } else {
                state = self
                    .arrived
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// When the current pending set must flush: the oldest job's flush window, tightened by any
    /// job's own deadline.  `None` when nothing is pending.
    fn flush_due_at(state: &QueueState, flush_us: u64) -> Option<Instant> {
        let oldest = state.pending.front()?;
        let mut due = oldest.enqueued_at + Duration::from_micros(flush_us);
        for job in &state.pending {
            if let Some(deadline) = job.absolute_deadline() {
                due = due.min(deadline);
            }
        }
        Some(due)
    }

    fn take_batch(state: &mut QueueState, max_batch: usize, admission: AdmissionOrder) -> Vec<Job> {
        match admission {
            AdmissionOrder::Fifo => {
                let take = state.pending.len().min(max_batch);
                state.pending.drain(..take).collect()
            }
            AdmissionOrder::EarliestDeadlineFirst => {
                let mut jobs: Vec<Job> = state.pending.drain(..).collect();
                jobs.sort_by_key(|job| (job.absolute_deadline(), job.seq));
                // `None < Some(_)` for Option keys, but "no deadline" must sort *last*; split
                // and re-append instead of fighting the ordering.
                let (dated, dateless): (Vec<Job>, Vec<Job>) = jobs
                    .into_iter()
                    .partition(|job| job.absolute_deadline().is_some());
                let mut ordered = dated;
                ordered.extend(dateless);
                let keep: Vec<Job> = ordered.split_off(max_batch.min(ordered.len()));
                for job in keep {
                    // Re-queue in arrival order so FIFO fairness inside the remainder survives.
                    let at = state
                        .pending
                        .iter()
                        .position(|queued| queued.seq > job.seq)
                        .unwrap_or(state.pending.len());
                    state.pending.insert(at, job);
                }
                ordered
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_workloads::wire::RequestBody;
    use std::sync::mpsc::sync_channel;
    use std::sync::Arc;

    fn request(deadline_us: u64) -> RequestFrame {
        RequestFrame {
            request_id: deadline_us,
            tenant: 0,
            deadline_us,
            scene: "wall".into(),
            body: RequestBody::Shutdown,
        }
    }

    fn submit(queue: &AdmissionQueue, deadline_us: u64) {
        let (tx, _rx) = sync_channel(1);
        // Keep the receiver alive long enough for the test by leaking it into the channel pair;
        // the queue itself never sends.
        std::mem::forget(_rx);
        assert!(queue.submit(request(deadline_us), tx));
    }

    #[test]
    fn flush_on_size_releases_exactly_max_batch() {
        let queue = AdmissionQueue::new();
        for _ in 0..5 {
            submit(&queue, 0);
        }
        let batch = queue
            .next_batch(3, 1_000_000, AdmissionOrder::Fifo)
            .unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(queue.depth(), 2);
    }

    #[test]
    fn edf_selection_orders_by_deadline_and_requeues_the_rest_in_arrival_order() {
        let queue = AdmissionQueue::new();
        submit(&queue, 0); // seq 0: no deadline — sorts last
        submit(&queue, 90_000_000); // seq 1: loose deadline
        submit(&queue, 1_000_000); // seq 2: tight deadline — first
        submit(&queue, 50_000_000); // seq 3
        let batch = queue
            .next_batch(2, 1_000_000_000, AdmissionOrder::EarliestDeadlineFirst)
            .unwrap();
        let seqs: Vec<u64> = batch.iter().map(|j| j.seq).collect();
        assert_eq!(seqs, vec![2, 3], "tightest deadlines first");
        // The remainder keeps arrival order.
        let rest = queue
            .next_batch(4, 0, AdmissionOrder::EarliestDeadlineFirst)
            .unwrap();
        let seqs: Vec<u64> = rest.iter().map(|j| j.seq).collect();
        assert_eq!(seqs, vec![1, 0], "dated before dateless");
    }

    #[test]
    fn flush_on_deadline_releases_a_short_batch() {
        let queue = Arc::new(AdmissionQueue::new());
        submit(&queue, 0);
        let start = Instant::now();
        let batch = queue.next_batch(64, 20_000, AdmissionOrder::Fifo).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(
            start.elapsed() >= Duration::from_micros(15_000),
            "the flush window must actually be waited out"
        );
    }

    #[test]
    fn a_jobs_own_deadline_tightens_the_flush_window() {
        let queue = AdmissionQueue::new();
        submit(&queue, 5_000); // 5 ms deadline, far below the 10 s flush window
        let start = Instant::now();
        let batch = queue
            .next_batch(64, 10_000_000, AdmissionOrder::Fifo)
            .unwrap();
        assert_eq!(batch.len(), 1);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the deadline-storm path must flush long before the window"
        );
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let queue = AdmissionQueue::new();
        for _ in 0..3 {
            submit(&queue, 0);
        }
        queue.close();
        let (tx, _rx) = sync_channel(1);
        assert!(!queue.submit(request(0), tx), "closed queues admit nothing");
        let drained = queue.next_batch(2, 0, AdmissionOrder::Fifo).unwrap();
        assert_eq!(drained.len(), 2);
        let drained = queue.next_batch(2, 0, AdmissionOrder::Fifo).unwrap();
        assert_eq!(drained.len(), 1);
        assert!(queue.next_batch(2, 0, AdmissionOrder::Fifo).is_none());
    }

    #[test]
    fn remaining_deadline_clamps_and_signals_none() {
        let (tx, _rx) = sync_channel(1);
        let job = Job {
            request: request(0),
            enqueued_at: Instant::now(),
            seq: 0,
            responder: tx,
        };
        assert_eq!(job.remaining_deadline_us(Instant::now()), 0, "0 = none");
        let (tx, _rx2) = sync_channel(1);
        let job = Job {
            request: request(10),
            enqueued_at: Instant::now() - Duration::from_secs(1),
            seq: 0,
            responder: tx,
        };
        assert_eq!(
            job.remaining_deadline_us(Instant::now()),
            1,
            "expired deadlines clamp to the most-urgent key"
        );
    }
}
