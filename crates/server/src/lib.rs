//! # rayflex-server
//!
//! An online query service over the RayFlex RT-unit substrate: a thread-per-connection TCP
//! front end (hand-rolled on [`std::net`], no async runtime) speaking the length-prefixed
//! binary protocol of [`rayflex_workloads::wire`], with a condvar-based admission queue that
//! coalesces concurrent trace / any-hit / kNN / radius requests into shared
//! [`FusedScheduler`](rayflex_rtunit::FusedScheduler) batches — the paper's fused multi-query
//! datapath turned into a serving discipline.
//!
//! The batcher flushes on batch size (`max_batch`), on the oldest request's age (`flush_us`),
//! or on a request's own deadline, whichever comes first; batch selection and pass-segment
//! admission follow [`AdmissionOrder`](rayflex_rtunit::AdmissionOrder) (earliest-deadline-first
//! by default).  Per-stream pass budgets (`beat_budget`) keep one tenant from flooding shared
//! passes.  Because fused batching is output-invariant — the repo's tentpole invariant —
//! a batched response is bit-identical to the same request served alone or issued directly
//! against the library.
//!
//! # Example
//!
//! ```no_run
//! use rayflex_server::{ServerConfig, ServerHandle};
//!
//! let server = ServerHandle::spawn(ServerConfig::default()).expect("bind");
//! println!("listening on {}", server.local_addr());
//! let report = server.shutdown();
//! assert_eq!(report.served, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod exec;
pub mod queue;
pub mod registry;
pub mod server;

pub use exec::{error_code, BatchExecutor, ExecConfig};
pub use queue::{AdmissionQueue, Job};
pub use registry::{Registry, TargetKind};
pub use server::{DrainReport, ServerConfig, ServerHandle};
