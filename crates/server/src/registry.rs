//! The preloaded workload registry: every named scene, kNN dataset and point cloud of the
//! shared [`catalog`], built and validated once at server
//! startup so the hot serving path never pays admission-time validation (the
//! [`SceneValidator`] contract: validate at scene admission, trace with the plain entry points
//! thereafter).

use std::collections::HashMap;

use rayflex_core::PipelineConfig;
use rayflex_rtunit::{Bvh4, HierarchicalSearch, QueryError, Scene, SceneValidator};
use rayflex_workloads::wire::catalog;

/// What a request's `scene` name resolved to — used to distinguish "unknown name" from "known
/// name, wrong query kind" in error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// A triangle scene (trace / any-hit).
    Scene,
    /// A vector dataset (kNN).
    Dataset,
    /// A point cloud (radius).
    Cloud,
}

/// The server's preloaded workloads.  Scenes are immutable after startup; the point clouds'
/// [`HierarchicalSearch`] engines carry mutable statistics, so they live with the executor and
/// the registry only stores their build inputs.
#[derive(Debug)]
pub struct Registry {
    scenes: HashMap<String, Scene>,
    datasets: HashMap<String, Vec<Vec<f32>>>,
    clouds: HashMap<String, Vec<rayflex_geometry::Vec3>>,
}

impl Registry {
    /// Builds and validates every catalog entry.
    ///
    /// # Errors
    ///
    /// The first [`QueryError::InvalidScene`] if a catalog scene fails validation (a bug in the
    /// catalog, not in a client — the server refuses to start rather than serving a scene whose
    /// traversal invariants do not hold).
    pub fn preload() -> Result<Self, QueryError> {
        let mut scenes = HashMap::new();
        for name in catalog::SCENES {
            let triangles = catalog::scene_triangles(name).unwrap_or_default();
            let scene = Scene::from_parts(Bvh4::build(&triangles), triangles);
            SceneValidator::validate_scene(&scene)?;
            scenes.insert(name.to_string(), scene);
        }
        let mut datasets = HashMap::new();
        for name in catalog::DATASETS {
            datasets.insert(
                name.to_string(),
                catalog::dataset_vectors(name).unwrap_or_default(),
            );
        }
        let mut clouds = HashMap::new();
        for name in catalog::CLOUDS {
            clouds.insert(
                name.to_string(),
                catalog::cloud_points(name).unwrap_or_default(),
            );
        }
        Ok(Registry {
            scenes,
            datasets,
            clouds,
        })
    }

    /// The named triangle scene, if preloaded.
    #[must_use]
    pub fn scene(&self, name: &str) -> Option<&Scene> {
        self.scenes.get(name)
    }

    /// The named kNN dataset, if preloaded.
    #[must_use]
    pub fn dataset(&self, name: &str) -> Option<&Vec<Vec<f32>>> {
        self.datasets.get(name)
    }

    /// What `name` resolves to, across all three namespaces.
    #[must_use]
    pub fn kind_of(&self, name: &str) -> Option<TargetKind> {
        if self.scenes.contains_key(name) {
            Some(TargetKind::Scene)
        } else if self.datasets.contains_key(name) {
            Some(TargetKind::Dataset)
        } else if self.clouds.contains_key(name) {
            Some(TargetKind::Cloud)
        } else {
            None
        }
    }

    /// Builds the radius-query engines over every preloaded cloud (consumedly — each
    /// [`HierarchicalSearch`] owns its points).  Called once by the executor at startup.
    #[must_use]
    pub fn build_cloud_engines(&self) -> HashMap<String, HierarchicalSearch> {
        self.clouds
            .iter()
            .map(|(name, points)| {
                (
                    name.clone(),
                    HierarchicalSearch::build(
                        points.clone(),
                        0.05,
                        PipelineConfig::extended_unified(),
                    ),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_whole_catalog_preloads_and_resolves() {
        let registry = Registry::preload().expect("catalog scenes must validate");
        for name in catalog::SCENES {
            assert!(registry.scene(name).is_some(), "{name}");
            assert_eq!(registry.kind_of(name), Some(TargetKind::Scene));
        }
        for name in catalog::DATASETS {
            assert!(registry.dataset(name).is_some(), "{name}");
            assert_eq!(registry.kind_of(name), Some(TargetKind::Dataset));
        }
        for name in catalog::CLOUDS {
            assert_eq!(registry.kind_of(name), Some(TargetKind::Cloud));
        }
        assert_eq!(registry.kind_of("no-such-scene"), None);
        assert_eq!(registry.build_cloud_engines().len(), catalog::CLOUDS.len());
    }
}
