//! The `rayflex-server` binary: parses the batching knobs, preloads the catalog, prints the
//! bound address (load generators parse the `listening on` line when spawning with an
//! ephemeral port) and serves until a client sends a shutdown frame, then drains and exits 0.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use rayflex_rtunit::AdmissionOrder;
use rayflex_server::{ServerConfig, ServerHandle};

const USAGE: &str = "usage: rayflex-server [--addr HOST:PORT] [--max-batch N] [--flush-us N] \
                     [--beat-budget N] [--max-batch-beats N] [--admission fifo|edf] \
                     [--simd-lanes N]";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--max-batch" => {
                config.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?;
            }
            "--flush-us" => {
                config.flush_us = value("--flush-us")?
                    .parse()
                    .map_err(|e| format!("--flush-us: {e}"))?;
            }
            "--beat-budget" => {
                config.beat_budget = value("--beat-budget")?
                    .parse()
                    .map_err(|e| format!("--beat-budget: {e}"))?;
            }
            "--max-batch-beats" => {
                config.max_batch_beats = value("--max-batch-beats")?
                    .parse()
                    .map_err(|e| format!("--max-batch-beats: {e}"))?;
            }
            "--admission" => {
                let name = value("--admission")?;
                config.admission = AdmissionOrder::parse(&name)
                    .ok_or_else(|| format!("unknown admission order {name:?}"))?;
            }
            "--simd-lanes" => {
                config.simd_lanes = value("--simd-lanes")?
                    .parse()
                    .map_err(|e| format!("--simd-lanes: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let server = match ServerHandle::spawn(config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("rayflex-server: {error}");
            return ExitCode::FAILURE;
        }
    };
    // Explicit flush: stdout is block-buffered under a pipe, and load generators spawn this
    // binary and parse the line before sending traffic.
    println!("listening on {}", server.local_addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    let report = server.wait();
    println!(
        "drained: served={} batches={} connections={} malformed={} lanes_busy={} lane_slots={}",
        report.served,
        report.batches,
        report.connections,
        report.malformed,
        report.lanes_busy,
        report.lane_slots
    );
    ExitCode::SUCCESS
}
