//! The TCP front end: a thread-per-connection listener hand-rolled on [`std::net`] (no async
//! runtime), one executor thread running the dynamic batcher, and a drain-aware shutdown
//! protocol.
//!
//! Each connection thread reads length-prefixed frames with a *resumable* buffered reader —
//! read timeouts only poll the shutdown flag, they never lose frame sync — decodes them, and
//! submits jobs to the shared [`AdmissionQueue`] with a private rendezvous channel for the
//! response.  Malformed-but-complete frames are answered with a structured
//! [`code::INVALID_REQUEST`] error and the connection lives on; only transport-level failures
//! (EOF, oversized declarations, I/O errors) end a connection.  On shutdown the queue closes,
//! the executor drains every admitted job, and every thread is joined before
//! [`ServerHandle::shutdown`] returns its [`DrainReport`].

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rayflex_rtunit::AdmissionOrder;
use rayflex_workloads::wire::{
    code, decode_request, encode_response, RequestBody, ResponseBody, ResponseFrame, WireError,
    MAX_FRAME_BYTES,
};

use crate::exec::{BatchExecutor, ExecConfig};
use crate::queue::AdmissionQueue;
use crate::registry::Registry;

/// How long a connection thread blocks in `read` before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);
/// How long a connection thread waits for the executor before giving up on a response.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// Server tuning knobs; the defaults serve a mixed interactive load.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Flush the admission queue as soon as this many requests are pending.
    pub max_batch: usize,
    /// Flush the admission queue once the oldest pending request has waited this long, even if
    /// the batch is short (microseconds).
    pub flush_us: u64,
    /// Per-stream per-pass beat budget inside shared fused passes (`0` = unlimited).
    pub beat_budget: usize,
    /// Total beat cap per batch run (`0` = uncapped).
    pub max_batch_beats: u64,
    /// Batch selection and pass-segment admission order.
    pub admission: AdmissionOrder,
    /// SIMD lane width of the executor's datapath (outputs are width-invariant).
    pub simd_lanes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_batch: 32,
            flush_us: 200,
            beat_budget: 0,
            max_batch_beats: 0,
            admission: AdmissionOrder::EarliestDeadlineFirst,
            simd_lanes: 16,
        }
    }
}

/// What the server did over its lifetime, returned by [`ServerHandle::shutdown`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests answered (including structured errors).
    pub served: u64,
    /// Batches the executor ran.
    pub batches: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Complete-but-malformed frames answered with a structured error.
    pub malformed: u64,
    /// SIMD lanes that carried a live beat across every batch the executor ran — the modeled
    /// device utilisation numerator (see
    /// [`rayflex_core::BeatMix::simd_lane_occupancy`]).
    pub lanes_busy: u64,
    /// Lane-slots dispatched across every kernel issue (each issue charged its full width) —
    /// the modeled device utilisation denominator.  `lanes_busy / lane_slots` is the fraction
    /// of the modeled RT-unit's lanes that did useful work; coalesced batches fill lanes that
    /// batch-size-1 dispatch leaves idle.
    pub lane_slots: u64,
}

impl DrainReport {
    /// `lanes_busy / lane_slots`: the modeled RT-unit lane occupancy over the server's
    /// lifetime, `0.0` if no lane kernel ever issued.
    #[must_use]
    pub fn lane_occupancy(&self) -> f64 {
        if self.lane_slots == 0 {
            0.0
        } else {
            self.lanes_busy as f64 / self.lane_slots as f64
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    batches: AtomicU64,
    connections: AtomicU64,
    malformed: AtomicU64,
    lanes_busy: AtomicU64,
    lane_slots: AtomicU64,
}

impl Counters {
    fn report(&self) -> DrainReport {
        DrainReport {
            served: self.served.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            lanes_busy: self.lanes_busy.load(Ordering::Relaxed),
            lane_slots: self.lane_slots.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    queue: AdmissionQueue,
    shutting_down: AtomicBool,
    counters: Counters,
    /// The bound listen address — a shutdown initiated from a connection thread dials it once
    /// to wake the accept loop out of `incoming()`.
    addr: SocketAddr,
}

/// A running server: accept thread + executor thread + one thread per live connection.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    executor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("shutting_down", &self.shutting_down)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// Preloads the registry, binds the listener and spawns the serving threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; registry validation failures surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
        let registry = Registry::preload()
            .map_err(|error| io::Error::new(ErrorKind::InvalidData, error.to_string()))?;
        let registry = Arc::new(registry);
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(),
            shutting_down: AtomicBool::new(false),
            counters: Counters::default(),
            addr,
        });

        let exec_config = ExecConfig {
            beat_budget: config.beat_budget,
            max_batch_beats: config.max_batch_beats,
            admission: config.admission,
            simd_lanes: config.simd_lanes,
        };
        let executor = {
            let shared = Arc::clone(&shared);
            let registry = Arc::clone(&registry);
            let max_batch = config.max_batch.max(1);
            let flush_us = config.flush_us;
            let admission = config.admission;
            std::thread::Builder::new()
                .name("rayflex-executor".into())
                .spawn(move || {
                    let mut executor = BatchExecutor::new(registry, exec_config);
                    let mut last_usage = (0u64, 0u64);
                    while let Some(batch) = shared.queue.next_batch(max_batch, flush_us, admission)
                    {
                        let responses = executor.execute(&batch);
                        // Publish the datapath's lane counters as deltas: a panic-triggered
                        // rebuild resets the cumulative mix, and saturating deltas simply skip
                        // that batch instead of wrapping.
                        let usage = executor.lane_usage();
                        shared
                            .counters
                            .lanes_busy
                            .fetch_add(usage.0.saturating_sub(last_usage.0), Ordering::Relaxed);
                        shared
                            .counters
                            .lane_slots
                            .fetch_add(usage.1.saturating_sub(last_usage.1), Ordering::Relaxed);
                        last_usage = usage;
                        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
                        shared
                            .counters
                            .served
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                        for (job, response) in batch.into_iter().zip(responses) {
                            // A disconnected client is not an error — drop the response.
                            let _ = job.responder.send(response);
                        }
                    }
                })?
        };

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rayflex-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            executor: Some(executor),
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates shutdown, drains every admitted request, joins every thread and reports.
    pub fn shutdown(mut self) -> DrainReport {
        self.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(executor) = self.executor.take() {
            let _ = executor.join();
        }
        self.shared.counters.report()
    }

    /// Blocks until the server stops on its own (a client sent a shutdown frame).
    pub fn wait(mut self) -> DrainReport {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(executor) = self.executor.take() {
            let _ = executor.join();
        }
        self.shared.counters.report()
    }

    fn begin_shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        // Unblock the accept loop with a throwaway connection; it re-checks the flag on wake.
        let _ = TcpStream::connect(self.addr);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("rayflex-conn".into())
            .spawn(move || serve_connection(stream, &shared))
        {
            connections.push(handle);
        }
        // Opportunistically reap finished connection threads so the vec stays bounded.
        connections.retain(|handle| !handle.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// A buffered frame reader that survives read timeouts without losing frame sync: bytes
/// accumulate across `fill` calls, and a frame is only consumed once its full declared length
/// has arrived.
struct FrameReader {
    buffer: Vec<u8>,
}

enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Nothing complete yet (timeout or short read) — poll again.
    Pending,
    /// The peer closed the connection.
    Eof,
    /// The peer declared a frame larger than the protocol allows.
    Oversized(u64),
}

impl FrameReader {
    fn new() -> Self {
        FrameReader { buffer: Vec::new() }
    }

    fn poll(&mut self, stream: &mut TcpStream) -> io::Result<FrameEvent> {
        if let Some(event) = self.take_frame() {
            return Ok(event);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => Ok(FrameEvent::Eof),
            Ok(n) => {
                self.buffer.extend_from_slice(&chunk[..n]);
                Ok(self.take_frame().unwrap_or(FrameEvent::Pending))
            }
            Err(error)
                if error.kind() == ErrorKind::WouldBlock || error.kind() == ErrorKind::TimedOut =>
            {
                Ok(FrameEvent::Pending)
            }
            Err(error) => Err(error),
        }
    }

    fn take_frame(&mut self) -> Option<FrameEvent> {
        if self.buffer.len() < 4 {
            return None;
        }
        let declared = u32::from_le_bytes([
            self.buffer[0],
            self.buffer[1],
            self.buffer[2],
            self.buffer[3],
        ]) as usize;
        if declared > MAX_FRAME_BYTES {
            return Some(FrameEvent::Oversized(declared as u64));
        }
        if self.buffer.len() < 4 + declared {
            return None;
        }
        let payload = self.buffer[4..4 + declared].to_vec();
        self.buffer.drain(..4 + declared);
        Some(FrameEvent::Frame(payload))
    }
}

fn write_response(stream: &mut TcpStream, response: &ResponseFrame) -> io::Result<()> {
    let payload = encode_response(response);
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    stream.write_all(&frame)
}

fn error_response(request_id: u64, code: u8, reason: impl Into<String>) -> ResponseFrame {
    ResponseFrame {
        request_id,
        body: ResponseBody::Error {
            code,
            reason: reason.into(),
        },
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut reader = FrameReader::new();
    while let Ok(event) = reader.poll(&mut stream) {
        let payload = match event {
            FrameEvent::Frame(payload) => payload,
            FrameEvent::Pending => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            FrameEvent::Eof => break,
            FrameEvent::Oversized(declared) => {
                let _ = write_response(
                    &mut stream,
                    &error_response(
                        0,
                        code::INVALID_REQUEST,
                        format!("declared frame of {declared} bytes exceeds the protocol limit"),
                    ),
                );
                break;
            }
        };
        let request = match decode_request(&payload) {
            Ok(request) => request,
            Err(error) => {
                // A complete-but-malformed frame: answer structurally, keep the connection.
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                let response = match error {
                    WireError::Oversized { declared } => error_response(
                        0,
                        code::INVALID_REQUEST,
                        format!("oversized body of {declared} bytes"),
                    ),
                    other => error_response(0, code::INVALID_REQUEST, other.to_string()),
                };
                if write_response(&mut stream, &response).is_err() {
                    break;
                }
                continue;
            }
        };

        if matches!(request.body, RequestBody::Shutdown) {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                &mut stream,
                &ResponseFrame {
                    request_id: request.request_id,
                    body: ResponseBody::ShutdownAck,
                },
            );
            shared.shutting_down.store(true, Ordering::SeqCst);
            shared.queue.close();
            // Wake the accept loop so `wait()` observes the stop without an external nudge.
            let _ = TcpStream::connect(shared.addr);
            break;
        }

        let request_id = request.request_id;
        let (responder, response_rx) = sync_channel(1);
        if !shared.queue.submit(request, responder) {
            let _ = write_response(
                &mut stream,
                &error_response(request_id, code::SHUTTING_DOWN, "server is draining"),
            );
            break;
        }
        match response_rx.recv_timeout(RESPONSE_TIMEOUT) {
            Ok(response) => {
                if write_response(&mut stream, &response).is_err() {
                    break;
                }
            }
            Err(_) => {
                let _ = write_response(
                    &mut stream,
                    &error_response(request_id, code::INTERNAL, "executor response timed out"),
                );
                break;
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || self.executor.is_some() {
            self.shared.shutting_down.store(true, Ordering::SeqCst);
            self.shared.queue.close();
            let _ = TcpStream::connect(self.addr);
            if let Some(accept) = self.accept.take() {
                let _ = accept.join();
            }
            if let Some(executor) = self.executor.take() {
                let _ = executor.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_workloads::wire::{catalog, RequestFrame, WireClient};

    fn trace_request(request_id: u64, rays: usize) -> RequestFrame {
        RequestFrame {
            request_id,
            tenant: 0,
            deadline_us: 0,
            scene: "wall".into(),
            body: RequestBody::Trace {
                rays: catalog::sample_rays("wall", request_id, rays).expect("catalog rays"),
            },
        }
    }

    #[test]
    fn serves_trace_requests_and_drains_cleanly() {
        let server = ServerHandle::spawn(ServerConfig {
            max_batch: 4,
            flush_us: 500,
            ..ServerConfig::default()
        })
        .expect("server spawns");
        let addr = server.local_addr().to_string();

        let mut client = WireClient::connect(&addr).expect("client connects");
        for id in 1..=3u64 {
            let response = client
                .request(&trace_request(id, 4))
                .expect("request round-trips");
            assert_eq!(response.request_id, id);
            assert!(
                matches!(response.body, ResponseBody::Hits { .. }),
                "expected hits, got {:?}",
                response.body
            );
        }
        drop(client);

        let report = server.shutdown();
        assert_eq!(report.served, 3);
        assert!(report.batches >= 1);
        assert_eq!(report.connections, 1);
    }

    #[test]
    fn malformed_complete_frames_get_structured_errors_and_the_connection_survives() {
        let server = ServerHandle::spawn(ServerConfig::default()).expect("server spawns");
        let addr = server.local_addr().to_string();

        let mut client = WireClient::connect(&addr).expect("client connects");
        // A complete frame whose payload is garbage.
        let garbage = vec![0xFFu8; 16];
        let mut frame = (garbage.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&garbage);
        client
            .stream_mut()
            .write_all(&frame)
            .expect("garbage frame writes");
        let response = client.receive().expect("a structured error comes back");
        assert!(
            matches!(
                response.body,
                ResponseBody::Error {
                    code: code::INVALID_REQUEST,
                    ..
                }
            ),
            "got {:?}",
            response.body
        );

        // The connection is still usable for a valid request.
        let response = client
            .request(&trace_request(7, 2))
            .expect("valid request still served");
        assert_eq!(response.request_id, 7);
        let report = server.shutdown();
        assert_eq!(report.malformed, 1);
    }

    #[test]
    fn a_shutdown_frame_stops_the_server_and_wait_reports() {
        let server = ServerHandle::spawn(ServerConfig::default()).expect("server spawns");
        let addr = server.local_addr().to_string();
        let mut client = WireClient::connect(&addr).expect("client connects");
        let response = client
            .request(&RequestFrame {
                request_id: 42,
                tenant: 0,
                deadline_us: 0,
                scene: String::new(),
                body: RequestBody::Shutdown,
            })
            .expect("shutdown acks");
        assert!(matches!(response.body, ResponseBody::ShutdownAck));
        let report = server.wait();
        assert_eq!(report.served, 1);
    }
}
