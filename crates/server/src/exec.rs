//! The batch executor — the single thread that turns an admitted batch of heterogeneous
//! requests into one shared [`FusedScheduler`] run.  Trace, any-hit and kNN-distance requests
//! become per-request [`FusedStream`]s interleaved beat-by-beat on one
//! [`RayFlexDatapath`]; radius queries run per-cloud through the preloaded
//! [`HierarchicalSearch`] engines under the same `ExecPolicy` knobs.
//!
//! The fused-batching contract is the repo's tentpole invariant: which requests share a batch
//! changes pass structure and wall-clock only, never a request's outputs or statistics — so a
//! batched server response is bit-identical to the same request served alone, or issued
//! directly against the library.  Every failure maps to a structured
//! [`ResponseBody::Error`]; a panic anywhere in batch execution is caught, answered with
//! [`code::INTERNAL`], and the datapath state rebuilt — a worker is never lost to one bad
//! batch.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use rayflex_core::{PipelineConfig, RayFlexDatapath};
use rayflex_geometry::Vec3;
use rayflex_rtunit::{
    select_k_nearest, AdmissionOrder, DistanceStream, FusedScheduler, FusedStream,
    HierarchicalSearch, KnnMetric, Neighbor, QueryError, QueryOutcome, SceneValidator,
    TraversalStream,
};
use rayflex_workloads::wire::{
    code, RequestBody, ResponseBody, ResponseFrame, WireHit, WireNeighbor,
};

use crate::queue::Job;
use crate::registry::{Registry, TargetKind};

/// The executor's scheduling knobs, frozen at server startup.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Per-stream per-pass beat budget for the fused scheduler (`0` = unlimited) — the
    /// per-tenant QoS lever: no stream may flood a shared pass past this many beats.
    pub beat_budget: usize,
    /// Total beat cap per batch run (`0` = uncapped); crossing it cancels cooperatively at a
    /// pass boundary and answers unfinished requests with a partial or a structured error.
    pub max_batch_beats: u64,
    /// Segment admission order inside shared passes (and batch selection order upstream).
    pub admission: AdmissionOrder,
    /// SIMD lane width of the datapath's bulk interfaces.  Responses are bit-identical at
    /// every width; wide lanes are what dynamic batching feeds — a lone 4-ray request cannot
    /// fill a 16-lane pass, a coalesced batch of strangers can.
    pub simd_lanes: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            beat_budget: 0,
            max_batch_beats: 0,
            admission: AdmissionOrder::EarliestDeadlineFirst,
            simd_lanes: 16,
        }
    }
}

/// Maps a library [`QueryError`] to its wire error code.
#[must_use]
pub fn error_code(error: &QueryError) -> u8 {
    match error {
        QueryError::InvalidRequest { .. } => code::INVALID_REQUEST,
        QueryError::InvalidScene { .. } => code::INVALID_SCENE,
        QueryError::DeadlineExceeded { .. } => code::DEADLINE_EXCEEDED,
        QueryError::BudgetExhausted { .. } => code::BUDGET_EXHAUSTED,
        QueryError::ShardPanicked { .. } => code::SHARD_PANICKED,
    }
}

fn error_body(error: &QueryError) -> ResponseBody {
    ResponseBody::Error {
        code: error_code(error),
        reason: error.to_string(),
    }
}

fn reject(code: u8, reason: impl Into<String>) -> ResponseBody {
    ResponseBody::Error {
        code,
        reason: reason.into(),
    }
}

/// What one job contributes to the batch plan after validation.
enum Plan {
    /// Index of the job a fused stream serves, plus whether it is a kNN stream (`Some(k)`).
    Stream { knn_k: Option<u32> },
    /// A radius query, grouped per cloud after the fused run.
    Radius {
        cloud: String,
        center: Vec3,
        radius: f32,
    },
    /// Already answered (validation reject or shutdown acknowledgement).
    Done(ResponseBody),
}

/// One fused stream of the mixed batch, tagged with the job it serves.
enum BatchStream<'a> {
    Trace {
        stream: TraversalStream<'a>,
        job: usize,
        rays: usize,
    },
    Distance {
        stream: DistanceStream<'a, Vec<f32>>,
        job: usize,
        k: u32,
    },
}

impl BatchStream<'_> {
    fn job(&self) -> usize {
        match self {
            BatchStream::Trace { job, .. } | BatchStream::Distance { job, .. } => *job,
        }
    }

    fn as_dyn(&mut self) -> &mut dyn FusedStream {
        match self {
            BatchStream::Trace { stream, .. } => stream,
            BatchStream::Distance { stream, .. } => stream,
        }
    }
}

/// The single-threaded batch executor.  Owns the datapath, the fused scheduler and the
/// per-cloud radius engines; borrows the immutable registry.
pub struct BatchExecutor {
    registry: Arc<Registry>,
    datapath: RayFlexDatapath,
    fused: FusedScheduler,
    clouds: HashMap<String, HierarchicalSearch>,
    config: ExecConfig,
}

impl std::fmt::Debug for BatchExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchExecutor")
            .field("config", &self.config)
            .field("clouds", &self.clouds.len())
            .finish_non_exhaustive()
    }
}

impl BatchExecutor {
    /// Builds the executor over a preloaded registry.
    #[must_use]
    pub fn new(registry: Arc<Registry>, config: ExecConfig) -> Self {
        let clouds = registry.build_cloud_engines();
        let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
        datapath.set_simd_lanes(config.simd_lanes);
        BatchExecutor {
            registry,
            datapath,
            fused: FusedScheduler::new(),
            clouds,
            config,
        }
    }

    /// Cumulative `(busy, slots)` SIMD lane counters of the executor's datapath — the modeled
    /// device utilisation ([`rayflex_core::BeatMix::simd_lane_occupancy`]) the server's drain
    /// report exposes.  Busy lanes count live beats; slots charge every kernel issue its full
    /// dispatch width, so `busy / slots` is the fraction of the modeled RT-unit's lanes that
    /// did useful work.  Resets if a panic forces a datapath rebuild.
    #[must_use]
    pub fn lane_usage(&self) -> (u64, u64) {
        let mix = self.datapath.beat_mix();
        (mix.simd_lanes_busy(), mix.simd_lane_slots())
    }

    /// Executes one admitted batch and returns one response per job, aligned by index.
    /// Panics anywhere inside are converted to [`code::INTERNAL`] errors for every job of the
    /// batch, and the executor's datapath state is rebuilt so the next batch starts clean.
    pub fn execute(&mut self, jobs: &[Job]) -> Vec<ResponseFrame> {
        let bodies = match catch_unwind(AssertUnwindSafe(|| self.execute_inner(jobs))) {
            Ok(bodies) => bodies,
            Err(_) => {
                // The scheduler/datapath may be mid-flight; rebuild rather than reason about
                // the wreckage.  Rare path — correctness over cost.
                self.datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
                self.datapath.set_simd_lanes(self.config.simd_lanes);
                self.fused = FusedScheduler::new();
                self.clouds = self.registry.build_cloud_engines();
                jobs.iter()
                    .map(|_| reject(code::INTERNAL, "batch execution panicked"))
                    .collect()
            }
        };
        jobs.iter()
            .zip(bodies)
            .map(|(job, body)| ResponseFrame {
                request_id: job.request.request_id,
                body,
            })
            .collect()
    }

    fn execute_inner(&mut self, jobs: &[Job]) -> Vec<ResponseBody> {
        let plans: Vec<Plan> = jobs.iter().map(|job| self.plan(job)).collect();
        let mut bodies: Vec<Option<ResponseBody>> = plans
            .iter()
            .map(|plan| match plan {
                Plan::Done(body) => Some(body.clone()),
                _ => None,
            })
            .collect();

        self.run_fused(jobs, &plans, &mut bodies);
        self.run_radius(&plans, &mut bodies);

        bodies
            .into_iter()
            .map(|body| body.unwrap_or_else(|| reject(code::INTERNAL, "request fell through")))
            .collect()
    }

    /// Validates one request against the registry and classifies its execution path.
    fn plan(&self, job: &Job) -> Plan {
        let request = &job.request;
        if matches!(request.body, RequestBody::Shutdown) {
            return Plan::Done(ResponseBody::ShutdownAck);
        }
        let Some(kind) = self.registry.kind_of(&request.scene) else {
            return Plan::Done(reject(
                code::UNKNOWN_SCENE,
                format!("no preloaded target named {:?}", request.scene),
            ));
        };
        match (&request.body, kind) {
            (RequestBody::Trace { rays } | RequestBody::AnyHit { rays }, TargetKind::Scene) => {
                match SceneValidator::validate_rays(rays, "request") {
                    Ok(()) => Plan::Stream { knn_k: None },
                    Err(error) => Plan::Done(error_body(&error)),
                }
            }
            (RequestBody::Knn { k, query }, TargetKind::Dataset) => {
                let dimension = self
                    .registry
                    .dataset(&request.scene)
                    .and_then(|dataset| dataset.first())
                    .map_or(0, Vec::len);
                if query.len() != dimension {
                    Plan::Done(reject(
                        code::INVALID_REQUEST,
                        format!(
                            "query dimension {} does not match dataset dimension {dimension}",
                            query.len()
                        ),
                    ))
                } else if query.iter().any(|value| !value.is_finite()) {
                    Plan::Done(reject(code::INVALID_REQUEST, "non-finite query component"))
                } else {
                    Plan::Stream { knn_k: Some(*k) }
                }
            }
            (RequestBody::Radius { center, radius }, TargetKind::Cloud) => {
                if center.iter().any(|value| !value.is_finite()) {
                    Plan::Done(reject(code::INVALID_REQUEST, "non-finite query centre"))
                } else if !radius.is_finite() || *radius < 0.0 {
                    Plan::Done(reject(
                        code::INVALID_REQUEST,
                        format!("invalid radius {radius}"),
                    ))
                } else {
                    Plan::Radius {
                        cloud: request.scene.clone(),
                        center: Vec3::new(center[0], center[1], center[2]),
                        radius: *radius,
                    }
                }
            }
            (_, kind) => Plan::Done(reject(
                code::UNSUPPORTED,
                format!(
                    "target {:?} is a {kind:?}, wrong kind for this query",
                    request.scene
                ),
            )),
        }
    }

    /// Runs every trace / any-hit / kNN request of the batch as one shared fused run.
    fn run_fused(&mut self, jobs: &[Job], plans: &[Plan], bodies: &mut [Option<ResponseBody>]) {
        let mut streams: Vec<BatchStream<'_>> = Vec::new();
        for (index, plan) in plans.iter().enumerate() {
            let Plan::Stream { knn_k } = plan else {
                continue;
            };
            let request = &jobs[index].request;
            match (&request.body, knn_k) {
                (RequestBody::Trace { rays }, None) => {
                    if let Some(scene) = self.registry.scene(&request.scene) {
                        streams.push(BatchStream::Trace {
                            stream: TraversalStream::closest_hit(scene, rays),
                            job: index,
                            rays: rays.len(),
                        });
                    }
                }
                (RequestBody::AnyHit { rays }, None) => {
                    if let Some(scene) = self.registry.scene(&request.scene) {
                        streams.push(BatchStream::Trace {
                            stream: TraversalStream::any_hit(scene, rays),
                            job: index,
                            rays: rays.len(),
                        });
                    }
                }
                (RequestBody::Knn { query, .. }, Some(k)) => {
                    if let Some(dataset) = self.registry.dataset(&request.scene) {
                        streams.push(BatchStream::Distance {
                            stream: DistanceStream::new(query, dataset, KnnMetric::Euclidean),
                            job: index,
                            k: *k,
                        });
                    }
                }
                _ => {}
            }
        }
        if streams.is_empty() {
            return;
        }

        let now = Instant::now();
        let deadlines: Vec<u64> = streams
            .iter()
            .map(|stream| jobs[stream.job()].remaining_deadline_us(now))
            .collect();
        self.fused.set_beat_budget(self.config.beat_budget);
        self.fused.set_admission_order(self.config.admission);
        self.fused.set_stream_deadlines(&deadlines);
        {
            let mut handles: Vec<&mut dyn FusedStream> =
                streams.iter_mut().map(BatchStream::as_dyn).collect();
            self.fused.run_capped(
                &mut self.datapath,
                &mut handles,
                self.config.max_batch_beats,
            );
        }

        for entry in streams {
            match entry {
                BatchStream::Trace { stream, job, rays } => {
                    let (hits, prefix, _stats) = stream.finish_partial();
                    bodies[job] = Some(if prefix == rays {
                        ResponseBody::Hits {
                            hits: hits.iter().map(wire_hit).collect(),
                        }
                    } else if prefix > 0 {
                        ResponseBody::PartialHits {
                            total: rays as u32,
                            hits: hits[..prefix].iter().map(wire_hit).collect(),
                        }
                    } else {
                        reject(
                            code::BUDGET_EXHAUSTED,
                            "batch beat cap fired before the first ray completed",
                        )
                    });
                }
                BatchStream::Distance { stream, job, k } => {
                    // A k-nearest result is a global reduction over every candidate distance —
                    // there is no meaningful completed prefix, so an unfinished stream is a
                    // deadline miss, not a partial.
                    bodies[job] = Some(if stream.is_active() {
                        reject(
                            code::DEADLINE_EXCEEDED,
                            "batch beat cap fired before every candidate was scored",
                        )
                    } else {
                        let (distances, _stats) = stream.finish();
                        ResponseBody::Neighbors {
                            neighbors: select_k_nearest(&distances, k as usize)
                                .iter()
                                .map(wire_neighbor)
                                .collect(),
                        }
                    });
                }
            }
        }
    }

    /// Runs the batch's radius queries, grouped per cloud so each group shares one fused run
    /// inside its [`HierarchicalSearch`] engine.
    fn run_radius(&mut self, plans: &[Plan], bodies: &mut [Option<ResponseBody>]) {
        let mut groups: HashMap<&str, Vec<(usize, Vec3, f32)>> = HashMap::new();
        for (index, plan) in plans.iter().enumerate() {
            if let Plan::Radius {
                cloud,
                center,
                radius,
            } = plan
            {
                groups
                    .entry(cloud.as_str())
                    .or_default()
                    .push((index, *center, *radius));
            }
        }
        // Deterministic group order (HashMap iteration is not) so statistics accumulate
        // reproducibly; outputs are per-query and unaffected.
        let mut names: Vec<&str> = groups.keys().copied().collect();
        names.sort_unstable();
        for name in names {
            let Some(group) = groups.get(name) else {
                continue;
            };
            let Some(engine) = self.clouds.get_mut(name) else {
                for &(index, _, _) in group {
                    bodies[index] = Some(reject(
                        code::UNKNOWN_SCENE,
                        format!("no preloaded cloud named {name:?}"),
                    ));
                }
                continue;
            };
            let queries: Vec<(Vec3, f32)> = group
                .iter()
                .map(|&(_, center, radius)| (center, radius))
                .collect();
            let policy = rayflex_rtunit::ExecPolicy::fused()
                .with_beat_budget(self.config.beat_budget)
                .with_admission_order(self.config.admission)
                .with_simd_lanes(self.config.simd_lanes)
                .with_max_total_beats(self.config.max_batch_beats);
            match engine.try_radius_queries(&queries, &policy) {
                Ok(QueryOutcome::Complete(results)) => {
                    for (&(index, _, _), neighbors) in group.iter().zip(&results) {
                        bodies[index] = Some(neighbor_body(neighbors));
                    }
                }
                Ok(QueryOutcome::Partial(partial)) => {
                    for (position, &(index, _, _)) in group.iter().enumerate() {
                        bodies[index] =
                            Some(if let Some(neighbors) = partial.output.get(position) {
                                neighbor_body(neighbors)
                            } else {
                                reject(
                                    code::DEADLINE_EXCEEDED,
                                    "batch beat cap fired before this radius query completed",
                                )
                            });
                    }
                }
                Err(error) => {
                    for &(index, _, _) in group {
                        bodies[index] = Some(error_body(&error));
                    }
                }
            }
        }
    }
}

fn wire_hit(hit: &Option<rayflex_rtunit::TraversalHit>) -> Option<WireHit> {
    hit.as_ref().map(|hit| WireHit {
        primitive: hit.primitive as u64,
        t: hit.t,
    })
}

fn wire_neighbor(neighbor: &Neighbor) -> WireNeighbor {
    WireNeighbor {
        index: neighbor.index as u64,
        distance: neighbor.distance,
    }
}

fn neighbor_body(neighbors: &[Neighbor]) -> ResponseBody {
    ResponseBody::Neighbors {
        neighbors: neighbors.iter().map(wire_neighbor).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_rtunit::{ExecPolicy, TraceRequest, TraversalEngine};
    use rayflex_workloads::wire::{catalog, RequestFrame};
    use std::sync::mpsc::sync_channel;
    use std::time::Instant as StdInstant;

    fn job(request_id: u64, scene: &str, body: RequestBody) -> Job {
        let (tx, rx) = sync_channel(1);
        std::mem::forget(rx);
        Job {
            request: RequestFrame {
                request_id,
                tenant: 0,
                deadline_us: 0,
                scene: scene.into(),
                body,
            },
            enqueued_at: StdInstant::now(),
            seq: request_id,
            responder: tx,
        }
    }

    fn executor() -> BatchExecutor {
        let registry = Arc::new(Registry::preload().expect("catalog preloads"));
        BatchExecutor::new(registry, ExecConfig::default())
    }

    #[test]
    fn a_mixed_batch_answers_every_job_and_matches_the_library() {
        let mut exec = executor();
        let rays = catalog::sample_rays("wall", 7, 6).expect("catalog rays");
        let queries = catalog::sample_queries("clusters", 11, 1).expect("catalog queries");
        let centers = catalog::sample_centers("cloud", 13, 1).expect("catalog centers");
        let jobs = vec![
            job(1, "wall", RequestBody::Trace { rays: rays.clone() }),
            job(2, "wall", RequestBody::AnyHit { rays: rays.clone() }),
            job(
                3,
                "clusters",
                RequestBody::Knn {
                    k: 4,
                    query: queries[0].clone(),
                },
            ),
            job(
                4,
                "cloud",
                RequestBody::Radius {
                    center: [centers[0].0.x, centers[0].0.y, centers[0].0.z],
                    radius: centers[0].1,
                },
            ),
        ];
        let responses = exec.execute(&jobs);
        assert_eq!(responses.len(), 4);
        for (job, response) in jobs.iter().zip(&responses) {
            assert_eq!(response.request_id, job.request.request_id);
        }

        // The batched trace answer equals the direct library call, hit for hit.
        let mut engine = TraversalEngine::with_config(PipelineConfig::extended_unified());
        let registry = Registry::preload().expect("catalog preloads");
        let scene = registry.scene("wall").expect("wall preloads");
        let solo = engine
            .trace(
                &TraceRequest::closest_hit(scene, &rays),
                &ExecPolicy::fused(),
            )
            .into_closest();
        match &responses[0].body {
            ResponseBody::Hits { hits } => {
                assert_eq!(hits.len(), solo.len());
                for (got, want) in hits.iter().zip(&solo) {
                    match (got, want) {
                        (None, None) => {}
                        (Some(got), Some(want)) => {
                            assert_eq!(got.primitive, want.primitive as u64);
                            assert_eq!(got.t.to_bits(), want.t.to_bits());
                        }
                        other => panic!("hit mismatch: {other:?}"),
                    }
                }
            }
            other => panic!("expected hits, got {other:?}"),
        }
    }

    #[test]
    fn validation_rejects_map_to_structured_codes() {
        let mut exec = executor();
        let jobs = vec![
            job(1, "no-such", RequestBody::Trace { rays: vec![] }),
            job(
                2,
                "clusters",
                RequestBody::Trace { rays: vec![] }, // dataset asked to trace
            ),
            job(
                3,
                "clusters",
                RequestBody::Knn {
                    k: 3,
                    query: vec![1.0; 3], // wrong dimension
                },
            ),
            job(
                4,
                "cloud",
                RequestBody::Radius {
                    center: [0.0, f32::NAN, 0.0],
                    radius: 1.0,
                },
            ),
        ];
        let responses = exec.execute(&jobs);
        let codes: Vec<u8> = responses
            .iter()
            .map(|response| match &response.body {
                ResponseBody::Error { code, .. } => *code,
                other => panic!("expected an error, got {other:?}"),
            })
            .collect();
        assert_eq!(
            codes,
            vec![
                code::UNKNOWN_SCENE,
                code::UNSUPPORTED,
                code::INVALID_REQUEST,
                code::INVALID_REQUEST
            ]
        );
    }

    #[test]
    fn a_tiny_batch_cap_degrades_to_partials_or_structured_errors() {
        let mut exec = BatchExecutor::new(
            Arc::new(Registry::preload().expect("catalog preloads")),
            ExecConfig {
                beat_budget: 1,
                max_batch_beats: 1,
                ..ExecConfig::default()
            },
        );
        let rays = catalog::sample_rays("soup", 3, 8).expect("catalog rays");
        let jobs = vec![job(9, "soup", RequestBody::Trace { rays })];
        let responses = exec.execute(&jobs);
        match &responses[0].body {
            ResponseBody::Hits { .. } | ResponseBody::PartialHits { .. } => {}
            ResponseBody::Error { code: got, .. } => {
                assert_eq!(*got, code::BUDGET_EXHAUSTED);
            }
            other => panic!("unexpected body {other:?}"),
        }
    }
}
