//! The IO specification of the datapath (paper §III-A plus the extended fields of §V-A).
//!
//! The specification follows the RDNA3 `IMAGE_BVH_INTERSECT_RAY` instruction: each beat carries
//! one opcode, one ray and the geometry operand the opcode selects (one triangle or four boxes),
//! plus — on the extended datapath — two sixteen-element vectors, a lane mask and an
//! accumulator-reset flag.  All floating-point IO is IEEE binary32; the first and last pipeline
//! stages convert to and from the internal recoded format.  The in-memory request stores the
//! per-opcode operands as a union ([`GeomOperand`]) plus a boxed vector payload, so the hot ray
//! beats stay compact in the schedulers' bulk buffers; the unselected operands still *present*
//! their fixed disabled values to unconditional consumers (see the `*_operand` accessors), so
//! the wire-level specification is unchanged.

use rayflex_geometry::{Aabb, Ray, Triangle, Vec3};

pub use rayflex_geometry::golden::distance::{COSINE_LANES, EUCLIDEAN_LANES};

use crate::Opcode;

/// The ray operand: sixteen FP32 values as specified by the RDNA3 ISA (origin, direction,
/// inverse direction, extent) plus the six pre-computed shear values and the three axis-renaming
/// indices the paper adds for the watertight test (§III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayOperand {
    /// Ray origin.
    pub origin: [f32; 3],
    /// Ray direction.
    pub dir: [f32; 3],
    /// Element-wise inverse of the direction.
    pub inv_dir: [f32; 3],
    /// Start of the parametric extent.
    pub t_beg: f32,
    /// End of the parametric extent.
    pub t_end: f32,
    /// Axis-renaming indices `(kx, ky, kz)` (each 0, 1 or 2).
    pub k: [u8; 3],
    /// Shear constants `(Sx, Sy, Sz)`.
    pub shear: [f32; 3],
}

impl RayOperand {
    /// Builds the operand from a geometry ray (which already carries the pre-computed inverse
    /// direction and shear constants).
    #[inline]
    #[must_use]
    pub fn from_ray(ray: &Ray) -> Self {
        RayOperand {
            origin: ray.origin.to_array(),
            dir: ray.dir.to_array(),
            inv_dir: ray.inv_dir.to_array(),
            t_beg: ray.t_beg,
            t_end: ray.t_end,
            k: [
                ray.shear.kx.index() as u8,
                ray.shear.ky.index() as u8,
                ray.shear.kz.index() as u8,
            ],
            shear: [ray.shear.sx, ray.shear.sy, ray.shear.sz],
        }
    }

    /// The coherence sort key of this ray: three direction-sign octant bits above a 30-bit
    /// Morton code of the origin.
    ///
    /// Rays sharing an octant traverse BVH children in similar orders, and rays with nearby
    /// origins touch overlapping node sets — sorting a wavefront's admission order by this key
    /// packs like-minded rays into adjacent pass slots, so the datapath's lane-grouping fast
    /// path sees long same-opcode trains instead of interleaved fragments.  The key orders
    /// *dispatch only*: schedulers reassemble results by item index, so outputs are
    /// bit-identical for any key function.
    ///
    /// Layout: `octant << 30 | morton30`, where the octant packs the sign bits of
    /// `dir.{x,y,z}` (negative = 1; a NaN component sorts as non-negative, which is merely a
    /// grouping choice) and `morton30` interleaves the top ten bits of each origin
    /// component's order-preserving unsigned image.
    #[must_use]
    pub fn coherence_key(&self) -> u64 {
        let octant = u64::from(self.dir[0] < 0.0)
            | u64::from(self.dir[1] < 0.0) << 1
            | u64::from(self.dir[2] < 0.0) << 2;
        let morton = spread_10(order_bits_10(self.origin[0]))
            | spread_10(order_bits_10(self.origin[1])) << 1
            | spread_10(order_bits_10(self.origin[2])) << 2;
        octant << 30 | morton
    }

    /// A zeroed placeholder operand (used when the beat's opcode does not need a ray).
    #[must_use]
    pub fn disabled() -> Self {
        RayOperand {
            origin: [0.0; 3],
            dir: [0.0, 0.0, 1.0],
            inv_dir: [f32::INFINITY, f32::INFINITY, 1.0],
            t_beg: 0.0,
            t_end: 0.0,
            k: [0, 1, 2],
            shear: [0.0, 0.0, 1.0],
        }
    }
}

/// Top ten bits of the order-preserving unsigned image of an IEEE-754 binary32 value: flip all
/// bits of negatives and the sign bit of non-negatives, so the unsigned order of the images
/// matches the numeric order of the floats (the classic radix-sort trick).  Ten bits per axis
/// fill the 30-bit Morton budget below the octant bits.
#[inline]
fn order_bits_10(value: f32) -> u64 {
    let bits = value.to_bits();
    let ordered = if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    };
    u64::from(ordered >> 22)
}

/// Spreads a 10-bit value so its bits occupy every third position (Morton interleave step).
#[inline]
fn spread_10(v: u64) -> u64 {
    let mut v = v & 0x3FF;
    v = (v | v << 16) & 0x0300_00FF;
    v = (v | v << 8) & 0x0300_F00F;
    v = (v | v << 4) & 0x030C_30C3;
    v = (v | v << 2) & 0x0924_9249;
    v
}

/// The vector operand of a distance beat: two sixteen-lane FP32 vectors and the lane-validity
/// mask (bit set = lane participates).  Boxed inside [`RayFlexRequest`] so the far more numerous
/// ray beats don't carry 128 zero bytes apiece through the schedulers' request buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorOperand {
    /// First vector (query), sixteen lanes.
    pub a: [f32; EUCLIDEAN_LANES],
    /// Second vector (candidate), sixteen lanes.
    pub b: [f32; EUCLIDEAN_LANES],
    /// Lane-validity mask (bit set = lane participates).
    pub mask: u16,
}

impl VectorOperand {
    /// The all-zero operand a beat without a vector payload presents to the datapath (every lane
    /// masked off) — what the pre-boxed request layout carried inline on every beat.
    pub const DISABLED: VectorOperand = VectorOperand {
        a: [0.0; EUCLIDEAN_LANES],
        b: [0.0; EUCLIDEAN_LANES],
        mask: 0,
    };
}

/// The geometry operand of a beat: the four candidate child boxes of a ray–box beat, the
/// triangle of a ray–triangle beat, or nothing (a distance beat).  A union rather than two
/// side-by-side fields so constructing the very hot ray beats writes only the operand the
/// opcode selects — a ray–triangle beat no longer zero-fills 96 bytes of box payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeomOperand {
    /// No geometry operand (Euclidean/cosine beats).
    None,
    /// The four candidate child boxes of a ray–box beat.
    Boxes([Aabb; 4]),
    /// The triangle of a ray–triangle beat.
    Triangle(Triangle),
}

/// The box table a beat presents when its opcode selects none — the degenerate zero boxes the
/// pre-union request layout carried inline on every beat, so unconditional consumers (the SRFDS
/// ingest stage) observe bit-identical operands.
const DISABLED_BOXES: [Aabb; 4] = [Aabb::new(Vec3::ZERO, Vec3::ZERO); 4];

/// The triangle a beat presents when its opcode selects none (see [`DISABLED_BOXES`]).
const DISABLED_TRIANGLE: Triangle = Triangle::new(
    Vec3::ZERO,
    Vec3::new(1.0, 0.0, 0.0),
    Vec3::new(0.0, 1.0, 0.0),
);

/// Tag bit marking a ray–box beat as belonging to the **top-level** (TLAS) phase of a two-level
/// scene traversal.
///
/// Two-level schedulers set this bit on the tags of the box beats that test top-level
/// acceleration-structure nodes (the instance hierarchy), leaving bottom-level (BLAS) and flat
/// scene beats untagged; the datapath counts tagged beats in
/// [`BeatMix::tlas_box_beats`](crate::BeatMix::tlas_box_beats) so workload profiles can split
/// traversal cost between the instance phase and the geometry phase.  The bit rides the tag's
/// top position, far above node indices and item numbers, and is otherwise carried through the
/// pipeline unchanged like the rest of the tag.
pub const TLAS_PHASE_TAG: u64 = 1 << 63;

/// One request beat presented at the datapath input.
#[derive(Debug, Clone, PartialEq)]
pub struct RayFlexRequest {
    /// The operation to perform this beat.
    pub opcode: Opcode,
    /// A caller-chosen identifier carried through the pipeline unchanged (models the thread /
    /// transaction id the RT unit uses to match results to rays).
    pub tag: u64,
    /// The ray operand (valid for ray–box and ray–triangle beats).
    pub ray: RayOperand,
    /// The geometry operand the opcode selects (read through
    /// [`RayFlexRequest::boxes_operand`] / [`RayFlexRequest::triangle_operand`]).
    pub geom: GeomOperand,
    /// The distance-operand vectors and lane mask (present on Euclidean/cosine beats, absent on
    /// ray beats; read through [`RayFlexRequest::vector_operand`]).
    pub vector: Option<Box<VectorOperand>>,
    /// When set, this beat is the last of a (possibly multi-beat) vector pair: the accumulated
    /// result is reported and the accumulator clears afterwards.
    pub reset_accumulator: bool,
}

impl RayFlexRequest {
    #[inline]
    fn blank(opcode: Opcode, tag: u64) -> Self {
        RayFlexRequest {
            opcode,
            tag,
            ray: RayOperand::disabled(),
            geom: GeomOperand::None,
            vector: None,
            reset_accumulator: false,
        }
    }

    /// The vector operand of this beat, or [`VectorOperand::DISABLED`] when the beat carries
    /// none — exactly the zero vectors the pre-boxed layout presented inline, so consumers that
    /// read the operand unconditionally (the SRFDS ingest stage, say) behave bit-identically.
    #[inline]
    #[must_use]
    pub fn vector_operand(&self) -> &VectorOperand {
        self.vector.as_deref().unwrap_or(&VectorOperand::DISABLED)
    }

    /// The box-table operand of this beat, or four degenerate zero boxes when the opcode selects
    /// none.
    #[inline]
    #[must_use]
    pub fn boxes_operand(&self) -> &[Aabb; 4] {
        match &self.geom {
            GeomOperand::Boxes(boxes) => boxes,
            _ => &DISABLED_BOXES,
        }
    }

    /// The triangle operand of this beat, or a disabled placeholder (unit right triangle at the
    /// origin) when the opcode selects none.
    #[inline]
    #[must_use]
    pub fn triangle_operand(&self) -> &Triangle {
        match &self.geom {
            GeomOperand::Triangle(triangle) => triangle,
            _ => &DISABLED_TRIANGLE,
        }
    }

    /// A ray–box beat: test `ray` against four candidate child boxes.
    #[inline]
    #[must_use]
    pub fn ray_box(tag: u64, ray: &Ray, boxes: &[Aabb; 4]) -> Self {
        Self::ray_box_operand(tag, &RayOperand::from_ray(ray), boxes)
    }

    /// A ray–box beat from a prebuilt operand: the hot-path constructor for schedulers that
    /// cache one [`RayOperand`] per ray and reuse it across every beat of that ray's traversal,
    /// skipping the per-beat [`Ray`] conversion.
    #[inline]
    #[must_use]
    pub fn ray_box_operand(tag: u64, ray: &RayOperand, boxes: &[Aabb; 4]) -> Self {
        RayFlexRequest {
            ray: *ray,
            geom: GeomOperand::Boxes(*boxes),
            ..Self::blank(Opcode::RayBox, tag)
        }
    }

    /// A ray–triangle beat.
    #[inline]
    #[must_use]
    pub fn ray_triangle(tag: u64, ray: &Ray, triangle: &Triangle) -> Self {
        Self::ray_triangle_operand(tag, &RayOperand::from_ray(ray), triangle)
    }

    /// A ray–triangle beat from a prebuilt operand (see
    /// [`RayFlexRequest::ray_box_operand`]).
    #[inline]
    #[must_use]
    pub fn ray_triangle_operand(tag: u64, ray: &RayOperand, triangle: &Triangle) -> Self {
        RayFlexRequest {
            ray: *ray,
            geom: GeomOperand::Triangle(*triangle),
            ..Self::blank(Opcode::RayTriangle, tag)
        }
    }

    /// A Euclidean-distance beat over up to sixteen lanes.
    #[must_use]
    pub fn euclidean(
        tag: u64,
        a: [f32; EUCLIDEAN_LANES],
        b: [f32; EUCLIDEAN_LANES],
        mask: u16,
        reset_accumulator: bool,
    ) -> Self {
        RayFlexRequest {
            vector: Some(Box::new(VectorOperand { a, b, mask })),
            reset_accumulator,
            ..Self::blank(Opcode::Euclidean, tag)
        }
    }

    /// A cosine-distance beat over up to eight lanes (packed into the low lanes of the shared
    /// vector operands).
    #[must_use]
    pub fn cosine(
        tag: u64,
        a: [f32; COSINE_LANES],
        b: [f32; COSINE_LANES],
        mask: u8,
        reset_accumulator: bool,
    ) -> Self {
        let mut full_a = [0.0; EUCLIDEAN_LANES];
        let mut full_b = [0.0; EUCLIDEAN_LANES];
        full_a[..COSINE_LANES].copy_from_slice(&a);
        full_b[..COSINE_LANES].copy_from_slice(&b);
        RayFlexRequest {
            vector: Some(Box::new(VectorOperand {
                a: full_a,
                b: full_b,
                mask: u16::from(mask),
            })),
            reset_accumulator,
            ..Self::blank(Opcode::Cosine, tag)
        }
    }
}

/// The result of a ray–box beat: per-box hit flags and entry distances (in input order) plus the
/// four child slots sorted by their order of intersection, as the RDNA3 instruction returns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxResult {
    /// Hit status of each input box, in input order.
    pub hit: [bool; 4],
    /// Entry distance (`tmin`) of each input box, in input order; only meaningful for hits.
    pub t_entry: [f32; 4],
    /// The four child indices sorted by order of intersection (hits first, nearest first).
    /// Stored as `u8` lane numbers so the response stays compact on the wire.
    pub traversal_order: [u8; 4],
}

impl BoxResult {
    /// Iterator over the child indices that actually hit, in traversal (nearest-first) order.
    pub fn hits_in_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.traversal_order
            .iter()
            .map(|&i| i as usize)
            .filter(move |&i| self.hit[i])
    }
}

/// The result of a ray–triangle beat.  The intersection distance is reported as a
/// numerator/denominator pair because the datapath contains no dividers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleResult {
    /// Whether the ray hits the front face of the triangle.
    pub hit: bool,
    /// Numerator of the hit distance.
    pub t_num: f32,
    /// Denominator of the hit distance (the barycentric determinant).
    pub det: f32,
    /// Scaled barycentric coordinate U.
    pub u: f32,
    /// Scaled barycentric coordinate V.
    pub v: f32,
    /// Scaled barycentric coordinate W.
    pub w: f32,
}

impl TriangleResult {
    /// The parametric hit distance `t_num / det` (the division the GPU core performs after the
    /// datapath returns).  NaN when the determinant is zero, which only happens for misses.
    #[must_use]
    pub fn distance(&self) -> f32 {
        self.t_num / self.det
    }
}

/// The result of a Euclidean or cosine beat on the extended datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceResult {
    /// Running squared-Euclidean-distance accumulator value after this beat.
    pub euclidean_accumulator: f32,
    /// Echo of the `reset_accumulator` input from eleven cycles ago: this beat completed a
    /// Euclidean vector pair.
    pub euclidean_reset: bool,
    /// Running dot-product accumulator value after this beat (cosine numerator).
    pub angular_dot_product: f32,
    /// Running candidate-norm accumulator value after this beat (cosine denominator, squared).
    pub angular_norm: f32,
    /// Echo of the `reset_accumulator` input from eleven cycles ago: this beat completed a cosine
    /// vector pair.
    pub angular_reset: bool,
}

/// One response beat presented at the datapath output, eleven cycles after the corresponding
/// request.
#[derive(Debug, Clone, PartialEq)]
pub struct RayFlexResponse {
    /// The opcode of the originating request.
    pub opcode: Opcode,
    /// The tag of the originating request.
    pub tag: u64,
    /// Present when the request was a ray–box beat.
    pub box_result: Option<BoxResult>,
    /// Present when the request was a ray–triangle beat.
    pub triangle_result: Option<TriangleResult>,
    /// Present when the request was a Euclidean or cosine beat.
    pub distance_result: Option<DistanceResult>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::Vec3;

    fn test_ray() -> Ray {
        Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.1, 0.2, 1.0))
    }

    #[test]
    fn ray_operand_mirrors_the_geometry_ray() {
        let ray = test_ray();
        let op = RayOperand::from_ray(&ray);
        assert_eq!(op.origin, [0.0, 0.0, -5.0]);
        assert_eq!(op.dir, [0.1, 0.2, 1.0]);
        assert_eq!(op.inv_dir[2], 1.0);
        assert_eq!(op.k[2], 2, "dominant axis is z");
        assert_eq!(op.shear[2], 1.0);
        assert_eq!(op.t_beg, 0.0);
        assert!(op.t_end.is_infinite());
    }

    #[test]
    fn coherence_keys_group_by_octant_then_locality() {
        let key = |origin, dir| RayOperand::from_ray(&Ray::new(origin, dir)).coherence_key();
        // Octant bits dominate: same origin, mirrored direction → different top bits.
        let fwd = key(Vec3::new(1.0, 2.0, 3.0), Vec3::new(0.3, 0.4, 0.5));
        let back = key(Vec3::new(1.0, 2.0, 3.0), Vec3::new(-0.3, 0.4, 0.5));
        assert_eq!(fwd >> 30, 0b000);
        assert_eq!(back >> 30, 0b001);
        assert!(back > fwd, "negative-x octant sorts after positive");
        // Within an octant, nearby origins share high Morton bits more than distant ones.
        let near = key(Vec3::new(1.0, 2.0, 3.0001), Vec3::new(0.3, 0.4, 0.5));
        let far = key(Vec3::new(-900.0, 800.0, -700.0), Vec3::new(0.3, 0.4, 0.5));
        assert_eq!(
            near, fwd,
            "sub-resolution origin jitter maps to the same key"
        );
        assert_ne!(far, fwd);
        assert!(fwd < 1 << 33, "key fits octant(3) + morton(30) bits");
    }

    #[test]
    fn request_constructors_select_the_opcode() {
        let ray = test_ray();
        let boxes = [Aabb::new(Vec3::ZERO, Vec3::ONE); 4];
        let tri = Triangle::new(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        assert_eq!(
            RayFlexRequest::ray_box(1, &ray, &boxes).opcode,
            Opcode::RayBox
        );
        assert_eq!(
            RayFlexRequest::ray_triangle(2, &ray, &tri).opcode,
            Opcode::RayTriangle
        );
        let e = RayFlexRequest::euclidean(3, [1.0; 16], [2.0; 16], u16::MAX, true);
        assert_eq!(e.opcode, Opcode::Euclidean);
        assert!(e.reset_accumulator);
        let c = RayFlexRequest::cosine(4, [1.0; 8], [2.0; 8], u8::MAX, false);
        assert_eq!(c.opcode, Opcode::Cosine);
        assert_eq!(c.vector_operand().mask, 0x00FF);
        assert_eq!(c.vector_operand().a[8..], [0.0; 8]);
        assert_eq!(
            RayFlexRequest::ray_box(5, &ray, &boxes).vector_operand(),
            &VectorOperand::DISABLED,
            "ray beats carry no vector payload"
        );
    }

    #[test]
    fn box_result_iterates_hits_in_traversal_order() {
        let r = BoxResult {
            hit: [true, false, true, false],
            t_entry: [5.0, 0.0, 2.0, 0.0],
            traversal_order: [2, 0, 1, 3],
        };
        assert_eq!(r.hits_in_order().collect::<Vec<_>>(), vec![2, 0]);
    }

    #[test]
    fn triangle_result_distance_is_the_quotient() {
        let r = TriangleResult {
            hit: true,
            t_num: 12.0,
            det: 4.0,
            u: 1.0,
            v: 1.0,
            w: 2.0,
        };
        assert_eq!(r.distance(), 3.0);
    }
}
