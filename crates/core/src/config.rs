//! Datapath configurations: the design space of the paper's evaluation (§VI).

use crate::Opcode;

/// Which operations the datapath supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureSet {
    /// Ray–box and ray–triangle intersection tests only.
    Baseline,
    /// Baseline plus the Euclidean- and cosine-distance operations of §V-A.
    Extended,
}

/// How functional units are allocated to operations at each stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuSharing {
    /// Functional units at each stage are shared between operations through operand multiplexers
    /// (the RayCore/HSU-style design the paper uses as its baseline architecture).
    Unified,
    /// Every operation has its own private pool of functional units at each stage (the TTA-style
    /// alternative of case study §V-B); all operations still enter the same pipeline.
    Disjoint,
}

/// A point in the paper's design space: feature set × functional-unit sharing strategy, plus the
/// stage-3 perturbation used by the squarer-specialisation ablation of §VII-B.
///
/// # Example
///
/// ```
/// use rayflex_core::{Opcode, PipelineConfig};
///
/// let config = PipelineConfig::extended_disjoint();
/// assert!(config.supports(Opcode::Euclidean));
/// assert_eq!(config.name(), "extended-disjoint");
/// assert!(!PipelineConfig::baseline_unified().supports(Opcode::Cosine));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineConfig {
    feature_set: FeatureSet,
    fu_sharing: FuSharing,
    perturb_squarers: bool,
}

impl PipelineConfig {
    /// Creates a configuration.
    #[must_use]
    pub fn new(feature_set: FeatureSet, fu_sharing: FuSharing) -> Self {
        PipelineConfig {
            feature_set,
            fu_sharing,
            perturb_squarers: false,
        }
    }

    /// The baseline datapath with a unified (shared) functional-unit pool — the paper's reference
    /// design.
    #[must_use]
    pub fn baseline_unified() -> Self {
        PipelineConfig::new(FeatureSet::Baseline, FuSharing::Unified)
    }

    /// The baseline datapath with disjoint per-operation functional units.
    #[must_use]
    pub fn baseline_disjoint() -> Self {
        PipelineConfig::new(FeatureSet::Baseline, FuSharing::Disjoint)
    }

    /// The extended datapath (Euclidean/cosine support) with a unified functional-unit pool.
    #[must_use]
    pub fn extended_unified() -> Self {
        PipelineConfig::new(FeatureSet::Extended, FuSharing::Unified)
    }

    /// The extended datapath with disjoint per-operation functional units.
    #[must_use]
    pub fn extended_disjoint() -> Self {
        PipelineConfig::new(FeatureSet::Extended, FuSharing::Disjoint)
    }

    /// The four configurations evaluated in the paper's Figs. 7–9, in presentation order.
    #[must_use]
    pub fn evaluated_configs() -> [PipelineConfig; 4] {
        [
            PipelineConfig::baseline_unified(),
            PipelineConfig::baseline_disjoint(),
            PipelineConfig::extended_unified(),
            PipelineConfig::extended_disjoint(),
        ]
    }

    /// Enables or disables the §VII-B perturbation: when enabled, the stage-3 multipliers of the
    /// disjoint Euclidean/cosine paths no longer see both operands from the same wire, so the
    /// synthesis model cannot specialise them into squarers.
    #[must_use]
    pub fn with_squarer_perturbation(mut self, perturb: bool) -> Self {
        self.perturb_squarers = perturb;
        self
    }

    /// The feature set of this configuration.
    #[must_use]
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// The functional-unit sharing strategy of this configuration.
    #[must_use]
    pub fn fu_sharing(&self) -> FuSharing {
        self.fu_sharing
    }

    /// Whether the squarer-specialisation perturbation is enabled.
    #[must_use]
    pub fn squarers_perturbed(&self) -> bool {
        self.perturb_squarers
    }

    /// Returns `true` if the configuration can execute the given opcode.
    #[must_use]
    pub fn supports(&self, opcode: Opcode) -> bool {
        self.feature_set == FeatureSet::Extended || !opcode.requires_extended()
    }

    /// The opcodes this configuration supports.
    #[must_use]
    pub fn supported_opcodes(&self) -> &'static [Opcode] {
        match self.feature_set {
            FeatureSet::Baseline => &Opcode::BASELINE,
            FeatureSet::Extended => &Opcode::ALL,
        }
    }

    /// The configuration name used throughout the reports, e.g. `"baseline-unified"`.
    #[must_use]
    pub fn name(&self) -> String {
        let feature = match self.feature_set {
            FeatureSet::Baseline => "baseline",
            FeatureSet::Extended => "extended",
        };
        let sharing = match self.fu_sharing {
            FuSharing::Unified => "unified",
            FuSharing::Disjoint => "disjoint",
        };
        if self.perturb_squarers {
            format!("{feature}-{sharing}-perturbed")
        } else {
            format!("{feature}-{sharing}")
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::baseline_unified()
    }
}

impl core::fmt::Display for PipelineConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_cover_the_design_space() {
        let names: Vec<String> = PipelineConfig::evaluated_configs()
            .iter()
            .map(PipelineConfig::name)
            .collect();
        assert_eq!(
            names,
            vec![
                "baseline-unified",
                "baseline-disjoint",
                "extended-unified",
                "extended-disjoint"
            ]
        );
        assert_eq!(
            PipelineConfig::extended_disjoint()
                .with_squarer_perturbation(true)
                .name(),
            "extended-disjoint-perturbed"
        );
    }

    #[test]
    fn support_follows_the_feature_set() {
        let base = PipelineConfig::baseline_unified();
        assert!(base.supports(Opcode::RayBox));
        assert!(base.supports(Opcode::RayTriangle));
        assert!(!base.supports(Opcode::Euclidean));
        assert_eq!(base.supported_opcodes().len(), 2);
        let ext = PipelineConfig::extended_unified();
        assert!(ext.supports(Opcode::Cosine));
        assert_eq!(ext.supported_opcodes().len(), 4);
    }

    #[test]
    fn default_is_the_paper_reference_design() {
        let d = PipelineConfig::default();
        assert_eq!(d, PipelineConfig::baseline_unified());
        assert_eq!(d.feature_set(), FeatureSet::Baseline);
        assert_eq!(d.fu_sharing(), FuSharing::Unified);
        assert!(!d.squarers_perturbed());
        assert_eq!(d.to_string(), "baseline-unified");
    }
}
