//! Per-field liveness of the Shared RayFlex Data Structure: the model of what synthesis
//! dead-node elimination leaves in each stage's pipeline register (paper §III-E and §VII-A).
//!
//! RayFlex registers the *same* wide structure at every stage and lets the synthesiser delete the
//! bits no downstream stage reads.  The paper further chose disjoint pipeline registers per
//! operation (rather than overlaying the operations' fields union-style), which is why adding the
//! Euclidean/cosine operations grows the sequential area substantially even though the structure
//! is shared at the RTL level.  This module tabulates, for every field, how wide it is, which
//! stages' output registers must hold it, and which operations own it; the synthesis model sums
//! the live bits per stage for a given configuration.

use crate::{Opcode, PipelineConfig};

/// Liveness of one field of the Shared RayFlex Data Structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldLiveness {
    /// Field name (for reports).
    pub name: &'static str,
    /// Width in bits (floating-point fields use the 33-bit recoded width).
    pub bits: u32,
    /// First pipeline stage whose output register holds the field.
    pub first_stage: usize,
    /// Last pipeline stage whose output register holds the field.
    pub last_stage: usize,
    /// The operations that own the field.  A field is instantiated once if *any* owning
    /// operation is supported by the configuration; fields listing several owners model the
    /// operand registers genuinely shared between the Euclidean and cosine operations.
    pub ops: &'static [Opcode],
}

const BOX_OPS: &[Opcode] = &[Opcode::RayBox];
const TRI_OPS: &[Opcode] = &[Opcode::RayTriangle];
const EUC_OPS: &[Opcode] = &[Opcode::Euclidean];
const COS_OPS: &[Opcode] = &[Opcode::Cosine];
const VEC_OPS: &[Opcode] = &[Opcode::Euclidean, Opcode::Cosine];
const ALL_OPS: &[Opcode] = &[
    Opcode::RayBox,
    Opcode::RayTriangle,
    Opcode::Euclidean,
    Opcode::Cosine,
];

/// Width of one recoded floating-point value.
const FP: u32 = 33;

/// The full field-liveness table.
#[must_use]
pub fn field_table() -> &'static [FieldLiveness] {
    const TABLE: &[FieldLiveness] = &[
        // --- Control fields shared by every operation -------------------------------------------
        FieldLiveness {
            name: "control (opcode, tag, valid)",
            bits: 24,
            first_stage: 1,
            last_stage: 10,
            ops: ALL_OPS,
        },
        // --- Ray-box bank ------------------------------------------------------------------------
        FieldLiveness {
            name: "box: ray origin",
            bits: 3 * FP,
            first_stage: 1,
            last_stage: 1,
            ops: BOX_OPS,
        },
        FieldLiveness {
            name: "box: ray inverse direction",
            bits: 3 * FP,
            first_stage: 1,
            last_stage: 2,
            ops: BOX_OPS,
        },
        FieldLiveness {
            name: "box: ray extent",
            bits: 2 * FP,
            first_stage: 1,
            last_stage: 3,
            ops: BOX_OPS,
        },
        FieldLiveness {
            name: "box: corner operands",
            bits: 24 * FP,
            first_stage: 1,
            last_stage: 1,
            ops: BOX_OPS,
        },
        FieldLiveness {
            name: "box: translated corners",
            bits: 24 * FP,
            first_stage: 2,
            last_stage: 2,
            ops: BOX_OPS,
        },
        FieldLiveness {
            name: "box: slab products",
            bits: 24 * FP,
            first_stage: 3,
            last_stage: 3,
            ops: BOX_OPS,
        },
        FieldLiveness {
            name: "box: entry distances",
            bits: 4 * FP,
            first_stage: 4,
            last_stage: 10,
            ops: BOX_OPS,
        },
        FieldLiveness {
            name: "box: hit flags",
            bits: 4,
            first_stage: 4,
            last_stage: 10,
            ops: BOX_OPS,
        },
        FieldLiveness {
            name: "box: traversal order",
            bits: 8,
            first_stage: 10,
            last_stage: 10,
            ops: BOX_OPS,
        },
        // --- Ray-triangle bank ------------------------------------------------------------------
        FieldLiveness {
            name: "tri: ray origin",
            bits: 3 * FP,
            first_stage: 1,
            last_stage: 1,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: axis renaming indices",
            bits: 6,
            first_stage: 1,
            last_stage: 3,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: shear constants",
            bits: 3 * FP,
            first_stage: 1,
            last_stage: 2,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: vertex operands",
            bits: 9 * FP,
            first_stage: 1,
            last_stage: 1,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: translated vertices",
            bits: 9 * FP,
            first_stage: 2,
            last_stage: 3,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: shear xy products",
            bits: 6 * FP,
            first_stage: 3,
            last_stage: 3,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: sheared z coordinates",
            bits: 3 * FP,
            first_stage: 3,
            last_stage: 6,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: sheared xy coordinates",
            bits: 6 * FP,
            first_stage: 4,
            last_stage: 4,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: barycentric products",
            bits: 6 * FP,
            first_stage: 5,
            last_stage: 5,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: barycentric coordinates",
            bits: 3 * FP,
            first_stage: 6,
            last_stage: 9,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: distance products",
            bits: 3 * FP,
            first_stage: 7,
            last_stage: 8,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: partial sums",
            bits: 2 * FP,
            first_stage: 8,
            last_stage: 8,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: determinant and numerator",
            bits: 2 * FP,
            first_stage: 9,
            last_stage: 10,
            ops: TRI_OPS,
        },
        FieldLiveness {
            name: "tri: hit flag",
            bits: 1,
            first_stage: 10,
            last_stage: 10,
            ops: TRI_OPS,
        },
        // --- Distance operand registers (shared between Euclidean and cosine) --------------------
        FieldLiveness {
            name: "vec: operand vectors",
            bits: 32 * FP,
            first_stage: 1,
            last_stage: 2,
            ops: VEC_OPS,
        },
        FieldLiveness {
            name: "vec: lane mask",
            bits: 16,
            first_stage: 1,
            last_stage: 2,
            ops: VEC_OPS,
        },
        FieldLiveness {
            name: "vec: accumulator reset flag",
            bits: 1,
            first_stage: 1,
            last_stage: 10,
            ops: VEC_OPS,
        },
        // --- Euclidean bank ----------------------------------------------------------------------
        FieldLiveness {
            name: "euclid: differences",
            bits: 16 * FP,
            first_stage: 2,
            last_stage: 2,
            ops: EUC_OPS,
        },
        FieldLiveness {
            name: "euclid: squares",
            bits: 16 * FP,
            first_stage: 3,
            last_stage: 3,
            ops: EUC_OPS,
        },
        FieldLiveness {
            name: "euclid: partial sums (8)",
            bits: 8 * FP,
            first_stage: 4,
            last_stage: 5,
            ops: EUC_OPS,
        },
        FieldLiveness {
            name: "euclid: partial sums (4)",
            bits: 4 * FP,
            first_stage: 6,
            last_stage: 7,
            ops: EUC_OPS,
        },
        FieldLiveness {
            name: "euclid: partial sums (2)",
            bits: 2 * FP,
            first_stage: 8,
            last_stage: 8,
            ops: EUC_OPS,
        },
        FieldLiveness {
            name: "euclid: partial sum (1)",
            bits: FP,
            first_stage: 9,
            last_stage: 9,
            ops: EUC_OPS,
        },
        FieldLiveness {
            name: "euclid: accumulator output",
            bits: FP,
            first_stage: 10,
            last_stage: 10,
            ops: EUC_OPS,
        },
        // --- Cosine bank -------------------------------------------------------------------------
        FieldLiveness {
            name: "cosine: products and squares",
            bits: 16 * FP,
            first_stage: 3,
            last_stage: 3,
            ops: COS_OPS,
        },
        FieldLiveness {
            name: "cosine: partial sums (8)",
            bits: 8 * FP,
            first_stage: 4,
            last_stage: 5,
            ops: COS_OPS,
        },
        FieldLiveness {
            name: "cosine: partial sums (4)",
            bits: 4 * FP,
            first_stage: 6,
            last_stage: 7,
            ops: COS_OPS,
        },
        FieldLiveness {
            name: "cosine: partial sums (2)",
            bits: 2 * FP,
            first_stage: 8,
            last_stage: 8,
            ops: COS_OPS,
        },
        FieldLiveness {
            name: "cosine: accumulator outputs",
            bits: 2 * FP,
            first_stage: 9,
            last_stage: 10,
            ops: COS_OPS,
        },
    ];
    TABLE
}

/// Pipeline-register bits live at the output of `stage` for a configuration (after dead-node
/// elimination).
#[must_use]
pub fn live_register_bits(config: &PipelineConfig, stage: usize) -> u32 {
    field_table()
        .iter()
        .filter(|field| field.first_stage <= stage && stage <= field.last_stage)
        .filter(|field| field.ops.iter().any(|&op| config.supports(op)))
        .map(|field| field.bits)
        .sum()
}

/// Total pipeline-register bits of a configuration across every stage.
#[must_use]
pub fn total_register_bits(config: &PipelineConfig) -> u32 {
    (1..=crate::stages::STAGE_COUNT)
        .map(|stage| live_register_bits(config, stage))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_stage_ranges_are_well_formed() {
        for field in field_table() {
            assert!(
                field.first_stage >= 1 && field.last_stage <= 11,
                "{}",
                field.name
            );
            assert!(field.first_stage <= field.last_stage, "{}", field.name);
            assert!(field.bits > 0, "{}", field.name);
            assert!(!field.ops.is_empty(), "{}", field.name);
        }
    }

    #[test]
    fn early_stages_are_the_widest_for_the_baseline() {
        let config = PipelineConfig::baseline_unified();
        let early = live_register_bits(&config, 1);
        let late = live_register_bits(&config, 9);
        assert!(early > late, "operand registers dominate the early stages");
        assert!(
            early > 1500,
            "stage 1 carries the full operand set ({early} bits)"
        );
    }

    #[test]
    fn sharing_strategy_does_not_change_register_bits() {
        for stage in 1..=11 {
            assert_eq!(
                live_register_bits(&PipelineConfig::baseline_unified(), stage),
                live_register_bits(&PipelineConfig::baseline_disjoint(), stage)
            );
        }
    }

    #[test]
    fn extending_the_datapath_grows_sequential_state_substantially() {
        let base = total_register_bits(&PipelineConfig::baseline_unified());
        let ext = total_register_bits(&PipelineConfig::extended_unified());
        let growth = ext as f64 / base as f64;
        // The paper reports ≈ +64% sequential area; the model's per-operation register banks land
        // in the same regime (the exact figure depends on the assumed operand lifetimes).
        assert!(
            growth > 1.4 && growth < 2.2,
            "sequential growth = {growth:.2}x"
        );
    }

    #[test]
    fn baseline_configurations_carry_no_distance_fields() {
        let config = PipelineConfig::baseline_unified();
        let with_vec: u32 = field_table()
            .iter()
            .filter(|f| f.ops.contains(&Opcode::Euclidean) && !f.ops.contains(&Opcode::RayBox))
            .map(|f| f.bits)
            .sum();
        assert!(with_vec > 0);
        // None of those bits appear in the baseline total.
        let baseline_total = total_register_bits(&config);
        let extended_total = total_register_bits(&PipelineConfig::extended_unified());
        assert!(extended_total > baseline_total);
        assert_eq!(
            live_register_bits(&config, 3),
            field_table()
                .iter()
                .filter(|f| f.first_stage <= 3 && 3 <= f.last_stage)
                .filter(|f| f.ops.contains(&Opcode::RayBox) || f.ops.contains(&Opcode::RayTriangle))
                .map(|f| f.bits)
                .sum()
        );
    }
}
