//! # rayflex-core
//!
//! The RayFlex hardware ray-tracer datapath (ISPASS 2025), modelled in Rust.
//!
//! RayFlex is a fixed-latency, fully pipelined datapath that executes the BVH operations of a GPU
//! hardware ray-tracing unit: four parallel ray–box intersection tests (slab method) or one
//! ray–triangle intersection test (watertight method) per cycle, optionally extended with
//! Euclidean- and cosine-distance operations for hierarchical-search workloads.  The pipeline is
//! eleven stages deep, built entirely from parameterised skid buffers carrying one wide *Shared
//! RayFlex Data Structure*, and converts between IEEE binary32 and an internal recoded
//! floating-point format at its first and last stages.
//!
//! This crate provides:
//!
//! * the RDNA3-inspired IO specification ([`RayFlexRequest`], [`RayFlexResponse`], [`Opcode`]),
//! * the Shared RayFlex Data Structure ([`SharedRayFlexData`]) and the per-stage logic of
//!   Fig. 4c / Fig. 6c ([`stages`]),
//! * the design space of the paper's evaluation ([`PipelineConfig`]: baseline/extended ×
//!   unified/disjoint, plus the squarer-perturbation ablation),
//! * a fast functional model ([`RayFlexDatapath`]) and a cycle-accurate elastic-pipeline model
//!   ([`RayFlexPipeline`]) built on `rayflex-rtl` skid buffers,
//! * the hardware inventory and activity models consumed by the `rayflex-synth` area/power
//!   estimator ([`inventory`], [`activity`], [`liveness`]),
//! * the paper's twenty directed validation cases ([`validation`]).
//!
//! # Example
//!
//! ```
//! use rayflex_core::{PipelineConfig, RayFlexDatapath, RayFlexRequest};
//! use rayflex_geometry::{Aabb, Ray, Vec3};
//!
//! let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
//! let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
//! let boxes = [
//!     Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
//!     Aabb::new(Vec3::new(-1.0, -1.0, 3.0), Vec3::new(1.0, 1.0, 5.0)),
//!     Aabb::new(Vec3::new(10.0, 10.0, 10.0), Vec3::new(11.0, 11.0, 11.0)),
//!     Aabb::new(Vec3::new(-1.0, -1.0, 8.0), Vec3::new(1.0, 1.0, 9.0)),
//! ];
//! let response = datapath.execute(&RayFlexRequest::ray_box(0, &ray, &boxes));
//! let result = response.box_result.expect("ray-box op returns a box result");
//! assert_eq!(result.hit, [true, true, false, true]);
//! assert_eq!(result.traversal_order, [0, 1, 3, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod accumulator;
pub mod activity;
mod config;
mod datapath;
mod fastpath;
pub mod guard;
pub mod inventory;
mod io;
pub mod liveness;
mod opcode;
mod pipeline;
pub mod quad_sort;
mod srfds;
pub mod stages;
pub mod validation;

pub use accumulator::AccumulatorState;
pub use config::{FeatureSet, FuSharing, PipelineConfig};
pub use datapath::{BeatMix, RayFlexDatapath};
pub use fastpath::{clamp_simd_lanes, MAX_SIMD_LANES};
pub use io::{
    BoxResult, DistanceResult, GeomOperand, RayFlexRequest, RayFlexResponse, RayOperand,
    TriangleResult, VectorOperand, COSINE_LANES, EUCLIDEAN_LANES, TLAS_PHASE_TAG,
};
pub use opcode::{Opcode, QueryKind};
pub use pipeline::{PipelineStats, RayFlexPipeline, PIPELINE_DEPTH};
pub use srfds::SharedRayFlexData;
