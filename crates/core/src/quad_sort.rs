//! The QuadSort network: five comparators sorting four children by order of intersection
//! (paper Fig. 4a step 5).

use rayflex_softfloat::{cmp, RecF32};

/// Sorts the four child boxes by their order of intersection using the optimal five-comparator
/// sorting network for four elements (compare-exchange pairs (0,1), (2,3), (0,2), (1,3), (1,2)).
///
/// Misses sort after every hit (their key is +infinity); equal keys keep their original order so
/// the network is deterministic.  Returns the child indices in visit order, as `u8` lane numbers
/// to keep the response struct compact.
#[must_use]
pub fn sort_children(hit: &[bool; 4], t_entry: &[RecF32; 4]) -> [u8; 4] {
    let key = |i: u8| -> RecF32 {
        if hit[i as usize] {
            t_entry[i as usize]
        } else {
            RecF32::INFINITY
        }
    };
    let mut order = [0u8, 1, 2, 3];
    let exchange = |order: &mut [u8; 4], i: usize, j: usize| {
        if cmp::lt(key(order[j]), key(order[i])) {
            order.swap(i, j);
        }
    };
    exchange(&mut order, 0, 1);
    exchange(&mut order, 2, 3);
    exchange(&mut order, 0, 2);
    exchange(&mut order, 1, 3);
    exchange(&mut order, 1, 2);
    order
}

/// [`sort_children`] over native `f32` keys: recodes the keys and runs the same five-comparator
/// network, so software consumers of the quad-sort substrate (the bounded top-k selection of the
/// k-NN engine, say) order values exactly as the hardware sorter would.  Invalid lanes (`hit[i]
/// == false`) sort last and keep their relative order.
#[must_use]
pub fn sort_four_f32(hit: &[bool; 4], keys: &[f32; 4]) -> [u8; 4] {
    sort_children(hit, &keys.map(RecF32::from_f32))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(values: [f32; 4]) -> [RecF32; 4] {
        values.map(RecF32::from_f32)
    }

    #[test]
    fn the_f32_frontend_matches_the_recoded_network() {
        let keys = [3.5f32, -1.0, 0.25, -7.5];
        let hit = [true, true, false, true];
        assert_eq!(sort_four_f32(&hit, &keys), sort_children(&hit, &rec(keys)));
        assert_eq!(sort_four_f32(&hit, &keys), [3, 1, 0, 2]);
    }

    #[test]
    fn hits_sort_by_distance_before_misses() {
        let order = sort_children(&[true, true, false, true], &rec([9.0, 1.0, 0.0, 4.0]));
        assert_eq!(order, [1, 3, 0, 2]);
    }

    #[test]
    fn all_misses_keep_input_order() {
        let order = sort_children(&[false; 4], &rec([4.0, 3.0, 2.0, 1.0]));
        assert_eq!(order, [0, 1, 2, 3]);
    }

    #[test]
    fn matches_a_reference_sort_for_every_permutation() {
        let base = [0.5f32, 1.5, 2.5, 3.5];
        // All 4! assignments of distances to slots.
        for p0 in 0..4usize {
            for p1 in 0..4usize {
                for p2 in 0..4usize {
                    for p3 in 0..4usize {
                        let perm = [p0, p1, p2, p3];
                        let mut seen = [false; 4];
                        perm.iter().for_each(|&i| seen[i] = true);
                        if seen != [true; 4] {
                            continue;
                        }
                        let distances = rec([base[p0], base[p1], base[p2], base[p3]]);
                        let order = sort_children(&[true; 4], &distances);
                        let sorted: Vec<f32> = order
                            .iter()
                            .map(|&i| distances[i as usize].to_f32())
                            .collect();
                        assert_eq!(sorted, vec![0.5, 1.5, 2.5, 3.5], "permutation {perm:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn nan_distances_on_misses_do_not_disturb_the_order() {
        // A coplanar-ray miss carries a NaN entry distance; the miss key (+inf) hides it.
        let order = sort_children(
            &[false, true, true, false],
            &[
                RecF32::NAN,
                RecF32::from_f32(2.0),
                RecF32::from_f32(1.0),
                RecF32::NAN,
            ],
        );
        assert_eq!(order, [2, 1, 0, 3]);
    }
}
