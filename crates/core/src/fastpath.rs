//! The batched fast model: native-`f32` beat execution, bit-identical to the recoded emulation.
//!
//! The recoded-format stage emulation ([`crate::stages`]) is the register-accurate view of the
//! datapath, but it pays for hardware faithfulness with software-emulated floating point — around
//! a microsecond per beat, which makes workload-level studies (millions of beats) simulator-bound
//! rather than hardware-bound.  This module is the throughput view: it computes each beat with
//! the *golden* native-`f32` models of `rayflex-geometry`, which are written with the same
//! operation structure and per-step rounding as the hardware stages and are proven bit-exact
//! against them by the §IV-A validation suite and the workspace property tests
//! (`crates/softfloat/tests/proptest_ieee.rs` pins every recoded operation to native `f32`;
//! `crates/core/tests/proptest_batch.rs` pins this module to [`crate::RayFlexDatapath::execute`]
//! response-for-response).
//!
//! The only representational difference between the two paths is the NaN payload: the recoded
//! format reports every NaN as the canonical quiet NaN `0x7FC0_0000`, while native x86 arithmetic
//! produces implementation-defined payloads.  Every reported field is therefore passed through
//! [`canonicalize_nan`] so degenerate beats (coplanar rays, masked-off infinite lanes) match the
//! emulated response bit-for-bit too.

use rayflex_geometry::{golden, Axis, Ray, ShearConstants, Vec3};
use rayflex_softfloat::RecF32;

use crate::io::{BoxResult, DistanceResult, RayOperand, TriangleResult};
use crate::{AccumulatorState, Opcode, RayFlexRequest, RayFlexResponse};

/// The canonical quiet-NaN bit pattern the recoded format reports for every NaN.
const CANONICAL_NAN: u32 = 0x7FC0_0000;

/// Maps any NaN to the recoded format's canonical quiet NaN; other values pass through
/// untouched (including signed zeros).
#[inline]
fn canonicalize_nan(value: f32) -> f32 {
    if value.is_nan() {
        f32::from_bits(CANONICAL_NAN)
    } else {
        value
    }
}

/// Reconstructs a geometry ray from the IO operand without recomputing any field.
fn ray_from_operand(operand: &RayOperand) -> Ray {
    Ray {
        origin: Vec3::from_array(operand.origin),
        dir: Vec3::from_array(operand.dir),
        inv_dir: Vec3::from_array(operand.inv_dir),
        t_beg: operand.t_beg,
        t_end: operand.t_end,
        shear: ShearConstants {
            kx: Axis::from_index(operand.k[0] as usize),
            ky: Axis::from_index(operand.k[1] as usize),
            kz: Axis::from_index(operand.k[2] as usize),
            sx: operand.shear[0],
            sy: operand.shear[1],
            sz: operand.shear[2],
        },
    }
}

/// Executes one beat with the native fast model, updating the shared accumulator state exactly as
/// the emulated path would.
pub(crate) fn execute_fast(
    request: &RayFlexRequest,
    acc: &mut AccumulatorState,
) -> RayFlexResponse {
    let mut response = RayFlexResponse {
        opcode: request.opcode,
        tag: request.tag,
        box_result: None,
        triangle_result: None,
        distance_result: None,
    };
    match request.opcode {
        Opcode::RayBox => {
            let ray = ray_from_operand(&request.ray);
            let hits = [
                golden::slab::ray_box(&ray, &request.boxes[0]),
                golden::slab::ray_box(&ray, &request.boxes[1]),
                golden::slab::ray_box(&ray, &request.boxes[2]),
                golden::slab::ray_box(&ray, &request.boxes[3]),
            ];
            response.box_result = Some(BoxResult {
                hit: [hits[0].hit, hits[1].hit, hits[2].hit, hits[3].hit],
                t_entry: [
                    canonicalize_nan(hits[0].t_entry),
                    canonicalize_nan(hits[1].t_entry),
                    canonicalize_nan(hits[2].t_entry),
                    canonicalize_nan(hits[3].t_entry),
                ],
                traversal_order: golden::slab::sort_boxes(&hits),
            });
        }
        Opcode::RayTriangle => {
            let ray = ray_from_operand(&request.ray);
            let hit = golden::watertight::ray_triangle(&ray, &request.triangle);
            response.triangle_result = Some(TriangleResult {
                hit: hit.hit,
                t_num: canonicalize_nan(hit.t_num),
                det: canonicalize_nan(hit.det),
                u: canonicalize_nan(hit.u),
                v: canonicalize_nan(hit.v),
                w: canonicalize_nan(hit.w),
            });
        }
        Opcode::Euclidean => {
            let partial = golden::distance::euclidean_partial(
                &request.euclidean_a,
                &request.euclidean_b,
                request.euclidean_mask,
            );
            // Native accumulation is bit-identical to the recoded stage-10 accumulate: the
            // recoded/IEEE round trip is lossless and recoded addition matches native addition
            // bit-for-bit (proptest_ieee).
            let updated = acc.euclidean.to_f32() + partial;
            acc.euclidean = if request.reset_accumulator {
                RecF32::ZERO
            } else {
                RecF32::from_f32(updated)
            };
            response.distance_result = Some(DistanceResult {
                euclidean_accumulator: canonicalize_nan(updated),
                euclidean_reset: request.reset_accumulator,
                angular_dot_product: 0.0,
                angular_norm: 0.0,
                angular_reset: false,
            });
        }
        Opcode::Cosine => {
            let a: [f32; golden::distance::COSINE_LANES] =
                core::array::from_fn(|lane| request.euclidean_a[lane]);
            let b: [f32; golden::distance::COSINE_LANES] =
                core::array::from_fn(|lane| request.euclidean_b[lane]);
            let partial =
                golden::distance::cosine_partial(&a, &b, (request.euclidean_mask & 0xFF) as u8);
            let dot = acc.angular_dot.to_f32() + partial.dot;
            let norm = acc.angular_norm.to_f32() + partial.norm_sq;
            if request.reset_accumulator {
                acc.angular_dot = RecF32::ZERO;
                acc.angular_norm = RecF32::ZERO;
            } else {
                acc.angular_dot = RecF32::from_f32(dot);
                acc.angular_norm = RecF32::from_f32(norm);
            }
            response.distance_result = Some(DistanceResult {
                euclidean_accumulator: 0.0,
                euclidean_reset: false,
                angular_dot_product: canonicalize_nan(dot),
                angular_norm: canonicalize_nan(norm),
                angular_reset: request.reset_accumulator,
            });
        }
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PipelineConfig, RayFlexDatapath};
    use rayflex_geometry::{Aabb, Triangle};

    fn sample_ray() -> Ray {
        Ray::new(Vec3::new(0.1, -0.4, -5.0), Vec3::new(0.05, 0.2, 1.0))
    }

    #[test]
    fn fast_ray_box_matches_the_emulated_path_including_degenerate_nans() {
        // A coplanar ray: inv_dir contains infinities and the slab test produces NaNs.
        let coplanar = Ray::new(Vec3::new(-5.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        let boxes = [
            Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
            Aabb::new(Vec3::new(-1.0, -1.0, 3.0), Vec3::new(1.0, 1.0, 5.0)),
            Aabb::new(Vec3::splat(f32::MAX), Vec3::splat(f32::MAX)),
            Aabb::new(Vec3::new(-2.0, -2.0, 8.0), Vec3::new(2.0, 2.0, 9.0)),
        ];
        for ray in [sample_ray(), coplanar] {
            let request = RayFlexRequest::ray_box(7, &ray, &boxes);
            let mut emulated = RayFlexDatapath::new(PipelineConfig::baseline_unified());
            let expected = emulated.execute(&request);
            let mut acc = AccumulatorState::new();
            let got = execute_fast(&request, &mut acc);
            let (expected, got) = (expected.box_result.unwrap(), got.box_result.unwrap());
            assert_eq!(expected.hit, got.hit);
            assert_eq!(expected.traversal_order, got.traversal_order);
            for slot in 0..4 {
                assert_eq!(
                    expected.t_entry[slot].to_bits(),
                    got.t_entry[slot].to_bits(),
                    "slot {slot}"
                );
            }
        }
    }

    #[test]
    fn fast_triangle_matches_the_emulated_path() {
        let tri = Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        );
        let request = RayFlexRequest::ray_triangle(3, &sample_ray(), &tri);
        let mut emulated = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let expected = emulated.execute(&request).triangle_result.unwrap();
        let mut acc = AccumulatorState::new();
        let got = execute_fast(&request, &mut acc).triangle_result.unwrap();
        assert_eq!(expected.hit, got.hit);
        for (e, g) in [
            (expected.t_num, got.t_num),
            (expected.det, got.det),
            (expected.u, got.u),
            (expected.v, got.v),
            (expected.w, got.w),
        ] {
            assert_eq!(e.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn fast_accumulators_interoperate_with_the_emulated_path() {
        // Alternate fast and emulated Euclidean beats against one accumulator stream and compare
        // with an all-emulated reference: the shared accumulator state must stay bit-compatible.
        let beats: Vec<RayFlexRequest> = (0..6)
            .map(|i| {
                let a: [f32; 16] = core::array::from_fn(|k| (i * 16 + k) as f32 * 0.37 - 3.0);
                let b: [f32; 16] = core::array::from_fn(|k| 2.0 - (k + i) as f32 * 0.21);
                RayFlexRequest::euclidean(i as u64, a, b, u16::MAX, i % 3 == 2)
            })
            .collect();
        let mut reference = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let expected: Vec<RayFlexResponse> = beats.iter().map(|b| reference.execute(b)).collect();
        let mut mixed = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let got: Vec<RayFlexResponse> = beats
            .iter()
            .enumerate()
            .map(|(i, beat)| {
                if i % 2 == 0 {
                    mixed.execute(beat)
                } else {
                    mixed.execute_batch(core::slice::from_ref(beat)).remove(0)
                }
            })
            .collect();
        assert_eq!(expected, got);
    }
}
