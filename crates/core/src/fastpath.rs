//! The batched fast model: native-`f32` beat execution, bit-identical to the recoded emulation.
//!
//! The recoded-format stage emulation ([`crate::stages`]) is the register-accurate view of the
//! datapath, but it pays for hardware faithfulness with software-emulated floating point — around
//! a microsecond per beat, which makes workload-level studies (millions of beats) simulator-bound
//! rather than hardware-bound.  This module is the throughput view: it computes each beat with
//! the *golden* native-`f32` models of `rayflex-geometry`, which are written with the same
//! operation structure and per-step rounding as the hardware stages and are proven bit-exact
//! against them by the §IV-A validation suite and the workspace property tests
//! (`crates/softfloat/tests/proptest_ieee.rs` pins every recoded operation to native `f32`;
//! `crates/core/tests/proptest_batch.rs` pins this module to [`crate::RayFlexDatapath::execute`]
//! response-for-response).
//!
//! The only representational difference between the two paths is the NaN payload: the recoded
//! format reports every NaN as the canonical quiet NaN `0x7FC0_0000`, while native x86 arithmetic
//! produces implementation-defined payloads.  Every reported field is therefore passed through
//! [`canonicalize_nan`] so degenerate beats (coplanar rays, masked-off infinite lanes) match the
//! emulated response bit-for-bit too.

use rayflex_geometry::{golden, Axis, Ray, ShearConstants, Vec3};
use rayflex_softfloat::RecF32;

use crate::io::{BoxResult, DistanceResult, RayOperand, TriangleResult};
use crate::{AccumulatorState, Opcode, RayFlexRequest, RayFlexResponse};

/// The canonical quiet-NaN bit pattern the recoded format reports for every NaN.
const CANONICAL_NAN: u32 = 0x7FC0_0000;

/// Widest lane count the batched kernels accept.  Sixteen models a 512-bit-class vector unit
/// (or a dual-issue 256-bit one): the SoA gather buffers stay within four cache lines per
/// component, and every kernel tier below it (eight, four, scalar) still exists, so narrower
/// devices and short runs degrade gracefully through the same code path.
pub const MAX_SIMD_LANES: usize = 16;

/// Narrowest lane count at which the grouped kernels engage; below this the per-beat scalar fast
/// path runs unchanged.
pub(crate) const MIN_SIMD_LANES: usize = 4;

/// Clamps a requested lane count to the supported range: zero (a degenerate policy) resolves to
/// one, and anything above [`MAX_SIMD_LANES`] saturates.  Under the `force-scalar` feature every
/// request resolves to one, so the lane kernels can never engage — the CI configuration that
/// keeps the non-SIMD path honest.
#[must_use]
pub fn clamp_simd_lanes(lanes: usize) -> usize {
    if cfg!(feature = "force-scalar") {
        1
    } else {
        lanes.clamp(1, MAX_SIMD_LANES)
    }
}

/// Branchless twin of [`golden::slab::hw_min`]: one unordered-aware comparison feeding a select,
/// which the autovectoriser lowers to `cmpps`/`blendvps` instead of the reference's branch chain.
/// Returns bit-identical results (including NaN payload propagation) for every operand class —
/// pinned against the reference in the tests below.
#[inline]
fn sel_min(a: f32, b: f32) -> f32 {
    if a.is_nan() || (!b.is_nan() && a < b) {
        a
    } else {
        b
    }
}

/// Branchless twin of [`golden::slab::hw_max`] with the same NaN-propagating select semantics.
#[inline]
fn sel_max(a: f32, b: f32) -> f32 {
    if a.is_nan() || (!b.is_nan() && a > b) {
        a
    } else {
        b
    }
}

/// Maps any NaN to the recoded format's canonical quiet NaN; other values pass through
/// untouched (including signed zeros).
#[inline]
fn canonicalize_nan(value: f32) -> f32 {
    if value.is_nan() {
        f32::from_bits(CANONICAL_NAN)
    } else {
        value
    }
}

/// Reconstructs a geometry ray from the IO operand without recomputing any field.
fn ray_from_operand(operand: &RayOperand) -> Ray {
    Ray {
        origin: Vec3::from_array(operand.origin),
        dir: Vec3::from_array(operand.dir),
        inv_dir: Vec3::from_array(operand.inv_dir),
        t_beg: operand.t_beg,
        t_end: operand.t_end,
        shear: ShearConstants {
            kx: Axis::from_index(operand.k[0] as usize),
            ky: Axis::from_index(operand.k[1] as usize),
            kz: Axis::from_index(operand.k[2] as usize),
            sx: operand.shear[0],
            sy: operand.shear[1],
            sz: operand.shear[2],
        },
    }
}

/// Executes one beat with the native fast model, updating the shared accumulator state exactly as
/// the emulated path would.
pub(crate) fn execute_fast(
    request: &RayFlexRequest,
    acc: &mut AccumulatorState,
) -> RayFlexResponse {
    let mut response = RayFlexResponse {
        opcode: request.opcode,
        tag: request.tag,
        box_result: None,
        triangle_result: None,
        distance_result: None,
    };
    match request.opcode {
        Opcode::RayBox => {
            let ray = ray_from_operand(&request.ray);
            let hits = [
                golden::slab::ray_box(&ray, &request.boxes_operand()[0]),
                golden::slab::ray_box(&ray, &request.boxes_operand()[1]),
                golden::slab::ray_box(&ray, &request.boxes_operand()[2]),
                golden::slab::ray_box(&ray, &request.boxes_operand()[3]),
            ];
            response.box_result = Some(BoxResult {
                hit: [hits[0].hit, hits[1].hit, hits[2].hit, hits[3].hit],
                t_entry: [
                    canonicalize_nan(hits[0].t_entry),
                    canonicalize_nan(hits[1].t_entry),
                    canonicalize_nan(hits[2].t_entry),
                    canonicalize_nan(hits[3].t_entry),
                ],
                traversal_order: golden::slab::sort_boxes(&hits),
            });
        }
        Opcode::RayTriangle => {
            return triangle_response_scalar(request);
        }
        Opcode::Euclidean => {
            let vector = request.vector_operand();
            let partial = golden::distance::euclidean_partial(&vector.a, &vector.b, vector.mask);
            // Native accumulation is bit-identical to the recoded stage-10 accumulate: the
            // recoded/IEEE round trip is lossless and recoded addition matches native addition
            // bit-for-bit (proptest_ieee).
            let updated = acc.euclidean.to_f32() + partial;
            acc.euclidean = if request.reset_accumulator {
                RecF32::ZERO
            } else {
                RecF32::from_f32(updated)
            };
            response.distance_result = Some(DistanceResult {
                euclidean_accumulator: canonicalize_nan(updated),
                euclidean_reset: request.reset_accumulator,
                angular_dot_product: 0.0,
                angular_norm: 0.0,
                angular_reset: false,
            });
        }
        Opcode::Cosine => {
            let vector = request.vector_operand();
            let a: [f32; golden::distance::COSINE_LANES] =
                core::array::from_fn(|lane| vector.a[lane]);
            let b: [f32; golden::distance::COSINE_LANES] =
                core::array::from_fn(|lane| vector.b[lane]);
            let partial = golden::distance::cosine_partial(&a, &b, (vector.mask & 0xFF) as u8);
            let dot = acc.angular_dot.to_f32() + partial.dot;
            let norm = acc.angular_norm.to_f32() + partial.norm_sq;
            if request.reset_accumulator {
                acc.angular_dot = RecF32::ZERO;
                acc.angular_norm = RecF32::ZERO;
            } else {
                acc.angular_dot = RecF32::from_f32(dot);
                acc.angular_norm = RecF32::from_f32(norm);
            }
            response.distance_result = Some(DistanceResult {
                euclidean_accumulator: 0.0,
                euclidean_reset: false,
                angular_dot_product: canonicalize_nan(dot),
                angular_norm: canonicalize_nan(norm),
                angular_reset: request.reset_accumulator,
            });
        }
    }
    response
}

/// The scalar ray–triangle beat, shared by [`execute_fast`] and the lane-kernel remainder path
/// so both produce the same response object field-for-field.
fn triangle_response_scalar(request: &RayFlexRequest) -> RayFlexResponse {
    let ray = ray_from_operand(&request.ray);
    let hit = golden::watertight::ray_triangle(&ray, request.triangle_operand());
    RayFlexResponse {
        opcode: request.opcode,
        tag: request.tag,
        box_result: None,
        triangle_result: Some(TriangleResult {
            hit: hit.hit,
            t_num: canonicalize_nan(hit.t_num),
            det: canonicalize_nan(hit.det),
            u: canonicalize_nan(hit.u),
            v: canonicalize_nan(hit.v),
            w: canonicalize_nan(hit.w),
        }),
        distance_result: None,
    }
}

/// Lane-batched ray–box beat: the beat's four AABBs are transposed into `[f32; 4]` component
/// lanes and every slab stage runs elementwise across them, so one beat's four box tests share
/// each subtract/multiply/select instruction instead of running the golden model four times.
///
/// Bit-identity to [`execute_fast`] holds by construction: each lane performs exactly the
/// operations of [`golden::slab::ray_box`] in the same order — the transpose only regroups
/// *independent* computations, never reassociates within one — and [`sel_min`]/[`sel_max`] are
/// operand-for-operand selects matching the reference comparators.
pub(crate) fn execute_fast_box_lanes(request: &RayFlexRequest) -> RayFlexResponse {
    const L: usize = 4;
    let boxes = request.boxes_operand();
    let origin = request.ray.origin;
    let inv_dir = request.ray.inv_dir;
    let (t_beg, t_end) = (request.ray.t_beg, request.ray.t_end);

    // Transpose: AoS boxes → per-component lanes.
    let min_x: [f32; L] = core::array::from_fn(|l| boxes[l].min.x);
    let min_y: [f32; L] = core::array::from_fn(|l| boxes[l].min.y);
    let min_z: [f32; L] = core::array::from_fn(|l| boxes[l].min.z);
    let max_x: [f32; L] = core::array::from_fn(|l| boxes[l].max.x);
    let max_y: [f32; L] = core::array::from_fn(|l| boxes[l].max.y);
    let max_z: [f32; L] = core::array::from_fn(|l| boxes[l].max.z);

    // Stages 2 and 3 — translate, then scale by the inverse direction.
    let t_lo_x: [f32; L] = core::array::from_fn(|l| (min_x[l] - origin[0]) * inv_dir[0]);
    let t_lo_y: [f32; L] = core::array::from_fn(|l| (min_y[l] - origin[1]) * inv_dir[1]);
    let t_lo_z: [f32; L] = core::array::from_fn(|l| (min_z[l] - origin[2]) * inv_dir[2]);
    let t_hi_x: [f32; L] = core::array::from_fn(|l| (max_x[l] - origin[0]) * inv_dir[0]);
    let t_hi_y: [f32; L] = core::array::from_fn(|l| (max_y[l] - origin[1]) * inv_dir[1]);
    let t_hi_z: [f32; L] = core::array::from_fn(|l| (max_z[l] - origin[2]) * inv_dir[2]);

    // Stage 4 — per-axis near/far selection and interval intersection with the ray extent.
    let near_x: [f32; L] = core::array::from_fn(|l| sel_min(t_lo_x[l], t_hi_x[l]));
    let near_y: [f32; L] = core::array::from_fn(|l| sel_min(t_lo_y[l], t_hi_y[l]));
    let near_z: [f32; L] = core::array::from_fn(|l| sel_min(t_lo_z[l], t_hi_z[l]));
    let far_x: [f32; L] = core::array::from_fn(|l| sel_max(t_lo_x[l], t_hi_x[l]));
    let far_y: [f32; L] = core::array::from_fn(|l| sel_max(t_lo_y[l], t_hi_y[l]));
    let far_z: [f32; L] = core::array::from_fn(|l| sel_max(t_lo_z[l], t_hi_z[l]));

    let t_entry: [f32; L] =
        core::array::from_fn(|l| sel_max(sel_max(near_x[l], near_y[l]), sel_max(near_z[l], t_beg)));
    let t_exit: [f32; L] =
        core::array::from_fn(|l| sel_min(sel_min(far_x[l], far_y[l]), sel_min(far_z[l], t_end)));

    let hits: [golden::slab::BoxHit; L] = core::array::from_fn(|l| golden::slab::BoxHit {
        hit: t_entry[l] <= t_exit[l],
        t_entry: t_entry[l],
        t_exit: t_exit[l],
    });
    RayFlexResponse {
        opcode: request.opcode,
        tag: request.tag,
        box_result: Some(BoxResult {
            hit: core::array::from_fn(|l| hits[l].hit),
            t_entry: core::array::from_fn(|l| canonicalize_nan(hits[l].t_entry)),
            traversal_order: golden::slab::sort_boxes(&hits),
        }),
        triangle_result: None,
        distance_result: None,
    }
}

/// `L`-lane ray–box kernel over `L / 4` adjacent beats: lanes `4·b .. 4·b + 3` carry beat `b`'s
/// four AABBs against its own ray, so one pass over the slab stages serves every beat in the
/// group.  Each lane performs exactly the operations of [`golden::slab::ray_box`] in the same
/// order — per-lane ray operands simply vary across the quartets — and each beat's traversal
/// order is sorted from its own four lanes, so the responses are bit-identical to running
/// [`execute_fast_box_lanes`] on each beat alone.
pub(crate) fn execute_fast_box_lanes_group<const L: usize>(
    beats: &[RayFlexRequest],
    responses: &mut Vec<RayFlexResponse>,
) {
    debug_assert_eq!(beats.len() * 4, L);
    let request = |l: usize| &beats[l / 4];

    // Transpose: each lane's box component against its own ray's origin/extent lanes.
    let min_x: [f32; L] = core::array::from_fn(|l| request(l).boxes_operand()[l % 4].min.x);
    let min_y: [f32; L] = core::array::from_fn(|l| request(l).boxes_operand()[l % 4].min.y);
    let min_z: [f32; L] = core::array::from_fn(|l| request(l).boxes_operand()[l % 4].min.z);
    let max_x: [f32; L] = core::array::from_fn(|l| request(l).boxes_operand()[l % 4].max.x);
    let max_y: [f32; L] = core::array::from_fn(|l| request(l).boxes_operand()[l % 4].max.y);
    let max_z: [f32; L] = core::array::from_fn(|l| request(l).boxes_operand()[l % 4].max.z);
    let org_x: [f32; L] = core::array::from_fn(|l| request(l).ray.origin[0]);
    let org_y: [f32; L] = core::array::from_fn(|l| request(l).ray.origin[1]);
    let org_z: [f32; L] = core::array::from_fn(|l| request(l).ray.origin[2]);
    let inv_x: [f32; L] = core::array::from_fn(|l| request(l).ray.inv_dir[0]);
    let inv_y: [f32; L] = core::array::from_fn(|l| request(l).ray.inv_dir[1]);
    let inv_z: [f32; L] = core::array::from_fn(|l| request(l).ray.inv_dir[2]);
    let t_beg: [f32; L] = core::array::from_fn(|l| request(l).ray.t_beg);
    let t_end: [f32; L] = core::array::from_fn(|l| request(l).ray.t_end);

    // Stages 2 and 3 — translate, then scale by the inverse direction.
    let t_lo_x: [f32; L] = core::array::from_fn(|l| (min_x[l] - org_x[l]) * inv_x[l]);
    let t_lo_y: [f32; L] = core::array::from_fn(|l| (min_y[l] - org_y[l]) * inv_y[l]);
    let t_lo_z: [f32; L] = core::array::from_fn(|l| (min_z[l] - org_z[l]) * inv_z[l]);
    let t_hi_x: [f32; L] = core::array::from_fn(|l| (max_x[l] - org_x[l]) * inv_x[l]);
    let t_hi_y: [f32; L] = core::array::from_fn(|l| (max_y[l] - org_y[l]) * inv_y[l]);
    let t_hi_z: [f32; L] = core::array::from_fn(|l| (max_z[l] - org_z[l]) * inv_z[l]);

    // Stage 4 — per-axis near/far selection and interval intersection with the ray extent.
    let near_x: [f32; L] = core::array::from_fn(|l| sel_min(t_lo_x[l], t_hi_x[l]));
    let near_y: [f32; L] = core::array::from_fn(|l| sel_min(t_lo_y[l], t_hi_y[l]));
    let near_z: [f32; L] = core::array::from_fn(|l| sel_min(t_lo_z[l], t_hi_z[l]));
    let far_x: [f32; L] = core::array::from_fn(|l| sel_max(t_lo_x[l], t_hi_x[l]));
    let far_y: [f32; L] = core::array::from_fn(|l| sel_max(t_lo_y[l], t_hi_y[l]));
    let far_z: [f32; L] = core::array::from_fn(|l| sel_max(t_lo_z[l], t_hi_z[l]));

    let t_entry: [f32; L] = core::array::from_fn(|l| {
        sel_max(sel_max(near_x[l], near_y[l]), sel_max(near_z[l], t_beg[l]))
    });
    let t_exit: [f32; L] =
        core::array::from_fn(|l| sel_min(sel_min(far_x[l], far_y[l]), sel_min(far_z[l], t_end[l])));

    for (beat, request) in beats.iter().enumerate() {
        let hits: [golden::slab::BoxHit; 4] = core::array::from_fn(|slot| {
            let l = beat * 4 + slot;
            golden::slab::BoxHit {
                hit: t_entry[l] <= t_exit[l],
                t_entry: t_entry[l],
                t_exit: t_exit[l],
            }
        });
        responses.push(RayFlexResponse {
            opcode: request.opcode,
            tag: request.tag,
            box_result: Some(BoxResult {
                hit: core::array::from_fn(|slot| hits[slot].hit),
                t_entry: core::array::from_fn(|slot| canonicalize_nan(hits[slot].t_entry)),
                traversal_order: golden::slab::sort_boxes(&hits),
            }),
            triangle_result: None,
            distance_result: None,
        });
    }
}

/// Lane-batched ray–triangle kernel over `L` adjacent beats.  The per-ray axis renaming and
/// vertex translation are gathered scalar (they need per-lane dynamic indexing), after which
/// every watertight stage (Fig. 4b steps 4–9) runs elementwise over `[f32; L]` arrays.
///
/// Each lane performs exactly the operations of [`golden::watertight::ray_triangle`] in the same
/// order, so the results are bit-identical to the scalar path for every lane independently.
fn triangle_lanes<const L: usize>(
    requests: &[RayFlexRequest],
    responses: &mut Vec<RayFlexResponse>,
) {
    debug_assert_eq!(requests.len(), L);

    // Gather — per-lane translate (stage 2) and axis selection into SoA lanes.
    let mut a_kx = [0.0f32; L];
    let mut a_ky = [0.0f32; L];
    let mut a_kz = [0.0f32; L];
    let mut b_kx = [0.0f32; L];
    let mut b_ky = [0.0f32; L];
    let mut b_kz = [0.0f32; L];
    let mut c_kx = [0.0f32; L];
    let mut c_ky = [0.0f32; L];
    let mut c_kz = [0.0f32; L];
    let mut sx = [0.0f32; L];
    let mut sy = [0.0f32; L];
    let mut sz = [0.0f32; L];
    for lane in 0..L {
        let request = &requests[lane];
        let origin = Vec3::from_array(request.ray.origin);
        let kx = Axis::from_index(request.ray.k[0] as usize);
        let ky = Axis::from_index(request.ray.k[1] as usize);
        let kz = Axis::from_index(request.ray.k[2] as usize);
        let triangle = request.triangle_operand();
        let a = triangle.v0 - origin;
        let b = triangle.v1 - origin;
        let c = triangle.v2 - origin;
        a_kx[lane] = a.axis(kx);
        a_ky[lane] = a.axis(ky);
        a_kz[lane] = a.axis(kz);
        b_kx[lane] = b.axis(kx);
        b_ky[lane] = b.axis(ky);
        b_kz[lane] = b.axis(kz);
        c_kx[lane] = c.axis(kx);
        c_ky[lane] = c.axis(ky);
        c_kz[lane] = c.axis(kz);
        sx[lane] = request.ray.shear[0];
        sy[lane] = request.ray.shear[1];
        sz[lane] = request.ray.shear[2];
    }

    // Stage 3 — shear/scale products.
    let sx_az: [f32; L] = core::array::from_fn(|l| sx[l] * a_kz[l]);
    let sy_az: [f32; L] = core::array::from_fn(|l| sy[l] * a_kz[l]);
    let az: [f32; L] = core::array::from_fn(|l| sz[l] * a_kz[l]);
    let sx_bz: [f32; L] = core::array::from_fn(|l| sx[l] * b_kz[l]);
    let sy_bz: [f32; L] = core::array::from_fn(|l| sy[l] * b_kz[l]);
    let bz: [f32; L] = core::array::from_fn(|l| sz[l] * b_kz[l]);
    let sx_cz: [f32; L] = core::array::from_fn(|l| sx[l] * c_kz[l]);
    let sy_cz: [f32; L] = core::array::from_fn(|l| sy[l] * c_kz[l]);
    let cz: [f32; L] = core::array::from_fn(|l| sz[l] * c_kz[l]);

    // Stage 4 — complete the shear.
    let ax: [f32; L] = core::array::from_fn(|l| a_kx[l] - sx_az[l]);
    let ay: [f32; L] = core::array::from_fn(|l| a_ky[l] - sy_az[l]);
    let bx: [f32; L] = core::array::from_fn(|l| b_kx[l] - sx_bz[l]);
    let by: [f32; L] = core::array::from_fn(|l| b_ky[l] - sy_bz[l]);
    let cx: [f32; L] = core::array::from_fn(|l| c_kx[l] - sx_cz[l]);
    let cy: [f32; L] = core::array::from_fn(|l| c_ky[l] - sy_cz[l]);

    // Stages 5 and 6 — scaled barycentric coordinates.
    let u: [f32; L] = core::array::from_fn(|l| cy[l] * bx[l] - cx[l] * by[l]);
    let v: [f32; L] = core::array::from_fn(|l| ay[l] * cx[l] - ax[l] * cy[l]);
    let w: [f32; L] = core::array::from_fn(|l| by[l] * ax[l] - bx[l] * ay[l]);

    // Stages 7–9 — determinant and scaled hit distance.
    let det: [f32; L] = core::array::from_fn(|l| (u[l] + v[l]) + w[l]);
    let t_num: [f32; L] = core::array::from_fn(|l| (u[l] * az[l] + v[l] * bz[l]) + w[l] * cz[l]);

    // One trusted-length extend instead of per-lane pushes: the capacity check happens once per
    // issue, and each response is constructed in place in the buffer.
    responses.extend((0..L).map(|lane| {
        let hit = u[lane] >= 0.0
            && v[lane] >= 0.0
            && w[lane] >= 0.0
            && det[lane] > 0.0
            && t_num[lane] >= 0.0;
        RayFlexResponse {
            opcode: requests[lane].opcode,
            tag: requests[lane].tag,
            box_result: None,
            triangle_result: Some(TriangleResult {
                hit,
                t_num: canonicalize_nan(t_num[lane]),
                det: canonicalize_nan(det[lane]),
                u: canonicalize_nan(u[lane]),
                v: canonicalize_nan(v[lane]),
                w: canonicalize_nan(w[lane]),
            }),
            distance_result: None,
        }
    }));
}

/// Executes a run of adjacent ray–triangle beats through the widest lane kernel that fits:
/// groups of eight, then four, then the scalar remainder.  Responses are appended in request
/// order and are bit-identical to the per-beat path regardless of how the run splits.
pub(crate) fn execute_fast_triangles(
    requests: &[RayFlexRequest],
    responses: &mut Vec<RayFlexResponse>,
) {
    let mut rest = requests;
    while rest.len() >= 16 {
        triangle_lanes::<16>(&rest[..16], responses);
        rest = &rest[16..];
    }
    while rest.len() >= 8 {
        triangle_lanes::<8>(&rest[..8], responses);
        rest = &rest[8..];
    }
    while rest.len() >= MIN_SIMD_LANES {
        triangle_lanes::<4>(&rest[..4], responses);
        rest = &rest[4..];
    }
    for request in rest {
        responses.push(triangle_response_scalar(request));
    }
}

/// Lane-occupancy accounting of one same-opcode triangle run dispatched at `lanes` width,
/// mirroring the kernel tiering of [`execute_fast_triangles`]: sixteen-wide issues, then
/// eight-wide, then four-wide, then the scalar remainder.  Returns `(busy, slots)`, where
/// `busy` counts one lane per beat and `slots` charges every issue — vector or scalar — the
/// full dispatch width, since a scalar remainder beat still occupies an issue slot the vector
/// unit idles through.
#[must_use]
pub fn triangle_lane_accounting(run: usize, lanes: usize) -> (u64, u64) {
    debug_assert!(lanes >= MIN_SIMD_LANES);
    let mut rest = run;
    let mut issues = 0;
    for width in [16, 8] {
        if lanes >= width {
            issues += rest / width;
            rest %= width;
        }
    }
    issues += rest / MIN_SIMD_LANES;
    rest %= MIN_SIMD_LANES;
    issues += rest;
    (run as u64, (issues * lanes) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PipelineConfig, RayFlexDatapath};
    use rayflex_geometry::{Aabb, Triangle};

    fn sample_ray() -> Ray {
        Ray::new(Vec3::new(0.1, -0.4, -5.0), Vec3::new(0.05, 0.2, 1.0))
    }

    #[test]
    fn triangle_lane_accounting_mirrors_the_kernel_tiers() {
        // Eight lanes: 19 beats = two 8-wide issues + three scalar → 5 issues.
        assert_eq!(triangle_lane_accounting(19, 8), (19, 5 * 8));
        // Four lanes: 19 beats = four 4-wide issues + three scalar → 7 issues.
        assert_eq!(triangle_lane_accounting(19, 4), (19, 7 * 4));
        // Sixteen lanes: 19 beats = one 16-wide issue + three scalar → 4 issues.
        assert_eq!(triangle_lane_accounting(19, 16), (19, 4 * 16));
        // Sixteen lanes: 13 beats = one 8-wide + one 4-wide + one scalar → 3 issues.
        assert_eq!(triangle_lane_accounting(13, 16), (13, 3 * 16));
        // A full-width run is perfectly occupied.
        assert_eq!(triangle_lane_accounting(8, 8), (8, 8));
        assert_eq!(triangle_lane_accounting(16, 16), (16, 16));
        assert_eq!(triangle_lane_accounting(0, 8), (0, 0));
    }

    #[test]
    fn fast_ray_box_matches_the_emulated_path_including_degenerate_nans() {
        // A coplanar ray: inv_dir contains infinities and the slab test produces NaNs.
        let coplanar = Ray::new(Vec3::new(-5.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        let boxes = [
            Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
            Aabb::new(Vec3::new(-1.0, -1.0, 3.0), Vec3::new(1.0, 1.0, 5.0)),
            Aabb::new(Vec3::splat(f32::MAX), Vec3::splat(f32::MAX)),
            Aabb::new(Vec3::new(-2.0, -2.0, 8.0), Vec3::new(2.0, 2.0, 9.0)),
        ];
        for ray in [sample_ray(), coplanar] {
            let request = RayFlexRequest::ray_box(7, &ray, &boxes);
            let mut emulated = RayFlexDatapath::new(PipelineConfig::baseline_unified());
            let expected = emulated.execute(&request);
            let mut acc = AccumulatorState::new();
            let got = execute_fast(&request, &mut acc);
            let (expected, got) = (expected.box_result.unwrap(), got.box_result.unwrap());
            assert_eq!(expected.hit, got.hit);
            assert_eq!(expected.traversal_order, got.traversal_order);
            for slot in 0..4 {
                assert_eq!(
                    expected.t_entry[slot].to_bits(),
                    got.t_entry[slot].to_bits(),
                    "slot {slot}"
                );
            }
        }
    }

    #[test]
    fn fast_triangle_matches_the_emulated_path() {
        let tri = Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        );
        let request = RayFlexRequest::ray_triangle(3, &sample_ray(), &tri);
        let mut emulated = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let expected = emulated.execute(&request).triangle_result.unwrap();
        let mut acc = AccumulatorState::new();
        let got = execute_fast(&request, &mut acc).triangle_result.unwrap();
        assert_eq!(expected.hit, got.hit);
        for (e, g) in [
            (expected.t_num, got.t_num),
            (expected.det, got.det),
            (expected.u, got.u),
            (expected.v, got.v),
            (expected.w, got.w),
        ] {
            assert_eq!(e.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn branchless_selects_match_the_golden_comparators_for_every_operand_class() {
        // Two distinct NaN payloads so operand *selection* (not just NaN-ness) is observable.
        let nan_a = f32::from_bits(0x7FC0_0001);
        let nan_b = f32::from_bits(0xFFC0_0002);
        let values = [
            -1.5f32,
            0.0,
            -0.0,
            2.5,
            f32::INFINITY,
            f32::NEG_INFINITY,
            nan_a,
            nan_b,
        ];
        for &a in &values {
            for &b in &values {
                assert_eq!(
                    sel_min(a, b).to_bits(),
                    golden::slab::hw_min(a, b).to_bits(),
                    "min({a}, {b})"
                );
                assert_eq!(
                    sel_max(a, b).to_bits(),
                    golden::slab::hw_max(a, b).to_bits(),
                    "max({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn lane_batched_box_kernel_is_bit_identical_to_the_scalar_fast_path() {
        let coplanar = Ray::new(Vec3::new(-5.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        let boxes = [
            Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
            Aabb::new(Vec3::new(-1.0, -1.0, 3.0), Vec3::new(1.0, 1.0, 5.0)),
            Aabb::new(Vec3::splat(f32::MAX), Vec3::splat(f32::MAX)),
            Aabb::new(Vec3::new(-2.0, -2.0, 8.0), Vec3::new(2.0, 2.0, 9.0)),
        ];
        for (tag, ray) in [sample_ray(), coplanar].into_iter().enumerate() {
            let request = RayFlexRequest::ray_box(tag as u64, &ray, &boxes);
            let mut acc = AccumulatorState::new();
            let expected = execute_fast(&request, &mut acc);
            let got = execute_fast_box_lanes(&request);
            assert_eq!(expected.tag, got.tag);
            let (expected, got) = (expected.box_result.unwrap(), got.box_result.unwrap());
            assert_eq!(expected.hit, got.hit);
            assert_eq!(expected.traversal_order, got.traversal_order);
            for slot in 0..4 {
                assert_eq!(
                    expected.t_entry[slot].to_bits(),
                    got.t_entry[slot].to_bits(),
                    "slot {slot}"
                );
            }
        }
    }

    #[test]
    fn lane_batched_triangle_kernel_is_bit_identical_for_every_group_split() {
        // Mixed dominant axes (z, x, y) exercise the per-lane axis-renaming gather; the coplanar
        // ray exercises the det == 0 miss path.
        let rays = [
            sample_ray(),
            Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)),
            Ray::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0)),
            Ray::new(Vec3::new(-5.0, 0.0, 3.0), Vec3::new(1.0, 0.0, 0.0)),
        ];
        let triangles = [
            Triangle::new(
                Vec3::new(-1.0, -1.0, 3.0),
                Vec3::new(1.0, -1.0, 3.0),
                Vec3::new(0.0, 1.0, 3.0),
            ),
            Triangle::new(
                Vec3::new(3.0, -1.0, -1.0),
                Vec3::new(3.0, 1.0, -1.0),
                Vec3::new(3.0, 0.0, 1.0),
            ),
            Triangle::new(
                Vec3::new(-1.0, 3.0, -1.0),
                Vec3::new(0.0, 3.0, 1.0),
                Vec3::new(1.0, 3.0, -1.0),
            ),
        ];
        // 1..=9 covers the scalar remainder, the 4-lane kernel, the 8-lane kernel and a
        // split (8 + 1) in one sweep.
        for group in 1..=9usize {
            let requests: Vec<RayFlexRequest> = (0..group)
                .map(|i| {
                    RayFlexRequest::ray_triangle(
                        i as u64,
                        &rays[i % rays.len()],
                        &triangles[i % triangles.len()],
                    )
                })
                .collect();
            let mut got = Vec::new();
            execute_fast_triangles(&requests, &mut got);
            assert_eq!(got.len(), group);
            for (request, got) in requests.iter().zip(&got) {
                let mut acc = AccumulatorState::new();
                let expected = execute_fast(request, &mut acc);
                assert_eq!(expected.tag, got.tag);
                let (e, g) = (
                    expected.triangle_result.unwrap(),
                    got.triangle_result.unwrap(),
                );
                assert_eq!(e.hit, g.hit, "group {group} tag {}", got.tag);
                for (e, g) in [
                    (e.t_num, g.t_num),
                    (e.det, g.det),
                    (e.u, g.u),
                    (e.v, g.v),
                    (e.w, g.w),
                ] {
                    assert_eq!(e.to_bits(), g.to_bits(), "group {group} tag {}", got.tag);
                }
            }
        }
    }

    #[test]
    fn lane_clamp_resolves_degenerate_and_oversized_requests() {
        if cfg!(feature = "force-scalar") {
            for lanes in [0, 1, 4, 8, 64] {
                assert_eq!(clamp_simd_lanes(lanes), 1);
            }
        } else {
            assert_eq!(clamp_simd_lanes(0), 1, "zero lanes resolves to scalar");
            assert_eq!(clamp_simd_lanes(1), 1);
            assert_eq!(clamp_simd_lanes(4), 4);
            assert_eq!(clamp_simd_lanes(8), 8);
            assert_eq!(
                clamp_simd_lanes(64),
                MAX_SIMD_LANES,
                "saturates at the widest kernel"
            );
        }
    }

    #[test]
    fn fast_accumulators_interoperate_with_the_emulated_path() {
        // Alternate fast and emulated Euclidean beats against one accumulator stream and compare
        // with an all-emulated reference: the shared accumulator state must stay bit-compatible.
        let beats: Vec<RayFlexRequest> = (0..6)
            .map(|i| {
                let a: [f32; 16] = core::array::from_fn(|k| (i * 16 + k) as f32 * 0.37 - 3.0);
                let b: [f32; 16] = core::array::from_fn(|k| 2.0 - (k + i) as f32 * 0.21);
                RayFlexRequest::euclidean(i as u64, a, b, u16::MAX, i % 3 == 2)
            })
            .collect();
        let mut reference = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let expected: Vec<RayFlexResponse> = beats.iter().map(|b| reference.execute(b)).collect();
        let mut mixed = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let got: Vec<RayFlexResponse> = beats
            .iter()
            .enumerate()
            .map(|(i, beat)| {
                if i % 2 == 0 {
                    mixed.execute(beat)
                } else {
                    mixed.execute_batch(core::slice::from_ref(beat)).remove(0)
                }
            })
            .collect();
        assert_eq!(expected, got);
    }
}
