//! Activity recording: which hardware resources toggle when a beat flows through the pipeline.
//!
//! The paper measures power by replaying VCD stimulus collected from 100-case testbenches through
//! the synthesis tool.  The Rust reproduction instead counts resource activity analytically:
//! every issued beat exercises the functional units its operation maps to (Fig. 4c / Fig. 6c) and
//! writes every pipeline-register bit that dead-node elimination kept for the configuration —
//! including the register banks belonging to *other* operations, which is exactly why the
//! extended datapath burns ~20 % more power than the baseline even when running plain ray–box or
//! ray–triangle work (§VII-B).

use rayflex_hw::{ActivityTrace, FuKind};

use crate::inventory::{op_fu_requirements, op_squarer_capable_multipliers, squarer_count};
use crate::stages::STAGE_COUNT;
use crate::{liveness, Opcode, PipelineConfig};

/// Records the activity of one beat of `opcode` flowing through a pipeline built for `config`.
pub fn record_op(trace: &mut ActivityTrace, opcode: Opcode, config: &PipelineConfig) {
    debug_assert!(config.supports(opcode));
    // Format converters at the boundary stages convert this operation's IO fields.
    trace.record_fu(
        1,
        FuKind::FormatConverterIn,
        u64::from(op_input_fields(opcode)),
    );
    trace.record_fu(
        STAGE_COUNT,
        FuKind::FormatConverterOut,
        u64::from(op_output_fields(opcode)),
    );
    // Functional units of the intermediate stages.
    for stage in 2..STAGE_COUNT {
        for (kind, count) in op_fu_requirements(opcode, stage) {
            if kind == FuKind::Multiplier {
                // When the configuration provisions specialised squarers for this operation's
                // same-operand multiplications, the activity lands on the squarers instead.
                let squarer_capable = op_squarer_capable_multipliers(opcode, stage);
                let specialised = squarer_capable.min(squarer_count(config, stage));
                trace.record_fu(stage, FuKind::Squarer, u64::from(specialised));
                trace.record_fu(stage, FuKind::Multiplier, u64::from(count - specialised));
            } else {
                trace.record_fu(stage, kind, u64::from(count));
            }
        }
    }
    // Every live pipeline-register bit of the configuration is written each beat: the stage logic
    // assigns the whole Shared RayFlex Data Structure to its output register regardless of which
    // operation is in flight.
    for stage in 1..=STAGE_COUNT {
        trace.record_register_write(
            stage,
            u64::from(liveness::live_register_bits(config, stage)),
        );
    }
    // Accumulator registers only toggle for the distance operations that own them.
    match opcode {
        Opcode::Euclidean => trace.record_accumulator_write(10, 33),
        Opcode::Cosine => trace.record_accumulator_write(9, 66),
        _ => {}
    }
}

/// Records a full-throughput workload: `beats` consecutive beats of `opcode` (the stimulus shape
/// used by the paper's Fig. 8/Fig. 9 power measurements) plus the pipeline fill/drain cycles.
#[must_use]
pub fn full_throughput_trace(opcode: Opcode, config: &PipelineConfig, beats: u64) -> ActivityTrace {
    let mut trace = ActivityTrace::new();
    for _ in 0..beats {
        record_op(&mut trace, opcode, config);
        trace.advance_cycle();
    }
    trace.advance_cycles(STAGE_COUNT as u64);
    trace
}

/// Number of FP32 IO input fields one operation presents to the stage-1 converters.
#[must_use]
pub fn op_input_fields(opcode: Opcode) -> u32 {
    match opcode {
        Opcode::RayBox => 16 + 24,
        Opcode::RayTriangle => 16 + 9,
        Opcode::Euclidean => 32,
        Opcode::Cosine => 16,
    }
}

/// Number of FP32 IO output fields one operation reads back through the stage-11 converters.
#[must_use]
pub fn op_output_fields(opcode: Opcode) -> u32 {
    match opcode {
        Opcode::RayBox => 4,
        Opcode::RayTriangle => 2,
        Opcode::Euclidean => 1,
        Opcode::Cosine => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventory::{input_converters, output_converters};

    #[test]
    fn ray_box_beats_exercise_the_fig_4c_units() {
        let mut trace = ActivityTrace::new();
        record_op(
            &mut trace,
            Opcode::RayBox,
            &PipelineConfig::baseline_unified(),
        );
        trace.advance_cycle();
        assert_eq!(trace.fu_ops(2, FuKind::Adder), 24);
        assert_eq!(trace.fu_ops(3, FuKind::Multiplier), 24);
        assert_eq!(trace.fu_ops(4, FuKind::Comparator), 40);
        assert_eq!(trace.fu_ops(10, FuKind::QuadSortNetwork), 2);
        assert_eq!(
            trace.fu_ops(5, FuKind::Multiplier),
            0,
            "blank stage for ray-box"
        );
        assert_eq!(trace.fu_ops(1, FuKind::FormatConverterIn), 40);
    }

    #[test]
    fn register_writes_cover_every_live_bit_of_the_configuration() {
        let config = PipelineConfig::extended_unified();
        let mut trace = ActivityTrace::new();
        record_op(&mut trace, Opcode::RayBox, &config);
        let expected: u64 = (1..=STAGE_COUNT)
            .map(|s| u64::from(liveness::live_register_bits(&config, s)))
            .sum();
        assert_eq!(trace.total_register_bit_writes(), expected);
        // The same beat on the baseline writes fewer bits — the source of the extended design's
        // power overhead on baseline operations.
        let mut baseline_trace = ActivityTrace::new();
        record_op(
            &mut baseline_trace,
            Opcode::RayBox,
            &PipelineConfig::baseline_unified(),
        );
        assert!(baseline_trace.total_register_bit_writes() < expected);
    }

    #[test]
    fn euclidean_activity_moves_to_squarers_in_the_disjoint_design() {
        let unified = PipelineConfig::extended_unified();
        let disjoint = PipelineConfig::extended_disjoint();
        let mut uni_trace = ActivityTrace::new();
        let mut dis_trace = ActivityTrace::new();
        record_op(&mut uni_trace, Opcode::Euclidean, &unified);
        record_op(&mut dis_trace, Opcode::Euclidean, &disjoint);
        assert_eq!(uni_trace.fu_ops(3, FuKind::Multiplier), 16);
        assert_eq!(uni_trace.fu_ops(3, FuKind::Squarer), 0);
        assert_eq!(dis_trace.fu_ops(3, FuKind::Multiplier), 0);
        assert_eq!(dis_trace.fu_ops(3, FuKind::Squarer), 16);
        // The perturbed design loses the specialisation again.
        let mut pert_trace = ActivityTrace::new();
        record_op(
            &mut pert_trace,
            Opcode::Euclidean,
            &disjoint.with_squarer_perturbation(true),
        );
        assert_eq!(pert_trace.fu_ops(3, FuKind::Squarer), 0);
    }

    #[test]
    fn cosine_specialises_only_half_its_multipliers() {
        let disjoint = PipelineConfig::extended_disjoint();
        let mut trace = ActivityTrace::new();
        record_op(&mut trace, Opcode::Cosine, &disjoint);
        assert_eq!(trace.fu_ops(3, FuKind::Squarer), 8);
        assert_eq!(trace.fu_ops(3, FuKind::Multiplier), 8);
        assert_eq!(trace.total_accumulator_bit_writes(), 66);
    }

    #[test]
    fn full_throughput_trace_covers_the_requested_beats() {
        let trace = full_throughput_trace(
            Opcode::RayTriangle,
            &PipelineConfig::baseline_unified(),
            100,
        );
        assert_eq!(trace.cycles(), 100 + STAGE_COUNT as u64);
        assert_eq!(trace.fu_ops(2, FuKind::Adder), 900);
        assert_eq!(trace.fu_ops(10, FuKind::Comparator), 500);
    }

    #[test]
    fn converter_usage_reflects_io_field_counts() {
        assert!(
            op_input_fields(Opcode::RayBox)
                <= input_converters(&PipelineConfig::baseline_unified())
        );
        assert!(
            op_output_fields(Opcode::Cosine)
                <= output_converters(&PipelineConfig::extended_unified())
        );
    }
}
