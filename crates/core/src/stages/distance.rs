//! Stage logic of the extended datapath's Euclidean- and cosine-distance operations
//! (paper §V-A, Fig. 6).

use rayflex_softfloat::RecF32;

use crate::io::{COSINE_LANES, EUCLIDEAN_LANES};
use crate::{AccumulatorState, SharedRayFlexData};

/// Applies the Euclidean-distance portion of one intermediate stage.
pub(super) fn apply_euclidean(
    stage: usize,
    data: &mut SharedRayFlexData,
    acc: &mut AccumulatorState,
) {
    match stage {
        2 => euclidean_differences(data),
        3 => euclidean_squares(data),
        4 => reduce_euclidean(data, 16),
        6 => reduce_euclidean(data, 8),
        8 => reduce_euclidean(data, 4),
        9 => reduce_euclidean(data, 2),
        10 => {
            // Stage 10 — accumulate the beat's partial sum (1 addition into the accumulator
            // register added by the extended design).
            data.euclidean_accumulator =
                acc.accumulate_euclidean(data.euclid_work[0], data.reset_accumulator);
        }
        _ => {}
    }
}

/// Applies the cosine-distance portion of one intermediate stage.
pub(super) fn apply_cosine(stage: usize, data: &mut SharedRayFlexData, acc: &mut AccumulatorState) {
    match stage {
        3 => cosine_products(data),
        4 => reduce_cosine(data, 8),
        6 => reduce_cosine(data, 4),
        8 => reduce_cosine(data, 2),
        9 => {
            // Stage 9 — accumulate both partial sums (2 additions into the accumulator registers
            // added by the extended design).
            let (dot, norm) = acc.accumulate_cosine(
                data.cos_dot_work[0],
                data.cos_norm_work[0],
                data.reset_accumulator,
            );
            data.angular_dot = dot;
            data.angular_norm = norm;
        }
        _ => {}
    }
}

/// Stage 2 — element-wise differences of the two vectors (16 subtractions, Fig. 6a step 1),
/// zero-gated by the lane mask.
fn euclidean_differences(data: &mut SharedRayFlexData) {
    for lane in 0..EUCLIDEAN_LANES {
        data.euclid_work[lane] = if data.vec_mask & (1 << lane) != 0 {
            data.vec_a[lane].sub(data.vec_b[lane])
        } else {
            RecF32::ZERO
        };
    }
}

/// Stage 3 — element-wise squares of the differences (16 multiplications, Fig. 6a step 2).
/// In the disjoint-pipeline design these multipliers see both operands from the same wire, which
/// is what lets the synthesiser specialise them into squarers (§VII-B).
fn euclidean_squares(data: &mut SharedRayFlexData) {
    for lane in 0..EUCLIDEAN_LANES {
        data.euclid_work[lane] = data.euclid_work[lane].square();
    }
}

/// Pairwise reduction step of the Euclidean sum: `width` live lanes become `width / 2`.
fn reduce_euclidean(data: &mut SharedRayFlexData, width: usize) {
    for i in 0..width / 2 {
        data.euclid_work[i] = data.euclid_work[2 * i].add(data.euclid_work[2 * i + 1]);
    }
}

/// Stage 3 — element-wise products of query and candidate plus element-wise squares of the
/// candidate (8 + 8 multiplications, Fig. 6b steps 1 and 2), zero-gated by the lane mask.
fn cosine_products(data: &mut SharedRayFlexData) {
    for lane in 0..COSINE_LANES {
        if data.vec_mask & (1 << lane) != 0 {
            data.cos_dot_work[lane] = data.vec_a[lane].mul(data.vec_b[lane]);
            data.cos_norm_work[lane] = data.vec_b[lane].square();
        } else {
            data.cos_dot_work[lane] = RecF32::ZERO;
            data.cos_norm_work[lane] = RecF32::ZERO;
        }
    }
}

/// Pairwise reduction step of both cosine sums: `width` live lanes become `width / 2`.
fn reduce_cosine(data: &mut SharedRayFlexData, width: usize) {
    for i in 0..width / 2 {
        data.cos_dot_work[i] = data.cos_dot_work[2 * i].add(data.cos_dot_work[2 * i + 1]);
        data.cos_norm_work[i] = data.cos_norm_work[2 * i].add(data.cos_norm_work[2 * i + 1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::apply_all_middle_stages;
    use crate::RayFlexRequest;
    use rayflex_geometry::golden;

    #[test]
    fn euclidean_beat_matches_the_golden_partial_sum() {
        let a: [f32; 16] = core::array::from_fn(|i| i as f32 * 0.75 - 3.0);
        let b: [f32; 16] = core::array::from_fn(|i| 5.0 - i as f32 * 0.25);
        let mask = 0b1111_0110_1011_1111u16;
        let request = RayFlexRequest::euclidean(0, a, b, mask, true);
        let data = SharedRayFlexData::from_request(&request);
        let mut acc = AccumulatorState::new();
        let out = apply_all_middle_stages(&data, &mut acc);
        let gold = golden::distance::euclidean_partial(&a, &b, mask);
        assert_eq!(out.euclidean_accumulator.to_f32().to_bits(), gold.to_bits());
    }

    #[test]
    fn cosine_beat_matches_the_golden_partial_sums() {
        let a: [f32; 8] = [1.0, -2.0, 3.0, 0.5, 0.25, -1.5, 2.5, 4.0];
        let b: [f32; 8] = [0.5, 1.0, -1.0, 2.0, 4.0, 0.125, -0.5, 1.5];
        let mask = 0b1101_1011u8;
        let request = RayFlexRequest::cosine(0, a, b, mask, true);
        let data = SharedRayFlexData::from_request(&request);
        let mut acc = AccumulatorState::new();
        let out = apply_all_middle_stages(&data, &mut acc);
        let gold = golden::distance::cosine_partial(&a, &b, mask);
        assert_eq!(out.angular_dot.to_f32().to_bits(), gold.dot.to_bits());
        assert_eq!(out.angular_norm.to_f32().to_bits(), gold.norm_sq.to_bits());
    }

    #[test]
    fn multi_beat_jobs_accumulate_until_reset() {
        let mut acc = AccumulatorState::new();
        let a = [2.0f32; 16];
        let b = [0.0f32; 16];
        // Two beats without reset, one with: 3 beats * 16 lanes * 4.0 = 192.
        let mut last = 0.0;
        for (i, reset) in [(0u64, false), (1, false), (2, true)] {
            let request = RayFlexRequest::euclidean(i, a, b, u16::MAX, reset);
            let data = SharedRayFlexData::from_request(&request);
            let out = apply_all_middle_stages(&data, &mut acc);
            last = out.euclidean_accumulator.to_f32();
        }
        assert_eq!(last, 192.0);
        // After the reset beat the accumulator starts over.
        let request = RayFlexRequest::euclidean(3, a, b, u16::MAX, true);
        let out = apply_all_middle_stages(&SharedRayFlexData::from_request(&request), &mut acc);
        assert_eq!(out.euclidean_accumulator.to_f32(), 64.0);
    }

    #[test]
    fn interleaved_euclidean_and_cosine_jobs_use_separate_accumulators() {
        let mut acc = AccumulatorState::new();
        let e = RayFlexRequest::euclidean(0, [1.0; 16], [0.0; 16], u16::MAX, false);
        let c = RayFlexRequest::cosine(1, [1.0; 8], [2.0; 8], u8::MAX, false);
        let e_out = apply_all_middle_stages(&SharedRayFlexData::from_request(&e), &mut acc);
        let c_out = apply_all_middle_stages(&SharedRayFlexData::from_request(&c), &mut acc);
        let e_out2 = apply_all_middle_stages(&SharedRayFlexData::from_request(&e), &mut acc);
        assert_eq!(e_out.euclidean_accumulator.to_f32(), 16.0);
        assert_eq!(c_out.angular_dot.to_f32(), 16.0);
        assert_eq!(c_out.angular_norm.to_f32(), 32.0);
        assert_eq!(e_out2.euclidean_accumulator.to_f32(), 32.0);
    }
}
