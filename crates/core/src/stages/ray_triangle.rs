//! Stage logic of the watertight ray–triangle operation (Fig. 4b steps 4–9).

use rayflex_softfloat::{cmp, RecF32};

use crate::SharedRayFlexData;

/// Applies the ray-triangle portion of one intermediate stage.
pub(super) fn apply(stage: usize, data: &mut SharedRayFlexData) {
    match stage {
        2 => translate_vertices(data),
        3 => shear_products(data),
        4 => shear_subtract(data),
        5 => barycentric_products(data),
        6 => barycentric_coordinates(data),
        7 => distance_products(data),
        8 => partial_sums(data),
        9 => final_sums(data),
        10 => hit_test(data),
        _ => {}
    }
}

/// Stage 2 — translate the triangle vertices to the ray origin (9 subtractions, step 4).
fn translate_vertices(data: &mut SharedRayFlexData) {
    for v in 0..3 {
        for axis in 0..3 {
            data.tri_verts[v][axis] = data.tri_verts[v][axis].sub(data.ray_origin[axis]);
        }
    }
}

/// Stage 3 — shear/scale products against the pre-computed constants (9 multiplications, step 5).
/// For each translated vertex `V` this produces `[Sx*Vkz, Sy*Vkz, Sz*Vkz]`; the last element is
/// the vertex's sheared z coordinate, needed again at stage 7.
fn shear_products(data: &mut SharedRayFlexData) {
    let kz = data.ray_k[2] as usize;
    for v in 0..3 {
        let vkz = data.tri_verts[v][kz];
        data.tri_shear_prod[v][0] = data.ray_shear[0].mul(vkz);
        data.tri_shear_prod[v][1] = data.ray_shear[1].mul(vkz);
        data.tri_shear_prod[v][2] = data.ray_shear[2].mul(vkz);
    }
}

/// Stage 4 — complete the shear transform (6 subtractions, step 5): the sheared x/y coordinates
/// of each vertex.
fn shear_subtract(data: &mut SharedRayFlexData) {
    let kx = data.ray_k[0] as usize;
    let ky = data.ray_k[1] as usize;
    for v in 0..3 {
        data.tri_sheared_xy[v][0] = data.tri_verts[v][kx].sub(data.tri_shear_prod[v][0]);
        data.tri_sheared_xy[v][1] = data.tri_verts[v][ky].sub(data.tri_shear_prod[v][1]);
    }
}

/// Stage 5 — the six cross products feeding the scaled barycentric coordinates
/// (6 multiplications, step 6).
fn barycentric_products(data: &mut SharedRayFlexData) {
    let (ax, ay) = (data.tri_sheared_xy[0][0], data.tri_sheared_xy[0][1]);
    let (bx, by) = (data.tri_sheared_xy[1][0], data.tri_sheared_xy[1][1]);
    let (cx, cy) = (data.tri_sheared_xy[2][0], data.tri_sheared_xy[2][1]);
    data.tri_products[0] = cx.mul(by);
    data.tri_products[1] = cy.mul(bx);
    data.tri_products[2] = ax.mul(cy);
    data.tri_products[3] = ay.mul(cx);
    data.tri_products[4] = bx.mul(ay);
    data.tri_products[5] = by.mul(ax);
}

/// Stage 6 — the scaled barycentric coordinates (3 subtractions, step 6).  The operand order is
/// chosen so that a front-face hit under the paper's culling convention
/// (`dir · (AB × AC) > 0`) yields non-negative U, V, W and a positive determinant, matching the
/// golden model in `rayflex-geometry`.
fn barycentric_coordinates(data: &mut SharedRayFlexData) {
    data.tri_uvw[0] = data.tri_products[1].sub(data.tri_products[0]);
    data.tri_uvw[1] = data.tri_products[3].sub(data.tri_products[2]);
    data.tri_uvw[2] = data.tri_products[5].sub(data.tri_products[4]);
}

/// Stage 7 — the three products feeding the scaled hit distance (3 multiplications, step 8).
fn distance_products(data: &mut SharedRayFlexData) {
    data.tri_dist_prod[0] = data.tri_uvw[0].mul(data.tri_shear_prod[0][2]);
    data.tri_dist_prod[1] = data.tri_uvw[1].mul(data.tri_shear_prod[1][2]);
    data.tri_dist_prod[2] = data.tri_uvw[2].mul(data.tri_shear_prod[2][2]);
}

/// Stage 8 — first halves of the determinant and distance sums (2 additions, steps 7/8).
fn partial_sums(data: &mut SharedRayFlexData) {
    data.tri_det_partial = data.tri_uvw[0].add(data.tri_uvw[1]);
    data.tri_t_partial = data.tri_dist_prod[0].add(data.tri_dist_prod[1]);
}

/// Stage 9 — final determinant and scaled hit distance (2 additions, steps 7/8).
fn final_sums(data: &mut SharedRayFlexData) {
    data.tri_det = data.tri_det_partial.add(data.tri_uvw[2]);
    data.tri_t_num = data.tri_t_partial.add(data.tri_dist_prod[2]);
}

/// Stage 10 — the hit decision (5 comparisons of depth 1, step 9): all barycentric coordinates
/// non-negative, a positive determinant (coplanar rays and back faces fail here) and a
/// non-negative scaled distance (triangles behind the origin fail here).
fn hit_test(data: &mut SharedRayFlexData) {
    let zero = RecF32::ZERO;
    data.tri_hit = cmp::ge(data.tri_uvw[0], zero)
        && cmp::ge(data.tri_uvw[1], zero)
        && cmp::ge(data.tri_uvw[2], zero)
        && cmp::gt(data.tri_det, zero)
        && cmp::ge(data.tri_t_num, zero);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccumulatorState, RayFlexRequest};
    use rayflex_geometry::{golden, Ray, Triangle, Vec3};

    fn run_triangle(ray: &Ray, tri: &Triangle) -> SharedRayFlexData {
        let request = RayFlexRequest::ray_triangle(0, ray, tri);
        let data = SharedRayFlexData::from_request(&request);
        crate::stages::apply_all_middle_stages(&data, &mut AccumulatorState::new())
    }

    fn facing_triangle() -> Triangle {
        Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        )
    }

    #[test]
    fn matches_the_golden_model_bit_for_bit() {
        let rays = [
            Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0)),
            Ray::new(Vec3::new(0.3, -0.4, -2.0), Vec3::new(-0.05, 0.1, 1.0)),
            Ray::new(Vec3::new(4.0, 4.0, 0.0), Vec3::new(-0.9, -1.1, 0.8)),
        ];
        for ray in &rays {
            let result = run_triangle(ray, &facing_triangle());
            let gold = golden::watertight::ray_triangle(ray, &facing_triangle());
            assert_eq!(result.tri_hit, gold.hit);
            assert_eq!(result.tri_uvw[0].to_f32().to_bits(), gold.u.to_bits());
            assert_eq!(result.tri_uvw[1].to_f32().to_bits(), gold.v.to_bits());
            assert_eq!(result.tri_uvw[2].to_f32().to_bits(), gold.w.to_bits());
            assert_eq!(result.tri_det.to_f32().to_bits(), gold.det.to_bits());
            assert_eq!(result.tri_t_num.to_f32().to_bits(), gold.t_num.to_bits());
        }
    }

    #[test]
    fn backface_is_culled_and_frontface_hits() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        assert!(run_triangle(&ray, &facing_triangle()).tri_hit);
        assert!(!run_triangle(&ray, &facing_triangle().flipped()).tri_hit);
    }

    #[test]
    fn distance_is_reported_as_a_fraction() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let result = run_triangle(&ray, &facing_triangle());
        let t = result.tri_t_num.to_f32() / result.tri_det.to_f32();
        assert!((t - 3.0).abs() < 1e-6);
    }
}
