//! Stage logic of the ray–box operation (four parallel slab tests plus the child sort).

use rayflex_softfloat::{cmp, RecF32};

use crate::quad_sort;
use crate::SharedRayFlexData;

/// NaN-propagating minimum select used by the slab interval comparisons: the comparator also
/// reports the unordered condition, and the select forwards the NaN so a coplanar ray's
/// `inf × 0 = NaN` poisons the interval and the final `tmin <= tmax` check fails (§IV-A).
fn hw_min(a: RecF32, b: RecF32) -> RecF32 {
    if a.is_nan() {
        a
    } else if b.is_nan() {
        b
    } else if cmp::lt(a, b) {
        a
    } else {
        b
    }
}

/// NaN-propagating maximum select (see [`hw_min`]).
fn hw_max(a: RecF32, b: RecF32) -> RecF32 {
    if a.is_nan() {
        a
    } else if b.is_nan() {
        b
    } else if cmp::gt(a, b) {
        a
    } else {
        b
    }
}

/// Applies the ray-box portion of one intermediate stage.
pub(super) fn apply(stage: usize, data: &mut SharedRayFlexData) {
    match stage {
        2 => translate_boxes(data),
        3 => multiply_by_inverse_direction(data),
        4 => intersect_slabs(data),
        10 => sort_children(data),
        // Stages 5-9 are blank for the ray-box operation: the skid buffer copies input to output.
        _ => {}
    }
}

/// Stage 2 — translate the box corners to the ray origin (24 subtractions, Fig. 4a step 1).
fn translate_boxes(data: &mut SharedRayFlexData) {
    for b in 0..4 {
        for axis in 0..3 {
            data.box_lo[b][axis] = data.box_lo[b][axis].sub(data.ray_origin[axis]);
            data.box_hi[b][axis] = data.box_hi[b][axis].sub(data.ray_origin[axis]);
        }
    }
}

/// Stage 3 — multiply the translated corners by the inverse direction (24 multiplications,
/// Fig. 4a step 2).
fn multiply_by_inverse_direction(data: &mut SharedRayFlexData) {
    for b in 0..4 {
        for axis in 0..3 {
            data.box_t_lo[b][axis] = data.box_lo[b][axis].mul(data.ray_inv_dir[axis]);
            data.box_t_hi[b][axis] = data.box_hi[b][axis].mul(data.ray_inv_dir[axis]);
        }
    }
}

/// Stage 4 — per-axis near/far selection, interval intersection with the ray extent and the hit
/// decision (40 comparisons in total across the four boxes, Fig. 4a steps 3 and 4).
fn intersect_slabs(data: &mut SharedRayFlexData) {
    for b in 0..4 {
        let near: [RecF32; 3] =
            core::array::from_fn(|axis| hw_min(data.box_t_lo[b][axis], data.box_t_hi[b][axis]));
        let far: [RecF32; 3] =
            core::array::from_fn(|axis| hw_max(data.box_t_lo[b][axis], data.box_t_hi[b][axis]));
        let t_entry = hw_max(hw_max(near[0], near[1]), hw_max(near[2], data.ray_t_beg));
        let t_exit = hw_min(hw_min(far[0], far[1]), hw_min(far[2], data.ray_t_end));
        data.box_t_entry[b] = t_entry;
        data.box_t_exit[b] = t_exit;
        data.box_hit[b] = cmp::le(t_entry, t_exit);
    }
}

/// Stage 10 — sort the four children by order of intersection (Fig. 4a step 5).
fn sort_children(data: &mut SharedRayFlexData) {
    data.box_order = quad_sort::sort_children(&data.box_hit, &data.box_t_entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccumulatorState, RayFlexRequest};
    use rayflex_geometry::{golden, Aabb, Ray, Vec3};

    fn run_boxes(ray: &Ray, boxes: &[Aabb; 4]) -> SharedRayFlexData {
        let request = RayFlexRequest::ray_box(0, ray, boxes);
        let data = SharedRayFlexData::from_request(&request);
        crate::stages::apply_all_middle_stages(&data, &mut AccumulatorState::new())
    }

    #[test]
    fn matches_the_golden_model_on_a_simple_scene() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, -10.0), Vec3::new(0.05, -0.02, 1.0));
        let boxes = [
            Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
            Aabb::new(Vec3::new(-1.0, -1.0, 5.0), Vec3::new(1.0, 1.0, 7.0)),
            Aabb::new(Vec3::new(30.0, 30.0, 30.0), Vec3::new(31.0, 31.0, 31.0)),
            Aabb::new(Vec3::new(-0.5, -0.5, 2.0), Vec3::new(0.5, 0.5, 3.0)),
        ];
        let result = run_boxes(&ray, &boxes);
        for (i, aabb) in boxes.iter().enumerate() {
            let gold = golden::slab::ray_box(&ray, aabb);
            assert_eq!(result.box_hit[i], gold.hit, "box {i}");
            if gold.hit {
                assert_eq!(
                    result.box_t_entry[i].to_f32().to_bits(),
                    gold.t_entry.to_bits(),
                    "box {i} entry distance must match the golden model bit-for-bit"
                );
            }
        }
    }

    #[test]
    fn coplanar_ray_misses_through_the_hardware_path() {
        let ray = Ray::new(Vec3::new(-5.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        let boxes = [Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)); 4];
        let result = run_boxes(&ray, &boxes);
        assert_eq!(result.box_hit, [false; 4]);
    }

    #[test]
    fn children_are_sorted_by_entry_distance() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, -10.0), Vec3::new(0.0, 0.0, 1.0));
        let boxes = [
            Aabb::new(Vec3::new(-1.0, -1.0, 6.0), Vec3::new(1.0, 1.0, 7.0)),
            Aabb::new(Vec3::new(-1.0, -1.0, 0.0), Vec3::new(1.0, 1.0, 1.0)),
            Aabb::new(Vec3::new(5.0, 5.0, 5.0), Vec3::new(6.0, 6.0, 6.0)), // miss
            Aabb::new(Vec3::new(-1.0, -1.0, 3.0), Vec3::new(1.0, 1.0, 4.0)),
        ];
        let result = run_boxes(&ray, &boxes);
        assert_eq!(result.box_hit, [true, true, false, true]);
        assert_eq!(result.box_order, [1, 3, 0, 2]);
    }
}
