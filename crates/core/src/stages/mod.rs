//! The per-stage combinational logic of the RayFlex pipeline (paper Fig. 4c and Fig. 6c).
//!
//! Every intermediate stage of the pipeline maps the Shared RayFlex Data Structure onto itself:
//! the stage copies its input to its output and overwrites only the fields it produces.  The
//! table below summarises the mapping (stage 1 and stage 11 are the format-conversion stages,
//! implemented by [`SharedRayFlexData::from_request`] and [`SharedRayFlexData::to_response`]).
//!
//! | Stage | Hardware assets (baseline)          | Ray-box                  | Ray-triangle            | Euclidean (ext.)   | Cosine (ext.)        |
//! |------:|-------------------------------------|---------------------------|-------------------------|--------------------|----------------------|
//! | 1     | format converters                   | FP32 → recoded            | FP32 → recoded          | FP32 → recoded     | FP32 → recoded       |
//! | 2     | 24 adders                           | 24 box translations       | 9 vertex translations   | 16 differences     | —                    |
//! | 3     | 24 multipliers                      | 24 inverse-dir products   | 9 shear products        | 16 squares         | 8 products + 8 squares |
//! | 4     | 40 comparators, 6 (+2) adders       | 40 compares               | 6 shear subtractions    | 8 reduction adds   | 8 reduction adds     |
//! | 5     | 6 multipliers                       | —                         | 6 barycentric products  | —                  | —                    |
//! | 6     | 3 (+1) adders                       | —                         | 3 barycentric subtracts | 4 reduction adds   | 4 reduction adds     |
//! | 7     | 3 multipliers                       | —                         | 3 distance products     | —                  | —                    |
//! | 8     | 2 adders                            | —                         | 2 partial sums          | 2 reduction adds   | 2 reduction adds     |
//! | 9     | 2 adders (+2 registers)             | —                         | 2 final sums            | 1 reduction add    | 2 accumulations      |
//! | 10    | 2 QuadSorts, 5 comparators (+1 adder, +1 register) | 2 quad-sorts | 5 hit compares          | 1 accumulation     | —                    |
//! | 11    | format converters                   | recoded → FP32            | recoded → FP32          | recoded → FP32     | recoded → FP32       |

mod distance;
mod ray_box;
mod ray_triangle;

use crate::{AccumulatorState, Opcode, SharedRayFlexData};

/// Number of pipeline stages, including the two format-conversion stages.
pub const STAGE_COUNT: usize = 11;

/// First intermediate (non-conversion) stage index.
pub const FIRST_MIDDLE_STAGE: usize = 2;
/// Last intermediate (non-conversion) stage index.
pub const LAST_MIDDLE_STAGE: usize = 10;

/// Applies the combinational logic of one intermediate pipeline stage (2–10) to a beat.
///
/// The stateful accumulators of the extended design (stages 9 and 10) live in `acc`; beats whose
/// opcode does not touch them leave them unchanged.
///
/// # Panics
///
/// Panics if `stage` is not in `2..=10`.
#[must_use]
pub fn apply_middle_stage(
    stage: usize,
    data: &SharedRayFlexData,
    acc: &mut AccumulatorState,
) -> SharedRayFlexData {
    // "We first directly assign the input Shared RayFlex Data Structure to the stage output
    // register.  After that, we may define custom logic to overwrite any data field that is
    // supposed to be produced by this stage." (§III-E)
    let mut out = data.clone();
    apply_middle_stage_in_place(stage, &mut out, acc);
    out
}

/// The allocation-free variant of [`apply_middle_stage`]: overwrites the produced fields of
/// `data` directly instead of cloning the structure first.
///
/// Stage logic only ever reads fields produced by *earlier* stages and overwrites fields it
/// produces itself, so mutating one buffer in stage order is bit-identical to chaining per-stage
/// clones — this is what lets the batched execution path share every line of stage logic with the
/// register-accurate one while skipping nine structure copies per beat.
///
/// # Panics
///
/// Panics if `stage` is not in `2..=10`.
pub fn apply_middle_stage_in_place(
    stage: usize,
    data: &mut SharedRayFlexData,
    acc: &mut AccumulatorState,
) {
    assert!(
        (FIRST_MIDDLE_STAGE..=LAST_MIDDLE_STAGE).contains(&stage),
        "stage {stage} is not an intermediate pipeline stage"
    );
    match data.opcode {
        Opcode::RayBox => ray_box::apply(stage, data),
        Opcode::RayTriangle => ray_triangle::apply(stage, data),
        Opcode::Euclidean => distance::apply_euclidean(stage, data, acc),
        Opcode::Cosine => distance::apply_cosine(stage, data, acc),
    }
}

/// Runs a beat through every intermediate stage in order — the purely functional view of the
/// datapath used by [`crate::RayFlexDatapath`] and by tests that compare against the golden
/// software models.
#[must_use]
pub fn apply_all_middle_stages(
    data: &SharedRayFlexData,
    acc: &mut AccumulatorState,
) -> SharedRayFlexData {
    let mut current = data.clone();
    apply_all_middle_stages_in_place(&mut current, acc);
    current
}

/// The allocation-free variant of [`apply_all_middle_stages`] (see
/// [`apply_middle_stage_in_place`]): applies stages 2–10 to one buffer in place.
pub fn apply_all_middle_stages_in_place(data: &mut SharedRayFlexData, acc: &mut AccumulatorState) {
    for stage in FIRST_MIDDLE_STAGE..=LAST_MIDDLE_STAGE {
        apply_middle_stage_in_place(stage, data, acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RayFlexRequest;
    use rayflex_geometry::{Aabb, Ray, Vec3};

    #[test]
    #[should_panic(expected = "not an intermediate pipeline stage")]
    fn stage_one_is_not_a_middle_stage() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let request = RayFlexRequest::ray_box(0, &ray, &[Aabb::new(Vec3::ZERO, Vec3::ONE); 4]);
        let data = SharedRayFlexData::from_request(&request);
        let _ = apply_middle_stage(1, &data, &mut AccumulatorState::new());
    }

    #[test]
    fn stages_only_touch_their_own_fields() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let request = RayFlexRequest::ray_box(
            9,
            &ray,
            &[Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)); 4],
        );
        let data = SharedRayFlexData::from_request(&request);
        let mut acc = AccumulatorState::new();
        let after = apply_middle_stage(2, &data, &mut acc);
        // A ray-box beat at stage 2 must not disturb triangle or distance fields.
        assert_eq!(after.tri_verts, data.tri_verts);
        assert_eq!(after.euclid_work, data.euclid_work);
        assert_eq!(after.tag, data.tag);
        // ... but it does translate the boxes.
        assert_ne!(after.box_lo, data.box_lo);
    }
}
