//! The functional (un-timed) model of the datapath.

use crate::stages;
use crate::{
    AccumulatorState, Opcode, PipelineConfig, QueryKind, RayFlexRequest, RayFlexResponse,
    SharedRayFlexData,
};

/// Per-opcode — and, for attributed dispatches, per-query-kind × per-opcode — counters of the
/// beats a datapath has executed.
///
/// Wavefront schedulers drive *mixed-opcode* passes through the bulk interface (a single batch
/// may interleave ray–box, ray–triangle and distance beats of unrelated queries); this breakdown
/// lets callers attribute datapath work to operation kinds without threading counters through
/// every query layer themselves.  Fused schedulers go one step further and mix beats of
/// *different query kinds* in one pass; the segmented dispatch interface
/// ([`RayFlexDatapath::execute_batch_segmented`]) records which [`QueryKind`] owns each beat, so
/// the per-kind table decomposes a fused pass the way the unified RT unit of §V-A would be
/// profiled.  Beats executed through the unattributed interfaces count toward the per-opcode
/// totals only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BeatMix {
    counts: [u64; Opcode::ALL.len()],
    kind_counts: [[u64; Opcode::ALL.len()]; QueryKind::ALL.len()],
    /// Bulk passes dispatched through the segmented interface.
    passes: u64,
    /// Segmented passes whose segments spanned at least two distinct query kinds.
    fused_passes: u64,
    /// Ray–box beats whose tag carried [`crate::TLAS_PHASE_TAG`] — the top-level (instance
    /// hierarchy) phase of a two-level scene traversal.
    tlas_box_beats: u64,
    /// Issue slots the lane-batched kernels cycled through (every issue — vector or scalar
    /// remainder — charges the full dispatch width).
    simd_lane_slots: u64,
    /// Lanes that carried a live beat across those issues.
    simd_lanes_busy: u64,
}

impl BeatMix {
    fn record(&mut self, opcode: Opcode) {
        self.counts[Self::slot(opcode)] += 1;
    }

    fn record_attributed(&mut self, kind: QueryKind, opcode: Opcode) {
        self.counts[Self::slot(opcode)] += 1;
        self.kind_counts[Self::kind_slot(kind)][Self::slot(opcode)] += 1;
    }

    /// Records a same-opcode run of `count` beats at once — counter-identical to `count` calls
    /// of [`BeatMix::record`] / [`BeatMix::record_attributed`].
    fn record_run(&mut self, opcode: Opcode, kind: Option<QueryKind>, count: u64) {
        self.counts[Self::slot(opcode)] += count;
        if let Some(kind) = kind {
            self.kind_counts[Self::kind_slot(kind)][Self::slot(opcode)] += count;
        }
    }

    /// Constant-time counter slot; runs on the per-beat hot path, so no table scan.  The mapping
    /// matches the [`Opcode::ALL`] order (pinned by a test below).
    fn slot(opcode: Opcode) -> usize {
        match opcode {
            Opcode::RayBox => 0,
            Opcode::RayTriangle => 1,
            Opcode::Euclidean => 2,
            Opcode::Cosine => 3,
        }
    }

    /// Constant-time kind slot, matching the [`QueryKind::ALL`] order (pinned by a test below).
    fn kind_slot(kind: QueryKind) -> usize {
        match kind {
            QueryKind::ClosestHit => 0,
            QueryKind::AnyHit => 1,
            QueryKind::Distance => 2,
            QueryKind::Collect => 3,
        }
    }

    /// Beats executed with the given opcode (attributed or not).
    #[must_use]
    pub fn count(&self, opcode: Opcode) -> u64 {
        self.counts[Self::slot(opcode)]
    }

    /// Total beats executed across all opcodes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Beats of the given opcode attributed to the given query kind (zero for beats executed
    /// through the unattributed interfaces).
    #[must_use]
    pub fn count_for(&self, kind: QueryKind, opcode: Opcode) -> u64 {
        self.kind_counts[Self::kind_slot(kind)][Self::slot(opcode)]
    }

    /// Total beats attributed to the given query kind, across all opcodes.
    #[must_use]
    pub fn kind_total(&self, kind: QueryKind) -> u64 {
        self.kind_counts[Self::kind_slot(kind)].iter().sum()
    }

    /// Bulk passes dispatched through the segmented (kind-attributed) interface.
    #[must_use]
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Segmented passes that interleaved beats of at least two distinct query kinds — the
    /// observable fingerprint of a fused multi-stream schedule.
    #[must_use]
    pub fn fused_passes(&self) -> u64 {
        self.fused_passes
    }

    /// Ray–box beats attributed to the top-level (TLAS) phase of a two-level scene traversal —
    /// beats whose tag carried [`crate::TLAS_PHASE_TAG`].  Flat scenes never set the bit, so
    /// this stays zero for single-level workloads; for instanced scenes it splits
    /// [`BeatMix::count`]`(Opcode::RayBox)` into instance-hierarchy and geometry-hierarchy work.
    #[must_use]
    pub fn tlas_box_beats(&self) -> u64 {
        self.tlas_box_beats
    }

    /// Records one lane-batched kernel dispatch: `busy` lanes carried beats across issues
    /// totalling `slots` lane-slots.
    fn record_lanes(&mut self, busy: u64, slots: u64) {
        self.simd_lanes_busy += busy;
        self.simd_lane_slots += slots;
    }

    /// Issue slots the lane-batched ray kernels cycled through: every kernel issue — eight-wide,
    /// four-wide, or a scalar remainder beat — charges the full SIMD dispatch width, because an
    /// idle vector lane costs the same cycle as a busy one.  Zero when the scalar path ran
    /// (`simd_lanes < 4`) or only distance beats executed.
    #[must_use]
    pub fn simd_lane_slots(&self) -> u64 {
        self.simd_lane_slots
    }

    /// Lanes of those issue slots that carried a live beat (see [`BeatMix::simd_lane_slots`]).
    #[must_use]
    pub fn simd_lanes_busy(&self) -> u64 {
        self.simd_lanes_busy
    }

    /// SIMD lane occupancy of the lane-batched kernels: busy lanes over dispatched lane-slots,
    /// in `[0, 1]`.  Zero when no lane-batched kernel ran.  Unlike the beat counters this is a
    /// *throughput* statistic of the dispatch order (like [`BeatMix::passes`]): coherence-sorted
    /// schedules raise it without changing any beat count.
    #[must_use]
    pub fn simd_lane_occupancy(&self) -> f64 {
        if self.simd_lane_slots == 0 {
            0.0
        } else {
            self.simd_lanes_busy as f64 / self.simd_lane_slots as f64
        }
    }

    /// Iterator over `(opcode, count)` pairs in the stable [`Opcode::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Opcode, u64)> + '_ {
        Opcode::ALL.iter().map(|&o| (o, self.count(o)))
    }

    /// Iterator over `(kind, opcode, count)` triples in the stable `ALL` orders, covering the
    /// attributed counters only.
    pub fn iter_kinds(&self) -> impl Iterator<Item = (QueryKind, Opcode, u64)> + '_ {
        QueryKind::ALL.iter().flat_map(move |&kind| {
            Opcode::ALL
                .iter()
                .map(move |&opcode| (kind, opcode, self.count_for(kind, opcode)))
        })
    }
}

/// A purely functional model of the RayFlex datapath: each call to [`RayFlexDatapath::execute`]
/// runs one beat through all eleven stages immediately.
///
/// The functional model shares every line of stage logic with the cycle-accurate
/// [`RayFlexPipeline`](crate::RayFlexPipeline) — including the accumulator state of the extended
/// operations — so the two produce identical results; only timing information differs.  Use this
/// model for workload-level studies (BVH traversal, k-nearest-neighbour search) where simulating
/// every pipeline register would be needlessly slow.
///
/// For throughput-oriented callers the datapath also offers a bulk interface:
/// [`RayFlexDatapath::execute_batch`] and [`RayFlexDatapath::execute_batch_into`] stream beats
/// through one reusable [`SharedRayFlexData`](crate::SharedRayFlexData) scratch buffer with the
/// stages applied in place (see
/// [`stages::apply_all_middle_stages_in_place`](crate::stages::apply_all_middle_stages_in_place)),
/// so a steady-state batch performs no per-beat allocation and no per-stage structure copies.
/// Batched execution runs the native fast model (the private `fastpath` module), not the stage
/// functions; its bit-identity to beat-at-a-time execution is pinned by the property tests in
/// `crates/core/tests/proptest_batch.rs`, so a stage-logic change that diverges from the golden
/// models fails the suite rather than silently splitting the two paths.
///
/// # Example
///
/// ```
/// use rayflex_core::{PipelineConfig, RayFlexDatapath, RayFlexRequest};
///
/// let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
/// let beat = RayFlexRequest::euclidean(0, [2.0; 16], [0.0; 16], u16::MAX, true);
/// let response = datapath.execute(&beat);
/// assert_eq!(response.distance_result.unwrap().euclidean_accumulator, 64.0);
/// ```
#[derive(Debug, Clone)]
pub struct RayFlexDatapath {
    config: PipelineConfig,
    accumulators: AccumulatorState,
    executed: u64,
    mix: BeatMix,
    /// Reusable beat buffer for the in-place execution path.  Boxed so the (large) Shared RayFlex
    /// Data Structure lives at a stable heap address instead of being copied around with the
    /// datapath value.
    scratch: Box<SharedRayFlexData>,
    /// SIMD lane width of the bulk interfaces: 1 keeps the per-beat scalar fast path, ≥ 4
    /// engages the lane-batched kernels.  Always a value [`crate::clamp_simd_lanes`] accepts.
    simd_lanes: usize,
}

impl RayFlexDatapath {
    /// Creates a functional datapath for the given configuration.
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        RayFlexDatapath {
            config,
            accumulators: AccumulatorState::new(),
            executed: 0,
            mix: BeatMix::default(),
            scratch: Box::default(),
            simd_lanes: 1,
        }
    }

    /// Sets the SIMD lane width of the bulk interfaces ([`RayFlexDatapath::execute_batch_into`]
    /// and [`RayFlexDatapath::execute_batch_segmented`]).  Degenerate and oversized requests are
    /// clamped by [`crate::clamp_simd_lanes`]; the per-beat interfaces ([`RayFlexDatapath::execute`]
    /// and [`RayFlexDatapath::execute_attributed`]) are unaffected, so the scalar reference stays
    /// the oracle.  Responses are bit-identical at every width — only throughput changes.
    pub fn set_simd_lanes(&mut self, lanes: usize) {
        self.simd_lanes = crate::fastpath::clamp_simd_lanes(lanes);
    }

    /// The (clamped) SIMD lane width of the bulk interfaces.
    #[must_use]
    pub fn simd_lanes(&self) -> usize {
        self.simd_lanes
    }

    /// The configuration this datapath models.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Number of beats executed so far.
    #[must_use]
    pub fn executed_beats(&self) -> u64 {
        self.executed
    }

    /// Per-opcode breakdown of the beats executed so far (across the per-beat and bulk
    /// interfaces), for attributing mixed-opcode passes to operation kinds.
    #[must_use]
    pub fn beat_mix(&self) -> BeatMix {
        self.mix
    }

    /// The current accumulator state (useful for inspecting multi-beat distance jobs).
    #[must_use]
    pub fn accumulators(&self) -> &AccumulatorState {
        &self.accumulators
    }

    /// Executes one beat through all eleven stages and returns its response.
    ///
    /// # Panics
    ///
    /// Panics if the beat's opcode is not supported by this configuration (issuing a Euclidean or
    /// cosine beat to a baseline datapath), mirroring the undefined behaviour of driving an
    /// absent opcode into the RTL.
    pub fn execute(&mut self, request: &RayFlexRequest) -> RayFlexResponse {
        self.admit(request, None);
        self.emulated_beat(request)
    }

    /// Admits one beat: the shared front half of every dispatch interface — the opcode-support
    /// assertion, the executed counter, and the (optionally kind-attributed) mix recording.
    /// Keeping this in one place is what keeps the attributed and unattributed interfaces
    /// bit-identical in everything but their counters.
    fn admit(&mut self, request: &RayFlexRequest, kind: Option<QueryKind>) {
        assert!(
            self.config.supports(request.opcode),
            "opcode {} is not supported by the {} configuration",
            request.opcode,
            self.config.name()
        );
        self.executed += 1;
        match kind {
            Some(kind) => self.mix.record_attributed(kind, request.opcode),
            None => self.mix.record(request.opcode),
        }
        if request.opcode == Opcode::RayBox && request.tag & crate::TLAS_PHASE_TAG != 0 {
            self.mix.tlas_box_beats += 1;
        }
    }

    /// Admits a same-opcode run of `count` beats in one step: counter-identical to calling
    /// [`RayFlexDatapath::admit`] once per beat, with the opcode-support assertion and the mix
    /// slot lookups hoisted out of the loop.  Only valid for opcodes without per-beat admission
    /// state — ray–triangle beats never carry the TLAS phase tag, so the per-beat tag check of
    /// [`RayFlexDatapath::admit`] is vacuous for them.
    fn admit_triangle_run(&mut self, count: u64, kind: Option<QueryKind>) {
        assert!(
            self.config.supports(Opcode::RayTriangle),
            "opcode {} is not supported by the {} configuration",
            Opcode::RayTriangle,
            self.config.name()
        );
        self.executed += count;
        self.mix.record_run(Opcode::RayTriangle, kind, count);
    }

    /// Runs one admitted beat through the register-accurate recoded-format stage emulation.
    fn emulated_beat(&mut self, request: &RayFlexRequest) -> RayFlexResponse {
        *self.scratch = SharedRayFlexData::from_request(request);
        stages::apply_all_middle_stages_in_place(&mut self.scratch, &mut self.accumulators);
        self.scratch.to_response()
    }

    /// Executes a batch of beats in order and collects their responses.
    ///
    /// Batches run on the native fast model (see the private `fastpath` module): responses are
    /// bit-identical to calling [`RayFlexDatapath::execute`] per beat — the property test in
    /// `crates/core/tests/proptest_batch.rs` pins this for arbitrary mixed streams on every
    /// configuration — but roughly an order of magnitude faster, because no beat pays for the
    /// recoded-format emulation.
    ///
    /// # Panics
    ///
    /// Panics if any beat's opcode is unsupported (see [`RayFlexDatapath::execute`]).
    pub fn execute_batch(&mut self, requests: &[RayFlexRequest]) -> Vec<RayFlexResponse> {
        let mut responses = Vec::new();
        self.execute_batch_into(requests, &mut responses);
        responses
    }

    /// Executes a batch of beats in order, writing the responses into a caller-owned buffer.
    ///
    /// The buffer is cleared first and its capacity is reused, so a caller streaming many batches
    /// (the wavefront traversal loop of `rayflex-rtunit`, for example) allocates responses once
    /// and amortises them across every subsequent dispatch.  Like
    /// [`RayFlexDatapath::execute_batch`], the beats run on the native fast model and produce
    /// bit-identical responses to the per-beat emulated path.
    ///
    /// # Panics
    ///
    /// Panics if any beat's opcode is unsupported (see [`RayFlexDatapath::execute`]).
    pub fn execute_batch_into(
        &mut self,
        requests: &[RayFlexRequest],
        responses: &mut Vec<RayFlexResponse>,
    ) {
        responses.clear();
        responses.reserve(requests.len());
        self.fast_run(requests, None, responses);
    }

    /// The shared bulk dispatch loop: admits every beat and executes it on the native fast model,
    /// grouping adjacent beats into the lane-batched kernels when the SIMD width allows.
    ///
    /// Grouping relies on the scheduler adjacency the bulk interfaces already guarantee — a
    /// wavefront pass emits one beat per active item, so items in the same traversal phase sit
    /// next to each other.  Ray–box beats vectorise *within* one beat (its four AABBs are one
    /// lane quartet) and *across* adjacent beats (up to `simd_lanes / 4` quartets share one
    /// issue); ray–triangle beats vectorise *across* adjacent beats (runs of up to `simd_lanes`
    /// same-opcode requests share one kernel invocation); distance beats chain through the
    /// accumulators and always run scalar.  Every grouping is bit-identical to the per-beat path.
    fn fast_run(
        &mut self,
        requests: &[RayFlexRequest],
        kind: Option<QueryKind>,
        responses: &mut Vec<RayFlexResponse>,
    ) {
        if self.simd_lanes < 4 {
            for request in requests {
                self.admit(request, kind);
                responses.push(crate::fastpath::execute_fast(
                    request,
                    &mut self.accumulators,
                ));
            }
            return;
        }
        let mut index = 0;
        while index < requests.len() {
            let request = &requests[index];
            match request.opcode {
                Opcode::RayBox => {
                    // Adjacent box beats group one lane quartet each into a single wide issue:
                    // the device carries `simd_lanes / 4` beats per pass over the slab stages
                    // (four beats at sixteen lanes, two at eight, one below).
                    let limit = (index + (self.simd_lanes / 4).max(1)).min(requests.len());
                    let mut end = index + 1;
                    while end < limit && requests[end].opcode == Opcode::RayBox {
                        end += 1;
                    }
                    for request in &requests[index..end] {
                        self.admit(request, kind);
                    }
                    self.issue_box_group(&requests[index..end], responses);
                    index = end;
                }
                Opcode::RayTriangle => {
                    let limit = (index + self.simd_lanes).min(requests.len());
                    let mut end = index + 1;
                    while end < limit && requests[end].opcode == Opcode::RayTriangle {
                        end += 1;
                    }
                    self.admit_triangle_run((end - index) as u64, kind);
                    let (busy, slots) =
                        crate::fastpath::triangle_lane_accounting(end - index, self.simd_lanes);
                    self.mix.record_lanes(busy, slots);
                    crate::fastpath::execute_fast_triangles(&requests[index..end], responses);
                    index = end;
                }
                Opcode::Euclidean | Opcode::Cosine => {
                    self.admit(request, kind);
                    responses.push(crate::fastpath::execute_fast(
                        request,
                        &mut self.accumulators,
                    ));
                    index += 1;
                }
            }
        }
    }

    /// Dispatches a run of one to four adjacent ray–box beats as a single lane-group issue and
    /// records its occupancy: each beat's four AABBs fill one lane quartet, and the issue is
    /// charged the full device width, so the partially filled groups a short solo stream is
    /// stuck with show up as idle lanes ([`BeatMix::simd_lane_occupancy`]).
    fn issue_box_group(&mut self, beats: &[RayFlexRequest], responses: &mut Vec<RayFlexResponse>) {
        debug_assert!((1..=4).contains(&beats.len()));
        debug_assert!(beats.len() * 4 <= self.simd_lanes);
        self.mix
            .record_lanes((beats.len() * 4) as u64, self.simd_lanes as u64);
        match beats.len() {
            1 => responses.push(crate::fastpath::execute_fast_box_lanes(&beats[0])),
            2 => crate::fastpath::execute_fast_box_lanes_group::<8>(beats, responses),
            3 => crate::fastpath::execute_fast_box_lanes_group::<12>(beats, responses),
            _ => crate::fastpath::execute_fast_box_lanes_group::<16>(beats, responses),
        }
    }

    /// Executes one beat through the register-accurate stage emulation, attributing it to a
    /// [`QueryKind`] in the [`BeatMix`] per-kind table — the scalar twin of
    /// [`RayFlexDatapath::execute_batch_segmented`] used by round-robin reference schedulers.
    ///
    /// # Panics
    ///
    /// Panics if the beat's opcode is unsupported (see [`RayFlexDatapath::execute`]).
    pub fn execute_attributed(
        &mut self,
        request: &RayFlexRequest,
        kind: QueryKind,
    ) -> RayFlexResponse {
        self.admit(request, Some(kind));
        self.emulated_beat(request)
    }

    /// Executes one bulk pass whose beats are partitioned into contiguous kind-attributed
    /// segments: `segments` lists `(kind, beat_count)` pairs covering `requests` front to back.
    ///
    /// This is the dispatch interface of fused multi-stream schedulers: a single pass may carry
    /// the beats of several query kinds (a closest-hit bounce stream, its shadow rays, distance
    /// scoring), and the per-kind × per-opcode [`BeatMix`] counters record exactly which kind
    /// issued which beats.  A pass whose segments span at least two distinct kinds increments
    /// [`BeatMix::fused_passes`].  Responses are bit-identical to
    /// [`RayFlexDatapath::execute_batch_into`] over the same requests — attribution changes only
    /// the counters, never the datapath semantics.
    ///
    /// Lane grouping runs over the *whole* merged pass: a same-opcode run (and the ray–box
    /// quartet grouping) freely crosses segment boundaries, so the beats of many small coalesced streams
    /// fill the wide kernels exactly as one long stream would.  This is where fused batching
    /// earns its device utilisation — dispatching each segment alone issues the same beats at a
    /// fraction of the lane occupancy ([`BeatMix::simd_lane_occupancy`]).
    ///
    /// # Panics
    ///
    /// Panics if the segment lengths do not sum to `requests.len()`, or if any beat's opcode is
    /// unsupported (see [`RayFlexDatapath::execute`]).
    pub fn execute_batch_segmented(
        &mut self,
        requests: &[RayFlexRequest],
        segments: &[(QueryKind, usize)],
        responses: &mut Vec<RayFlexResponse>,
    ) {
        let covered: usize = segments.iter().map(|&(_, len)| len).sum();
        assert_eq!(
            covered,
            requests.len(),
            "segments must cover the request batch exactly"
        );
        self.passes_accounting(segments);
        responses.clear();
        responses.reserve(requests.len());
        self.fast_run_segmented(requests, segments, responses);
    }

    /// [`RayFlexDatapath::fast_run`] over a merged multi-segment pass: each beat is attributed
    /// to its segment's [`QueryKind`], but lane grouping scans the whole request slice, so
    /// same-opcode runs and box groups cross segment boundaries.  Grouping never moves a response
    /// value (every kernel tier is bit-identical to the per-beat path), and the per-kind beat
    /// attribution is identical to dispatching each segment through its own
    /// [`RayFlexDatapath::fast_run`] — only the lane-occupancy counters see the coalescing.
    fn fast_run_segmented(
        &mut self,
        requests: &[RayFlexRequest],
        segments: &[(QueryKind, usize)],
        responses: &mut Vec<RayFlexResponse>,
    ) {
        let mut cursor = SegmentCursor::new(segments);
        if self.simd_lanes < 4 {
            for request in requests {
                let kind = cursor.take_one();
                self.admit(request, Some(kind));
                responses.push(crate::fastpath::execute_fast(
                    request,
                    &mut self.accumulators,
                ));
            }
            return;
        }
        let mut index = 0;
        while index < requests.len() {
            let request = &requests[index];
            match request.opcode {
                Opcode::RayBox => {
                    let limit = (index + (self.simd_lanes / 4).max(1)).min(requests.len());
                    let mut end = index + 1;
                    while end < limit && requests[end].opcode == Opcode::RayBox {
                        end += 1;
                    }
                    for request in &requests[index..end] {
                        let kind = cursor.take_one();
                        self.admit(request, Some(kind));
                    }
                    self.issue_box_group(&requests[index..end], responses);
                    index = end;
                }
                Opcode::RayTriangle => {
                    let limit = (index + self.simd_lanes).min(requests.len());
                    let mut end = index + 1;
                    while end < limit && requests[end].opcode == Opcode::RayTriangle {
                        end += 1;
                    }
                    let run = end - index;
                    cursor.take_run(run, |kind, count| {
                        self.admit_triangle_run(count as u64, Some(kind));
                    });
                    let (busy, slots) =
                        crate::fastpath::triangle_lane_accounting(run, self.simd_lanes);
                    self.mix.record_lanes(busy, slots);
                    crate::fastpath::execute_fast_triangles(&requests[index..end], responses);
                    index = end;
                }
                Opcode::Euclidean | Opcode::Cosine => {
                    let kind = cursor.take_one();
                    self.admit(request, Some(kind));
                    responses.push(crate::fastpath::execute_fast(
                        request,
                        &mut self.accumulators,
                    ));
                    index += 1;
                }
            }
        }
    }

    /// Counts one logical bulk pass without executing any beats — the accounting half of the
    /// chunked dispatch interface ([`RayFlexDatapath::execute_pass_chunk`]).
    ///
    /// A tiling scheduler keeps its pass buffers cache-resident by dispatching one logical pass
    /// as several small chunks; it records the pass once through here (per-kind pass counters and
    /// fused-pass detection behave exactly as one [`RayFlexDatapath::execute_batch_segmented`]
    /// call over the whole pass would) and then executes each chunk beat-account-only through
    /// [`RayFlexDatapath::execute_pass_chunk`].
    pub fn record_pass(&mut self, segments: &[(QueryKind, usize)]) {
        self.passes_accounting(segments);
    }

    /// Executes one chunk of a pass recorded with [`RayFlexDatapath::record_pass`]: the beats
    /// run on the native fast model attributed to `kind`, bit-identical to their slice of an
    /// [`RayFlexDatapath::execute_batch_segmented`] call, but no pass is counted.  Lane grouping
    /// restarts at the chunk boundary, which only moves where same-opcode runs split — never a
    /// response value.
    ///
    /// # Panics
    ///
    /// Panics if any beat's opcode is unsupported (see [`RayFlexDatapath::execute`]).
    pub fn execute_pass_chunk(
        &mut self,
        requests: &[RayFlexRequest],
        kind: QueryKind,
        responses: &mut Vec<RayFlexResponse>,
    ) {
        responses.clear();
        responses.reserve(requests.len());
        self.fast_run(requests, Some(kind), responses);
    }

    /// Counts one segmented pass, detecting whether its non-empty segments mix distinct kinds.
    fn passes_accounting(&mut self, segments: &[(QueryKind, usize)]) {
        self.mix.passes += 1;
        let mut first_kind = None;
        let mut fused = false;
        for &(kind, len) in segments {
            if len == 0 {
                continue;
            }
            match first_kind {
                None => first_kind = Some(kind),
                Some(k) if k != kind => {
                    fused = true;
                    break;
                }
                Some(_) => {}
            }
        }
        if fused {
            self.mix.fused_passes += 1;
        }
    }

    /// Executes a batch of beats through the recoded-format stage emulation (the same path as
    /// [`RayFlexDatapath::execute`]).  This is the cross-check twin of
    /// [`RayFlexDatapath::execute_batch`]: slower, but sharing every line of stage logic with the
    /// register-accurate pipeline.
    ///
    /// # Panics
    ///
    /// Panics if any beat's opcode is unsupported (see [`RayFlexDatapath::execute`]).
    pub fn execute_batch_emulated(&mut self, requests: &[RayFlexRequest]) -> Vec<RayFlexResponse> {
        requests.iter().map(|r| self.execute(r)).collect()
    }
}

/// Walks a pass's `(kind, len)` segment table alongside the merged request slice, yielding the
/// owning [`QueryKind`] of each beat in request order — the attribution side of
/// [`RayFlexDatapath::fast_run_segmented`]'s cross-segment lane grouping.
struct SegmentCursor<'a> {
    segments: &'a [(QueryKind, usize)],
    segment: usize,
    consumed: usize,
}

impl<'a> SegmentCursor<'a> {
    fn new(segments: &'a [(QueryKind, usize)]) -> Self {
        SegmentCursor {
            segments,
            segment: 0,
            consumed: 0,
        }
    }

    /// The kind owning the next beat.
    fn take_one(&mut self) -> QueryKind {
        while self.consumed == self.segments[self.segment].1 {
            self.segment += 1;
            self.consumed = 0;
        }
        self.consumed += 1;
        self.segments[self.segment].0
    }

    /// Splits a run of `count` beats into its per-segment `(kind, span)` pieces, in order.
    fn take_run(&mut self, count: usize, mut span: impl FnMut(QueryKind, usize)) {
        let mut left = count;
        while left > 0 {
            while self.consumed == self.segments[self.segment].1 {
                self.segment += 1;
                self.consumed = 0;
            }
            let (kind, len) = self.segments[self.segment];
            let take = left.min(len - self.consumed);
            self.consumed += take;
            left -= take;
            span(kind, take);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::{Aabb, Ray, Triangle, Vec3};

    #[test]
    fn executes_box_and_triangle_beats() {
        let mut dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let boxes = [Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)); 4];
        let tri = Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        );
        let responses = dp.execute_batch(&[
            RayFlexRequest::ray_box(0, &ray, &boxes),
            RayFlexRequest::ray_triangle(1, &ray, &tri),
        ]);
        assert_eq!(responses.len(), 2);
        assert!(responses[0].box_result.unwrap().hit.iter().all(|&h| h));
        assert!(responses[1].triangle_result.unwrap().hit);
        assert_eq!(dp.executed_beats(), 2);
        assert_eq!(dp.config().name(), "baseline-unified");
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn baseline_configuration_rejects_distance_beats() {
        let mut dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let _ = dp.execute(&RayFlexRequest::euclidean(
            0, [0.0; 16], [0.0; 16], 0, false,
        ));
    }

    #[test]
    fn beat_mix_attributes_mixed_opcode_batches() {
        let mut dp = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let boxes = [Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)); 4];
        let tri = Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        );
        // One mixed batch plus one per-beat call: both interfaces feed the same counters.
        let _ = dp.execute_batch(&[
            RayFlexRequest::ray_box(0, &ray, &boxes),
            RayFlexRequest::ray_triangle(1, &ray, &tri),
            RayFlexRequest::euclidean(2, [1.0; 16], [0.0; 16], u16::MAX, true),
        ]);
        let _ = dp.execute(&RayFlexRequest::ray_box(3, &ray, &boxes));
        let mix = dp.beat_mix();
        assert_eq!(mix.count(Opcode::RayBox), 2);
        assert_eq!(mix.count(Opcode::RayTriangle), 1);
        assert_eq!(mix.count(Opcode::Euclidean), 1);
        assert_eq!(mix.count(Opcode::Cosine), 0);
        assert_eq!(mix.total(), 4);
        assert_eq!(mix.total(), dp.executed_beats());
        assert_eq!(mix.iter().count(), Opcode::ALL.len());
        // The constant-time slot mapping must agree with the Opcode::ALL order `iter` exposes.
        for (slot, &opcode) in Opcode::ALL.iter().enumerate() {
            assert_eq!(BeatMix::slot(opcode), slot);
        }
    }

    #[test]
    // Asserts the lane kernels actually engage, which `force-scalar` disables by design.
    #[cfg(not(feature = "force-scalar"))]
    fn lane_occupancy_tracks_the_batched_kernel_issues() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let boxes = [Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)); 4];
        let tri = Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        );
        let requests = [
            RayFlexRequest::ray_box(0, &ray, &boxes),
            RayFlexRequest::ray_box(1, &ray, &boxes),
            RayFlexRequest::ray_triangle(2, &ray, &tri),
            RayFlexRequest::ray_triangle(3, &ray, &tri),
            RayFlexRequest::ray_triangle(4, &ray, &tri),
        ];
        // Scalar dispatch records nothing.
        let mut scalar = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let _ = scalar.execute_batch(&requests);
        assert_eq!(scalar.beat_mix().simd_lane_slots(), 0);
        assert_eq!(scalar.beat_mix().simd_lane_occupancy(), 0.0);
        // Eight lanes: one box pair-group (8/8) + a three-beat triangle run (three scalar-remainder
        // issues of eight slots each, three busy).
        let mut wide = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        wide.set_simd_lanes(8);
        let _ = wide.execute_batch(&requests);
        let mix = wide.beat_mix();
        assert_eq!(mix.simd_lanes_busy(), 8 + 3);
        assert_eq!(mix.simd_lane_slots(), 8 + 3 * 8);
        assert!((mix.simd_lane_occupancy() - 11.0 / 32.0).abs() < 1e-12);
        // The lane counters never change the beat counts.
        assert_eq!(mix.total(), scalar.beat_mix().total());
    }

    #[test]
    fn segmented_batches_attribute_beats_per_kind_and_detect_fusion() {
        let mut dp = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let boxes = [Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)); 4];
        let tri = Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        );
        let requests = [
            RayFlexRequest::ray_box(0, &ray, &boxes),
            RayFlexRequest::ray_triangle(1, &ray, &tri),
            RayFlexRequest::ray_box(2, &ray, &boxes),
            RayFlexRequest::euclidean(3, [1.0; 16], [0.0; 16], u16::MAX, true),
        ];
        // One fused pass: closest-hit (2 beats), any-hit (1 beat), distance (1 beat).
        let mut responses = Vec::new();
        dp.execute_batch_segmented(
            &requests,
            &[
                (QueryKind::ClosestHit, 2),
                (QueryKind::AnyHit, 1),
                (QueryKind::Distance, 1),
            ],
            &mut responses,
        );
        assert_eq!(responses.len(), 4);
        // One single-kind pass with an empty trailing segment: counted, but not fused.
        dp.execute_batch_segmented(
            &requests[..1],
            &[(QueryKind::Collect, 1), (QueryKind::Distance, 0)],
            &mut responses,
        );
        let mix = dp.beat_mix();
        assert_eq!(mix.count_for(QueryKind::ClosestHit, Opcode::RayBox), 1);
        assert_eq!(mix.count_for(QueryKind::ClosestHit, Opcode::RayTriangle), 1);
        assert_eq!(mix.count_for(QueryKind::AnyHit, Opcode::RayBox), 1);
        assert_eq!(mix.count_for(QueryKind::Distance, Opcode::Euclidean), 1);
        assert_eq!(mix.count_for(QueryKind::Collect, Opcode::RayBox), 1);
        assert_eq!(mix.kind_total(QueryKind::ClosestHit), 2);
        assert_eq!(mix.passes(), 2);
        assert_eq!(mix.fused_passes(), 1, "only the mixed-kind pass is fused");
        // Attributed beats still feed the plain per-opcode totals.
        assert_eq!(mix.count(Opcode::RayBox), 3);
        assert_eq!(mix.total(), 5);
        assert_eq!(mix.total(), dp.executed_beats());
        assert_eq!(
            mix.iter_kinds().count(),
            QueryKind::ALL.len() * Opcode::ALL.len()
        );
        // The constant-time kind-slot mapping must agree with the QueryKind::ALL order.
        let mut seen = std::collections::BTreeSet::new();
        for &kind in &QueryKind::ALL {
            assert!(seen.insert(BeatMix::kind_slot(kind)));
        }

        // The scalar attributed twin: identical response, counted under its kind.
        let response = dp.execute_attributed(&requests[0], QueryKind::AnyHit);
        assert!(response.box_result.unwrap().hit.iter().all(|&h| h));
        assert_eq!(
            dp.beat_mix().count_for(QueryKind::AnyHit, Opcode::RayBox),
            2
        );
    }

    #[test]
    // Asserts the lane kernels actually engage, which `force-scalar` disables by design.
    #[cfg(not(feature = "force-scalar"))]
    fn lane_grouping_crosses_segment_boundaries_without_moving_attribution() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let tri = Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        );
        // Six triangle beats split across three two-beat segments — the shape of a merged pass
        // coalescing three tiny streams.
        let requests: Vec<RayFlexRequest> = (0..6)
            .map(|tag| RayFlexRequest::ray_triangle(tag, &ray, &tri))
            .collect();
        let segments = [
            (QueryKind::ClosestHit, 2),
            (QueryKind::AnyHit, 2),
            (QueryKind::ClosestHit, 2),
        ];

        let mut merged = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        merged.set_simd_lanes(8);
        let mut responses = Vec::new();
        merged.execute_batch_segmented(&requests, &segments, &mut responses);
        assert_eq!(responses.len(), 6);

        // Responses are bit-identical to the per-beat scalar reference.
        let mut scalar = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        for (request, response) in requests.iter().zip(&responses) {
            let expected = scalar.execute(request).triangle_result.unwrap();
            let got = response.triangle_result.unwrap();
            assert_eq!(expected.hit, got.hit);
            assert_eq!(expected.t_num.to_bits(), got.t_num.to_bits());
            assert_eq!(expected.det.to_bits(), got.det.to_bits());
        }

        // Attribution is identical to dispatching each segment alone…
        let mix = merged.beat_mix();
        assert_eq!(mix.count_for(QueryKind::ClosestHit, Opcode::RayTriangle), 4);
        assert_eq!(mix.count_for(QueryKind::AnyHit, Opcode::RayTriangle), 2);
        // …but the six beats issue as one cross-segment run (an 8-wide tier would split them
        // 4+2 at eight lanes: one 4-wide issue + two scalar remainder issues), not as three
        // two-beat runs of two scalar issues each (6 × 8 slots).
        assert_eq!(mix.simd_lanes_busy(), 6);
        assert_eq!(mix.simd_lane_slots(), 3 * 8);
    }

    #[test]
    #[should_panic(expected = "cover the request batch")]
    fn segment_lengths_must_cover_the_batch() {
        let mut dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let boxes = [Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)); 4];
        let requests = [RayFlexRequest::ray_box(0, &ray, &boxes)];
        let mut responses = Vec::new();
        dp.execute_batch_segmented(&requests, &[(QueryKind::ClosestHit, 2)], &mut responses);
    }

    #[test]
    fn accumulator_state_is_visible() {
        let mut dp = RayFlexDatapath::new(PipelineConfig::extended_unified());
        dp.execute(&RayFlexRequest::euclidean(
            0,
            [1.0; 16],
            [0.0; 16],
            u16::MAX,
            false,
        ));
        assert_eq!(dp.accumulators().euclidean.to_f32(), 16.0);
    }
}
