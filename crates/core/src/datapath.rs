//! The functional (un-timed) model of the datapath.

use crate::stages;
use crate::{AccumulatorState, PipelineConfig, RayFlexRequest, RayFlexResponse};

/// A purely functional model of the RayFlex datapath: each call to [`RayFlexDatapath::execute`]
/// runs one beat through all eleven stages immediately.
///
/// The functional model shares every line of stage logic with the cycle-accurate
/// [`RayFlexPipeline`](crate::RayFlexPipeline) — including the accumulator state of the extended
/// operations — so the two produce identical results; only timing information differs.  Use this
/// model for workload-level studies (BVH traversal, k-nearest-neighbour search) where simulating
/// every pipeline register would be needlessly slow.
///
/// # Example
///
/// ```
/// use rayflex_core::{PipelineConfig, RayFlexDatapath, RayFlexRequest};
///
/// let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
/// let beat = RayFlexRequest::euclidean(0, [2.0; 16], [0.0; 16], u16::MAX, true);
/// let response = datapath.execute(&beat);
/// assert_eq!(response.distance_result.unwrap().euclidean_accumulator, 64.0);
/// ```
#[derive(Debug, Clone)]
pub struct RayFlexDatapath {
    config: PipelineConfig,
    accumulators: AccumulatorState,
    executed: u64,
}

impl RayFlexDatapath {
    /// Creates a functional datapath for the given configuration.
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        RayFlexDatapath {
            config,
            accumulators: AccumulatorState::new(),
            executed: 0,
        }
    }

    /// The configuration this datapath models.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Number of beats executed so far.
    #[must_use]
    pub fn executed_beats(&self) -> u64 {
        self.executed
    }

    /// The current accumulator state (useful for inspecting multi-beat distance jobs).
    #[must_use]
    pub fn accumulators(&self) -> &AccumulatorState {
        &self.accumulators
    }

    /// Executes one beat through all eleven stages and returns its response.
    ///
    /// # Panics
    ///
    /// Panics if the beat's opcode is not supported by this configuration (issuing a Euclidean or
    /// cosine beat to a baseline datapath), mirroring the undefined behaviour of driving an
    /// absent opcode into the RTL.
    pub fn execute(&mut self, request: &RayFlexRequest) -> RayFlexResponse {
        assert!(
            self.config.supports(request.opcode),
            "opcode {} is not supported by the {} configuration",
            request.opcode,
            self.config.name()
        );
        self.executed += 1;
        let entry = crate::SharedRayFlexData::from_request(request);
        let exit = stages::apply_all_middle_stages(&entry, &mut self.accumulators);
        exit.to_response()
    }

    /// Executes a batch of beats in order and collects their responses.
    ///
    /// # Panics
    ///
    /// Panics if any beat's opcode is unsupported (see [`RayFlexDatapath::execute`]).
    pub fn execute_batch(&mut self, requests: &[RayFlexRequest]) -> Vec<RayFlexResponse> {
        requests.iter().map(|r| self.execute(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::{Aabb, Ray, Triangle, Vec3};

    #[test]
    fn executes_box_and_triangle_beats() {
        let mut dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let boxes = [Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)); 4];
        let tri = Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        );
        let responses = dp.execute_batch(&[
            RayFlexRequest::ray_box(0, &ray, &boxes),
            RayFlexRequest::ray_triangle(1, &ray, &tri),
        ]);
        assert_eq!(responses.len(), 2);
        assert!(responses[0].box_result.unwrap().hit.iter().all(|&h| h));
        assert!(responses[1].triangle_result.unwrap().hit);
        assert_eq!(dp.executed_beats(), 2);
        assert_eq!(dp.config().name(), "baseline-unified");
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn baseline_configuration_rejects_distance_beats() {
        let mut dp = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let _ = dp.execute(&RayFlexRequest::euclidean(0, [0.0; 16], [0.0; 16], 0, false));
    }

    #[test]
    fn accumulator_state_is_visible() {
        let mut dp = RayFlexDatapath::new(PipelineConfig::extended_unified());
        dp.execute(&RayFlexRequest::euclidean(0, [1.0; 16], [0.0; 16], u16::MAX, false));
        assert_eq!(dp.accumulators().euclidean.to_f32(), 16.0);
    }
}
