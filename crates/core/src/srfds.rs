//! The Shared RayFlex Data Structure (paper §III-E).

use rayflex_softfloat::RecF32;

use crate::io::{BoxResult, DistanceResult, TriangleResult, EUCLIDEAN_LANES};
use crate::{Opcode, RayFlexRequest, RayFlexResponse};

/// The single wide data structure carried through every pipeline stage register.
///
/// Rather than defining a bespoke register bundle per stage, RayFlex defines one structure
/// containing *every* field any stage needs ("defined once, instantiated everywhere") and relies
/// on the synthesiser's dead-node elimination to drop the bits that are not live at a given stage
/// (the [`crate::liveness`] module models which bits those are).  Each stage's logic copies its
/// input structure to its output and overwrites only the fields it produces — exactly how the
/// stage functions in [`crate::stages`] are written.
///
/// All floating-point fields hold values in the internal 33-bit recoded format; the first and
/// last pipeline stages perform the conversion from and to IEEE binary32.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedRayFlexData {
    /// The operation this beat performs.
    pub opcode: Opcode,
    /// The caller-chosen identifier carried through unchanged.
    pub tag: u64,

    // --- Ray operand -------------------------------------------------------------------------
    /// Ray origin.
    pub ray_origin: [RecF32; 3],
    /// Pre-computed element-wise inverse of the ray direction.
    pub ray_inv_dir: [RecF32; 3],
    /// Start of the ray's parametric extent.
    pub ray_t_beg: RecF32,
    /// End of the ray's parametric extent.
    pub ray_t_end: RecF32,
    /// Axis renaming indices `(kx, ky, kz)` of the watertight test.
    pub ray_k: [u8; 3],
    /// Shear constants `(Sx, Sy, Sz)` of the watertight test.
    pub ray_shear: [RecF32; 3],

    // --- Ray-box operands and intermediates ----------------------------------------------------
    /// Minimum corners of the four candidate boxes; overwritten with the ray-origin-translated
    /// corners at stage 2.
    pub box_lo: [[RecF32; 3]; 4],
    /// Maximum corners of the four candidate boxes; overwritten at stage 2 like `box_lo`.
    pub box_hi: [[RecF32; 3]; 4],
    /// Stage-3 products `box_lo * inv_dir` (per box, per axis).
    pub box_t_lo: [[RecF32; 3]; 4],
    /// Stage-3 products `box_hi * inv_dir` (per box, per axis).
    pub box_t_hi: [[RecF32; 3]; 4],
    /// Stage-4 interval entry distances per box.
    pub box_t_entry: [RecF32; 4],
    /// Stage-4 interval exit distances per box.
    pub box_t_exit: [RecF32; 4],
    /// Stage-4 hit flags per box.
    pub box_hit: [bool; 4],
    /// Stage-10 traversal order (child indices sorted by order of intersection).
    pub box_order: [u8; 4],

    // --- Ray-triangle operands and intermediates -----------------------------------------------
    /// Triangle vertices; overwritten with the ray-origin-translated vertices at stage 2.
    pub tri_verts: [[RecF32; 3]; 3],
    /// Stage-3 shear products per vertex: `[Sx*Vkz, Sy*Vkz, Sz*Vkz]`.
    pub tri_shear_prod: [[RecF32; 3]; 3],
    /// Stage-4 sheared vertex coordinates `(x, y)` per vertex.
    pub tri_sheared_xy: [[RecF32; 2]; 3],
    /// Stage-5 cross products `[CxBy, CyBx, AxCy, AyCx, BxAy, ByAx]`.
    pub tri_products: [RecF32; 6],
    /// Stage-6 scaled barycentric coordinates `(U, V, W)`.
    pub tri_uvw: [RecF32; 3],
    /// Stage-7 distance products `[U*Az, V*Bz, W*Cz]`.
    pub tri_dist_prod: [RecF32; 3],
    /// Stage-8 partial determinant `U + V`.
    pub tri_det_partial: RecF32,
    /// Stage-8 partial distance numerator `U*Az + V*Bz`.
    pub tri_t_partial: RecF32,
    /// Stage-9 determinant `U + V + W`.
    pub tri_det: RecF32,
    /// Stage-9 distance numerator `U*Az + V*Bz + W*Cz`.
    pub tri_t_num: RecF32,
    /// Stage-10 hit flag.
    pub tri_hit: bool,

    // --- Distance-operation operands and intermediates (extended datapath) ---------------------
    /// First (query) vector operand, sixteen lanes.
    pub vec_a: [RecF32; EUCLIDEAN_LANES],
    /// Second (candidate) vector operand, sixteen lanes.
    pub vec_b: [RecF32; EUCLIDEAN_LANES],
    /// Lane-validity mask.
    pub vec_mask: u16,
    /// Accumulator-reset request carried to the output as `euclidean_reset` / `angular_reset`.
    pub reset_accumulator: bool,
    /// Euclidean working vector: differences at stage 2, squares at stage 3, then the reduction
    /// tree packs its partial sums into the low lanes (8 at stage 4, 4 at stage 6, 2 at stage 8,
    /// 1 at stage 9).
    pub euclid_work: [RecF32; EUCLIDEAN_LANES],
    /// Cosine dot-product working vector (8 lanes, reduced in place like `euclid_work`).
    pub cos_dot_work: [RecF32; 8],
    /// Cosine candidate-norm working vector (8 lanes, reduced in place).
    pub cos_norm_work: [RecF32; 8],
    /// Stage-10 Euclidean accumulator output.
    pub euclidean_accumulator: RecF32,
    /// Stage-9 cosine dot-product accumulator output.
    pub angular_dot: RecF32,
    /// Stage-9 cosine norm accumulator output.
    pub angular_norm: RecF32,
}

impl Default for SharedRayFlexData {
    /// An all-zero ray-box beat: the reset state of the pipeline registers, and the initial
    /// contents of the batched executor's scratch buffer.
    fn default() -> Self {
        SharedRayFlexData {
            opcode: Opcode::RayBox,
            tag: 0,
            ray_origin: [RecF32::ZERO; 3],
            ray_inv_dir: [RecF32::ZERO; 3],
            ray_t_beg: RecF32::ZERO,
            ray_t_end: RecF32::ZERO,
            ray_k: [0, 1, 2],
            ray_shear: [RecF32::ZERO; 3],
            box_lo: [[RecF32::ZERO; 3]; 4],
            box_hi: [[RecF32::ZERO; 3]; 4],
            box_t_lo: [[RecF32::ZERO; 3]; 4],
            box_t_hi: [[RecF32::ZERO; 3]; 4],
            box_t_entry: [RecF32::ZERO; 4],
            box_t_exit: [RecF32::ZERO; 4],
            box_hit: [false; 4],
            box_order: [0, 1, 2, 3],
            tri_verts: [[RecF32::ZERO; 3]; 3],
            tri_shear_prod: [[RecF32::ZERO; 3]; 3],
            tri_sheared_xy: [[RecF32::ZERO; 2]; 3],
            tri_products: [RecF32::ZERO; 6],
            tri_uvw: [RecF32::ZERO; 3],
            tri_dist_prod: [RecF32::ZERO; 3],
            tri_det_partial: RecF32::ZERO,
            tri_t_partial: RecF32::ZERO,
            tri_det: RecF32::ZERO,
            tri_t_num: RecF32::ZERO,
            tri_hit: false,
            vec_a: [RecF32::ZERO; EUCLIDEAN_LANES],
            vec_b: [RecF32::ZERO; EUCLIDEAN_LANES],
            vec_mask: 0,
            reset_accumulator: false,
            euclid_work: [RecF32::ZERO; EUCLIDEAN_LANES],
            cos_dot_work: [RecF32::ZERO; 8],
            cos_norm_work: [RecF32::ZERO; 8],
            euclidean_accumulator: RecF32::ZERO,
            angular_dot: RecF32::ZERO,
            angular_norm: RecF32::ZERO,
        }
    }
}

impl SharedRayFlexData {
    /// The stage-1 format conversion: builds the internal structure from an IO request, converting
    /// every floating-point operand to the recoded format.
    #[must_use]
    pub fn from_request(request: &RayFlexRequest) -> Self {
        let rec3 = |v: [f32; 3]| v.map(RecF32::from_f32);
        let boxes_lo = core::array::from_fn(|i| rec3(request.boxes_operand()[i].min.to_array()));
        let boxes_hi = core::array::from_fn(|i| rec3(request.boxes_operand()[i].max.to_array()));
        SharedRayFlexData {
            opcode: request.opcode,
            tag: request.tag,
            ray_origin: rec3(request.ray.origin),
            ray_inv_dir: rec3(request.ray.inv_dir),
            ray_t_beg: RecF32::from_f32(request.ray.t_beg),
            ray_t_end: RecF32::from_f32(request.ray.t_end),
            ray_k: request.ray.k,
            ray_shear: rec3(request.ray.shear),
            box_lo: boxes_lo,
            box_hi: boxes_hi,
            box_t_lo: [[RecF32::ZERO; 3]; 4],
            box_t_hi: [[RecF32::ZERO; 3]; 4],
            box_t_entry: [RecF32::ZERO; 4],
            box_t_exit: [RecF32::ZERO; 4],
            box_hit: [false; 4],
            box_order: [0, 1, 2, 3],
            tri_verts: [
                rec3(request.triangle_operand().v0.to_array()),
                rec3(request.triangle_operand().v1.to_array()),
                rec3(request.triangle_operand().v2.to_array()),
            ],
            tri_shear_prod: [[RecF32::ZERO; 3]; 3],
            tri_sheared_xy: [[RecF32::ZERO; 2]; 3],
            tri_products: [RecF32::ZERO; 6],
            tri_uvw: [RecF32::ZERO; 3],
            tri_dist_prod: [RecF32::ZERO; 3],
            tri_det_partial: RecF32::ZERO,
            tri_t_partial: RecF32::ZERO,
            tri_det: RecF32::ZERO,
            tri_t_num: RecF32::ZERO,
            tri_hit: false,
            vec_a: request.vector_operand().a.map(RecF32::from_f32),
            vec_b: request.vector_operand().b.map(RecF32::from_f32),
            vec_mask: request.vector_operand().mask,
            reset_accumulator: request.reset_accumulator,
            euclid_work: [RecF32::ZERO; EUCLIDEAN_LANES],
            cos_dot_work: [RecF32::ZERO; 8],
            cos_norm_work: [RecF32::ZERO; 8],
            euclidean_accumulator: RecF32::ZERO,
            angular_dot: RecF32::ZERO,
            angular_norm: RecF32::ZERO,
        }
    }

    /// The stage-11 format conversion: extracts the IO response for this beat's opcode, converting
    /// the recoded results back to IEEE binary32.
    #[must_use]
    pub fn to_response(&self) -> RayFlexResponse {
        let mut response = RayFlexResponse {
            opcode: self.opcode,
            tag: self.tag,
            box_result: None,
            triangle_result: None,
            distance_result: None,
        };
        match self.opcode {
            Opcode::RayBox => {
                response.box_result = Some(BoxResult {
                    hit: self.box_hit,
                    t_entry: self.box_t_entry.map(RecF32::to_f32),
                    traversal_order: self.box_order,
                });
            }
            Opcode::RayTriangle => {
                response.triangle_result = Some(TriangleResult {
                    hit: self.tri_hit,
                    t_num: self.tri_t_num.to_f32(),
                    det: self.tri_det.to_f32(),
                    u: self.tri_uvw[0].to_f32(),
                    v: self.tri_uvw[1].to_f32(),
                    w: self.tri_uvw[2].to_f32(),
                });
            }
            Opcode::Euclidean | Opcode::Cosine => {
                response.distance_result = Some(DistanceResult {
                    euclidean_accumulator: self.euclidean_accumulator.to_f32(),
                    euclidean_reset: self.reset_accumulator && self.opcode == Opcode::Euclidean,
                    angular_dot_product: self.angular_dot.to_f32(),
                    angular_norm: self.angular_norm.to_f32(),
                    angular_reset: self.reset_accumulator && self.opcode == Opcode::Cosine,
                });
            }
        }
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::{Aabb, Ray, Triangle, Vec3};

    #[test]
    fn request_roundtrips_through_the_conversion_stages() {
        let ray = Ray::new(Vec3::new(1.0, 2.0, 3.0), Vec3::new(0.0, 0.0, -1.0));
        let boxes = [Aabb::new(Vec3::splat(-2.0), Vec3::splat(2.0)); 4];
        let request = RayFlexRequest::ray_box(42, &ray, &boxes);
        let data = SharedRayFlexData::from_request(&request);
        assert_eq!(data.opcode, Opcode::RayBox);
        assert_eq!(data.tag, 42);
        assert_eq!(data.ray_origin[1].to_f32(), 2.0);
        assert_eq!(data.ray_inv_dir[2].to_f32(), -1.0);
        assert_eq!(data.box_lo[3][0].to_f32(), -2.0);
        let response = data.to_response();
        assert_eq!(response.tag, 42);
        assert!(response.box_result.is_some());
        assert!(response.triangle_result.is_none());
    }

    #[test]
    fn triangle_requests_produce_triangle_responses() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let tri = Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        );
        let data = SharedRayFlexData::from_request(&RayFlexRequest::ray_triangle(7, &ray, &tri));
        assert_eq!(data.tri_verts[2][1].to_f32(), 1.0);
        let response = data.to_response();
        assert!(response.triangle_result.is_some());
        assert!(response.box_result.is_none());
        assert!(response.distance_result.is_none());
    }

    #[test]
    fn distance_requests_carry_the_reset_flag_to_the_right_output() {
        let request = RayFlexRequest::euclidean(1, [1.0; 16], [0.0; 16], u16::MAX, true);
        let data = SharedRayFlexData::from_request(&request);
        let response = data.to_response();
        let result = response.distance_result.expect("distance result");
        assert!(result.euclidean_reset);
        assert!(!result.angular_reset);

        let request = RayFlexRequest::cosine(2, [1.0; 8], [0.5; 8], u8::MAX, true);
        let response = SharedRayFlexData::from_request(&request).to_response();
        let result = response.distance_result.expect("distance result");
        assert!(result.angular_reset);
        assert!(!result.euclidean_reset);
    }
}
