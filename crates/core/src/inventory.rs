//! Hardware inventories of the datapath configurations (paper Fig. 4c and Fig. 6c).
//!
//! The inventory is the bridge between the datapath model and the virtual synthesis flow in
//! `rayflex-synth`: for a given [`PipelineConfig`] it lists, per pipeline stage, how many
//! functional units of each kind exist, how many operand multiplexers the sharing strategy
//! requires, and how many pipeline-register bits survive dead-node elimination (from the
//! [`crate::liveness`] table).

use rayflex_hw::{FuKind, HardwareInventory, StageInventory};

use crate::stages::STAGE_COUNT;
use crate::{liveness, FuSharing, Opcode, PipelineConfig};

/// The functional units one operation needs at one intermediate stage (2–10), as allocated in
/// Fig. 4c (baseline operations) and Fig. 6c (extended operations).  This is both the disjoint
/// design's per-operation private pool and the activity set the operation exercises when it
/// flows through any design.
#[must_use]
pub fn op_fu_requirements(opcode: Opcode, stage: usize) -> Vec<(FuKind, u32)> {
    use FuKind::*;
    use Opcode::*;
    let list: &[(FuKind, u32)] = match (opcode, stage) {
        (RayBox, 2) => &[(Adder, 24)],
        (RayBox, 3) => &[(Multiplier, 24)],
        (RayBox, 4) => &[(Comparator, 40)],
        (RayBox, 10) => &[(QuadSortNetwork, 2)],
        (RayTriangle, 2) => &[(Adder, 9)],
        (RayTriangle, 3) => &[(Multiplier, 9)],
        (RayTriangle, 4) => &[(Adder, 6)],
        (RayTriangle, 5) => &[(Multiplier, 6)],
        (RayTriangle, 6) => &[(Adder, 3)],
        (RayTriangle, 7) => &[(Multiplier, 3)],
        (RayTriangle, 8) => &[(Adder, 2)],
        (RayTriangle, 9) => &[(Adder, 2)],
        (RayTriangle, 10) => &[(Comparator, 5)],
        (Euclidean, 2) => &[(Adder, 16)],
        (Euclidean, 3) => &[(Multiplier, 16)],
        (Euclidean, 4) => &[(Adder, 8)],
        (Euclidean, 6) => &[(Adder, 4)],
        (Euclidean, 8) => &[(Adder, 2)],
        (Euclidean, 9) => &[(Adder, 1)],
        (Euclidean, 10) => &[(Adder, 1)],
        (Cosine, 3) => &[(Multiplier, 16)],
        (Cosine, 4) => &[(Adder, 8)],
        (Cosine, 6) => &[(Adder, 4)],
        (Cosine, 8) => &[(Adder, 2)],
        (Cosine, 9) => &[(Adder, 2)],
        _ => &[],
    };
    list.to_vec()
}

/// How many of an operation's stage-3 multipliers see both operands from the same wire and can
/// therefore be specialised into squarers by the synthesiser when the operation owns private
/// functional units (§VII-B): all sixteen for the Euclidean operation (element-wise squares of
/// the differences) and eight of the sixteen for the cosine operation (element-wise squares of
/// the candidate vector).
#[must_use]
pub fn op_squarer_capable_multipliers(opcode: Opcode, stage: usize) -> u32 {
    match (opcode, stage) {
        (Opcode::Euclidean, 3) => 16,
        (Opcode::Cosine, 3) => 8,
        _ => 0,
    }
}

/// Number of stage-1 input format converters (one per FP32 field of the IO request that the
/// feature set uses).
#[must_use]
pub fn input_converters(config: &PipelineConfig) -> u32 {
    // Ray (16) + four boxes (24) + triangle (9); the extension adds the two 16-lane vectors (32).
    let baseline = 16 + 24 + 9;
    if config.supports(Opcode::Euclidean) {
        baseline + 32
    } else {
        baseline
    }
}

/// Number of stage-11 output format converters (one per FP32 field of the IO response).
#[must_use]
pub fn output_converters(config: &PipelineConfig) -> u32 {
    // Four sorted entry distances + the triangle numerator/denominator pair; the extension adds
    // the Euclidean accumulator and the two cosine accumulators.
    let baseline = 4 + 2;
    if config.supports(Opcode::Euclidean) {
        baseline + 3
    } else {
        baseline
    }
}

/// Builds the full hardware inventory of a configuration.
#[must_use]
pub fn build_inventory(config: &PipelineConfig) -> HardwareInventory {
    let mut inventory = HardwareInventory::new(config.name());
    for stage in 1..=STAGE_COUNT {
        let mut entry = StageInventory::new();
        match stage {
            1 => entry.add_fu(FuKind::FormatConverterIn, input_converters(config)),
            11 => entry.add_fu(FuKind::FormatConverterOut, output_converters(config)),
            _ => populate_middle_stage(&mut entry, config, stage),
        }
        entry.set_register_bits(liveness::live_register_bits(config, stage));
        entry.set_accumulator_bits(accumulator_bits(config, stage));
        inventory.push_stage(entry);
    }
    inventory
}

/// Accumulator-register bits added by the extended design: two 33-bit registers at stage 9 for
/// the cosine sums and one at stage 10 for the Euclidean sum (Fig. 6c).
#[must_use]
pub fn accumulator_bits(config: &PipelineConfig, stage: usize) -> u32 {
    if !config.supports(Opcode::Euclidean) {
        return 0;
    }
    match stage {
        9 => 66,
        10 => 33,
        _ => 0,
    }
}

fn populate_middle_stage(entry: &mut StageInventory, config: &PipelineConfig, stage: usize) {
    let ops = config.supported_opcodes();
    let compute_kinds = [
        FuKind::Adder,
        FuKind::Multiplier,
        FuKind::Comparator,
        FuKind::QuadSortNetwork,
    ];
    let mut mux_legs = 0u32;
    for kind in compute_kinds {
        let per_op: Vec<u32> = ops
            .iter()
            .map(|&op| {
                op_fu_requirements(op, stage)
                    .iter()
                    .find(|(k, _)| *k == kind)
                    .map_or(0, |(_, count)| *count)
            })
            .collect();
        let sum: u32 = per_op.iter().sum();
        let count = match config.fu_sharing() {
            FuSharing::Unified => per_op.iter().copied().max().unwrap_or(0),
            FuSharing::Disjoint => sum,
        };
        if count == 0 {
            continue;
        }
        // Operand routing: every operation drives its own operand legs into the units it uses,
        // and every unit carries a zero-gating leg for power gating (§VII-B).
        mux_legs += sum + count;
        if kind == FuKind::Multiplier {
            let squarers = squarer_count(config, stage);
            entry.add_fu(FuKind::Multiplier, count - squarers);
            entry.add_fu(FuKind::Squarer, squarers);
        } else {
            entry.add_fu(kind, count);
        }
    }
    entry.add_fu(FuKind::OperandMux, mux_legs);
}

/// Number of multiplier instances at `stage` that the synthesiser specialises into squarers for
/// this configuration: only possible in the disjoint design (private units) and only when the
/// §VII-B perturbation is off.
#[must_use]
pub fn squarer_count(config: &PipelineConfig, stage: usize) -> u32 {
    if config.fu_sharing() != FuSharing::Disjoint || config.squarers_perturbed() {
        return 0;
    }
    config
        .supported_opcodes()
        .iter()
        .map(|&op| op_squarer_capable_multipliers(op, stage))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_unified_matches_fig_4c() {
        let inv = build_inventory(&PipelineConfig::baseline_unified());
        assert_eq!(inv.stage_count(), 11);
        let s = inv.stages();
        assert_eq!(s[1].fu_count(FuKind::Adder), 24, "stage 2");
        assert_eq!(s[2].fu_count(FuKind::Multiplier), 24, "stage 3");
        assert_eq!(s[3].fu_count(FuKind::Comparator), 40, "stage 4");
        assert_eq!(s[3].fu_count(FuKind::Adder), 6, "stage 4");
        assert_eq!(s[4].fu_count(FuKind::Multiplier), 6, "stage 5");
        assert_eq!(s[5].fu_count(FuKind::Adder), 3, "stage 6");
        assert_eq!(s[6].fu_count(FuKind::Multiplier), 3, "stage 7");
        assert_eq!(s[7].fu_count(FuKind::Adder), 2, "stage 8");
        assert_eq!(s[8].fu_count(FuKind::Adder), 2, "stage 9");
        assert_eq!(s[9].fu_count(FuKind::QuadSortNetwork), 2, "stage 10");
        assert_eq!(s[9].fu_count(FuKind::Comparator), 5, "stage 10");
        assert_eq!(s[0].fu_count(FuKind::FormatConverterIn), 49, "stage 1");
        assert_eq!(s[10].fu_count(FuKind::FormatConverterOut), 6, "stage 11");
    }

    #[test]
    fn baseline_unified_peak_throughput_is_125_ops_per_cycle() {
        // The §IV-B accounting: 37 adders + 33 multipliers + 45 comparators + 2 quad-sorts
        // (counted as five comparators each) = 125 operations per cycle.
        let inv = build_inventory(&PipelineConfig::baseline_unified());
        assert_eq!(inv.peak_ops_per_cycle(), 125);
        assert_eq!(inv.fu_count(FuKind::Adder), 37);
        assert_eq!(inv.fu_count(FuKind::Multiplier), 33);
        assert_eq!(inv.fu_count(FuKind::Comparator), 45);
        assert_eq!(inv.fu_count(FuKind::QuadSortNetwork), 2);
    }

    #[test]
    fn extended_unified_adds_the_fig_6c_assets() {
        let base = build_inventory(&PipelineConfig::baseline_unified());
        let ext = build_inventory(&PipelineConfig::extended_unified());
        // Fig. 6c: +2 adders at stage 4, +1 at stage 6, +1 at stage 10, and three accumulator
        // registers; the stage-2/3/8/9 units are fully shared.
        assert_eq!(ext.stages()[3].fu_count(FuKind::Adder), 8);
        assert_eq!(ext.stages()[5].fu_count(FuKind::Adder), 4);
        assert_eq!(ext.stages()[7].fu_count(FuKind::Adder), 2);
        assert_eq!(ext.stages()[9].fu_count(FuKind::Adder), 1);
        assert_eq!(
            ext.fu_count(FuKind::Adder),
            base.fu_count(FuKind::Adder) + 4
        );
        assert_eq!(
            ext.fu_count(FuKind::Multiplier),
            base.fu_count(FuKind::Multiplier)
        );
        assert_eq!(ext.accumulator_bits(), 99);
        assert_eq!(base.accumulator_bits(), 0);
    }

    #[test]
    fn disjoint_designs_provision_private_units() {
        let base_dis = build_inventory(&PipelineConfig::baseline_disjoint());
        // Stage 2: 24 (box) + 9 (triangle) private adders; stage 3 likewise for multipliers.
        assert_eq!(base_dis.stages()[1].fu_count(FuKind::Adder), 33);
        assert_eq!(base_dis.stages()[2].fu_count(FuKind::Multiplier), 33);

        let ext_dis = build_inventory(&PipelineConfig::extended_disjoint());
        assert_eq!(ext_dis.stages()[1].fu_count(FuKind::Adder), 49);
        // Stage 3: 65 private multipliers, 24 of which specialise into squarers.
        assert_eq!(
            ext_dis.stages()[2].fu_count(FuKind::Multiplier)
                + ext_dis.stages()[2].fu_count(FuKind::Squarer),
            65
        );
        assert_eq!(ext_dis.stages()[2].fu_count(FuKind::Squarer), 24);
    }

    #[test]
    fn perturbation_removes_the_squarers() {
        let perturbed =
            build_inventory(&PipelineConfig::extended_disjoint().with_squarer_perturbation(true));
        assert_eq!(perturbed.stages()[2].fu_count(FuKind::Squarer), 0);
        assert_eq!(perturbed.stages()[2].fu_count(FuKind::Multiplier), 65);
        // Unified designs can never specialise (the units are shared between operations).
        let unified = build_inventory(&PipelineConfig::extended_unified());
        assert_eq!(unified.fu_count(FuKind::Squarer), 0);
    }

    #[test]
    fn register_bits_grow_when_operations_are_added_but_not_when_sharing_changes() {
        let base_uni = build_inventory(&PipelineConfig::baseline_unified());
        let base_dis = build_inventory(&PipelineConfig::baseline_disjoint());
        let ext_uni = build_inventory(&PipelineConfig::extended_unified());
        assert_eq!(base_uni.register_bits(), base_dis.register_bits());
        assert!(ext_uni.register_bits() > base_uni.register_bits());
    }

    #[test]
    fn unified_sharing_never_uses_more_units_than_disjoint() {
        for (uni, dis) in [
            (
                PipelineConfig::baseline_unified(),
                PipelineConfig::baseline_disjoint(),
            ),
            (
                PipelineConfig::extended_unified(),
                PipelineConfig::extended_disjoint(),
            ),
        ] {
            let uni = build_inventory(&uni);
            let dis = build_inventory(&dis);
            for kind in [FuKind::Adder, FuKind::Multiplier, FuKind::Comparator] {
                assert!(uni.fu_count(kind) <= dis.fu_count(kind) + dis.fu_count(FuKind::Squarer));
            }
        }
    }
}
