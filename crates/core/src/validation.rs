//! The paper's twenty directed functional test cases (§IV-A): nine ray–box and eleven
//! ray–triangle scenarios with their expected outcomes.
//!
//! The paper lists the scenarios but not their coordinates, so this module defines concrete
//! vectors that realise each description.  For the surface/corner/edge scenarios the paper
//! explains that its implementation treats rays coplanar with a box face as misses because the
//! slab arithmetic produces `inf × 0 = NaN`; the vectors chosen here exercise exactly that path.

use rayflex_geometry::{golden, Aabb, Ray, Triangle, Vec3};

use crate::{PipelineConfig, RayFlexDatapath, RayFlexRequest};

/// The expected outcome of a directed case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// Expected hit flags of the four box slots, in input order.
    BoxHits([bool; 4]),
    /// Expected hit flag of the triangle test.
    TriangleHit(bool),
}

/// One directed test case.
#[derive(Debug, Clone)]
pub struct DirectedCase {
    /// Case identifier, e.g. `"box-03"` or `"tri-11"`.
    pub id: &'static str,
    /// The paper's description of the scenario.
    pub description: &'static str,
    /// The request realising the scenario.
    pub request: RayFlexRequest,
    /// The expected outcome.
    pub expected: Expected,
}

/// The outcome of running one directed case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseOutcome {
    /// Case identifier.
    pub id: &'static str,
    /// Whether the datapath matched the expected outcome.
    pub passed: bool,
    /// Whether the golden software model also matched the expected outcome.
    pub golden_agrees: bool,
}

/// Summary of a directed-suite run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SuiteReport {
    /// Per-case outcomes.
    pub outcomes: Vec<CaseOutcome>,
}

impl SuiteReport {
    /// Number of cases that passed on the datapath.
    #[must_use]
    pub fn passed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.passed).count()
    }

    /// Number of cases that failed on the datapath.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.passed()
    }

    /// `true` when every case passed and the golden model agreed everywhere.
    #[must_use]
    pub fn all_green(&self) -> bool {
        self.outcomes.iter().all(|o| o.passed && o.golden_agrees)
    }
}

fn unit_box() -> Aabb {
    Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0))
}

fn far_box() -> Aabb {
    Aabb::new(Vec3::new(50.0, 50.0, 50.0), Vec3::new(52.0, 52.0, 52.0))
}

/// The canonical front-facing triangle used by the triangle cases: its front face (in the
/// paper's `dir · (AB × AC) > 0` culling convention) is hit by rays travelling towards +z.
fn facing_triangle() -> Triangle {
    Triangle::new(
        Vec3::new(-1.0, -1.0, 3.0),
        Vec3::new(1.0, -1.0, 3.0),
        Vec3::new(0.0, 1.0, 3.0),
    )
}

fn box_case(
    id: &'static str,
    description: &'static str,
    ray: Ray,
    boxes: [Aabb; 4],
    expected: [bool; 4],
) -> DirectedCase {
    DirectedCase {
        id,
        description,
        request: RayFlexRequest::ray_box(0, &ray, &boxes),
        expected: Expected::BoxHits(expected),
    }
}

fn tri_case(
    id: &'static str,
    description: &'static str,
    ray: Ray,
    triangle: Triangle,
    expected: bool,
) -> DirectedCase {
    DirectedCase {
        id,
        description,
        request: RayFlexRequest::ray_triangle(0, &ray, &triangle),
        expected: Expected::TriangleHit(expected),
    }
}

/// Builds the nine directed ray–box cases of §IV-A.
#[must_use]
pub fn ray_box_cases() -> Vec<DirectedCase> {
    let unit = unit_box();
    vec![
        box_case(
            "box-01",
            "ray originating from within the box (hit)",
            Ray::new(Vec3::new(0.2, 0.1, -0.3), Vec3::new(0.3, 0.5, 1.0)),
            [unit; 4],
            [true; 4],
        ),
        box_case(
            "box-02",
            "ray from outside the box and pointing away (miss)",
            Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::new(0.1, 0.2, 1.0)),
            [unit; 4],
            [false; 4],
        ),
        box_case(
            "box-03",
            "ray from a surface of the box and pointing away (miss, coplanar with the face)",
            Ray::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.2)),
            [unit; 4],
            [false; 4],
        ),
        box_case(
            "box-04",
            "ray from a corner of the box and pointing away (miss)",
            Ray::new(Vec3::new(1.0, 1.0, 1.0), Vec3::new(1.0, 1.0, 0.0)),
            [unit; 4],
            [false; 4],
        ),
        box_case(
            "box-05",
            "ray from a corner of the box and pointing along an edge (miss)",
            Ray::new(Vec3::new(1.0, 1.0, 1.0), Vec3::new(0.0, 0.0, -1.0)),
            [unit; 4],
            [false; 4],
        ),
        box_case(
            "box-06",
            "ray from outside, pointing towards the box (hit)",
            Ray::new(Vec3::new(0.3, -0.2, -6.0), Vec3::new(0.0, 0.05, 1.0)),
            [unit; 4],
            [true; 4],
        ),
        box_case(
            "box-07",
            "ray hits two boxes in a row",
            Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0)),
            [
                Aabb::new(Vec3::new(-1.0, -1.0, 0.0), Vec3::new(1.0, 1.0, 1.0)),
                Aabb::new(Vec3::new(-1.0, -1.0, 3.0), Vec3::new(1.0, 1.0, 4.0)),
                far_box(),
                far_box(),
            ],
            [true, true, false, false],
        ),
        box_case(
            "box-08",
            "ray hits three boxes in a row and misses a fourth box off its path",
            Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0)),
            [
                Aabb::new(Vec3::new(-1.0, -1.0, 0.0), Vec3::new(1.0, 1.0, 1.0)),
                Aabb::new(Vec3::new(-1.0, -1.0, 3.0), Vec3::new(1.0, 1.0, 4.0)),
                Aabb::new(Vec3::new(-1.0, -1.0, 6.0), Vec3::new(1.0, 1.0, 7.0)),
                far_box(),
            ],
            [true, true, true, false],
        ),
        box_case(
            "box-09",
            "ray from outside the box, overlapping with an edge of the box (miss)",
            Ray::new(Vec3::new(1.0, 1.0, 5.0), Vec3::new(0.0, 0.0, -1.0)),
            [unit; 4],
            [false; 4],
        ),
    ]
}

/// Builds the eleven directed ray–triangle cases of §IV-A.
#[must_use]
pub fn ray_triangle_cases() -> Vec<DirectedCase> {
    let tri = facing_triangle();
    let towards_z = |origin: Vec3| Ray::new(origin, Vec3::new(0.0, 0.0, 1.0));
    vec![
        tri_case(
            "tri-01",
            "ray hits the back of triangle (miss)",
            towards_z(Vec3::ZERO),
            tri.flipped(),
            false,
        ),
        tri_case(
            "tri-02",
            "ray hits the front of triangle",
            towards_z(Vec3::ZERO),
            tri,
            true,
        ),
        tri_case(
            "tri-03",
            "ray hits an edge of triangle from the front side (hit)",
            towards_z(Vec3::new(0.0, -1.0, 0.0)),
            tri,
            true,
        ),
        tri_case(
            "tri-04",
            "ray hits a triangle vertex from the front side (hit)",
            towards_z(Vec3::new(0.0, 1.0, 0.0)),
            tri,
            true,
        ),
        tri_case(
            "tri-05",
            "ray misses the triangle",
            Ray::new(Vec3::new(5.0, 5.0, 0.0), Vec3::new(0.1, 0.1, 1.0)),
            tri,
            false,
        ),
        tri_case(
            "tri-06",
            "ray is parallel to the normal vector of the triangle but has no intersection (miss)",
            towards_z(Vec3::new(3.0, 0.0, 0.0)),
            tri,
            false,
        ),
        tri_case(
            "tri-07",
            "ray hits a far-away triangle",
            towards_z(Vec3::ZERO),
            tri.translated(Vec3::new(0.0, 0.0, 30_000.0)),
            true,
        ),
        tri_case(
            "tri-08",
            "ray hits the front of triangle at an oblique angle",
            Ray::new(Vec3::new(-2.0, -1.5, 0.0), Vec3::new(2.1, 1.3, 3.0)),
            tri,
            true,
        ),
        tri_case(
            "tri-09",
            "coplanar ray hits the edge of triangle (miss)",
            Ray::new(Vec3::new(-5.0, -1.0, 3.0), Vec3::new(1.0, 0.0, 0.0)),
            tri,
            false,
        ),
        tri_case(
            "tri-10",
            "ray (aligned with a different axis compared to case #2) hits the front of triangle",
            Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)),
            Triangle::new(
                Vec3::new(3.0, -1.0, -1.0),
                Vec3::new(3.0, 1.0, -1.0),
                Vec3::new(3.0, 0.0, 1.0),
            ),
            true,
        ),
        tri_case(
            "tri-11",
            "coplanar ray originating from within the triangle hits edge of triangle (miss)",
            Ray::new(Vec3::new(0.0, -0.5, 3.0), Vec3::new(1.0, 0.0, 0.0)),
            tri,
            false,
        ),
    ]
}

/// All twenty directed cases.
#[must_use]
pub fn directed_cases() -> Vec<DirectedCase> {
    let mut cases = ray_box_cases();
    cases.extend(ray_triangle_cases());
    cases
}

/// Runs one directed case on a datapath and checks the outcome against the expectation and
/// against the golden software model.
#[must_use]
pub fn run_case(case: &DirectedCase, datapath: &mut RayFlexDatapath) -> CaseOutcome {
    let response = datapath.execute(&case.request);
    let (passed, golden_agrees) = match case.expected {
        Expected::BoxHits(expected) => {
            let Some(result) = response.box_result else {
                unreachable!("a box case always returns a box result");
            };
            let ray = reconstruct_ray(&case.request);
            let golden_hits: [bool; 4] = core::array::from_fn(|i| {
                golden::slab::ray_box(&ray, &case.request.boxes_operand()[i]).hit
            });
            (result.hit == expected, golden_hits == expected)
        }
        Expected::TriangleHit(expected) => {
            let Some(result) = response.triangle_result else {
                unreachable!("a triangle case always returns a triangle result");
            };
            let ray = reconstruct_ray(&case.request);
            let golden_hit =
                golden::watertight::ray_triangle(&ray, case.request.triangle_operand()).hit;
            (result.hit == expected, golden_hit == expected)
        }
    };
    CaseOutcome {
        id: case.id,
        passed,
        golden_agrees,
    }
}

/// Runs the complete twenty-case suite on a fresh datapath of the given configuration.
#[must_use]
pub fn run_directed_suite(config: PipelineConfig) -> SuiteReport {
    let mut datapath = RayFlexDatapath::new(config);
    SuiteReport {
        outcomes: directed_cases()
            .iter()
            .map(|case| run_case(case, &mut datapath))
            .collect(),
    }
}

/// Rebuilds the geometry ray from a request's ray operand (for golden-model comparison).
fn reconstruct_ray(request: &RayFlexRequest) -> Ray {
    Ray::with_extent(
        Vec3::from_array(request.ray.origin),
        Vec3::from_array(request.ray.dir),
        request.ray.t_beg,
        request.ray.t_end,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Opcode;

    #[test]
    fn there_are_exactly_twenty_directed_cases() {
        assert_eq!(ray_box_cases().len(), 9);
        assert_eq!(ray_triangle_cases().len(), 11);
        assert_eq!(directed_cases().len(), 20);
        // Identifiers are unique.
        let ids: std::collections::BTreeSet<_> = directed_cases().iter().map(|c| c.id).collect();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn every_directed_case_passes_on_the_baseline_datapath() {
        let report = run_directed_suite(PipelineConfig::baseline_unified());
        let failing: Vec<_> = report
            .outcomes
            .iter()
            .filter(|o| !o.passed || !o.golden_agrees)
            .map(|o| o.id)
            .collect();
        assert!(report.all_green(), "failing cases: {failing:?}");
        assert_eq!(report.passed(), 20);
        assert_eq!(report.failed(), 0);
    }

    #[test]
    fn every_directed_case_passes_on_the_extended_datapath_too() {
        let report = run_directed_suite(PipelineConfig::extended_disjoint());
        assert!(report.all_green());
    }

    #[test]
    fn directed_cases_use_the_right_opcodes() {
        for case in directed_cases() {
            match case.expected {
                Expected::BoxHits(_) => assert_eq!(case.request.opcode, Opcode::RayBox),
                Expected::TriangleHit(_) => assert_eq!(case.request.opcode, Opcode::RayTriangle),
            }
        }
    }
}
