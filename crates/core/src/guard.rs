//! Datapath input guards: cheap, allocation-free finiteness predicates over the geometric
//! inputs a beat can carry.
//!
//! The datapath itself is total — every stage produces a (NaN-canonicalised) response for any
//! bit pattern — so these guards exist for the layer *above* it: an engine that wants to fail
//! structured instead of computing garbage checks its inputs once, up front, with these
//! predicates (the `rtunit` `SceneValidator` and the `try_*` entry points).  They are plain
//! predicates rather than `Result`s so callers can compose their own error taxonomy.

use rayflex_geometry::{Aabb, Ray, Triangle, Vec3};

/// `true` when every component of the vector is finite (no NaN, no ±∞).
#[must_use]
pub fn finite_vec3(v: Vec3) -> bool {
    v.is_finite()
}

/// `true` when the ray is traceable: finite origin, finite non-zero direction, a finite extent
/// start and an extent end that is not NaN (`+∞` — the unbounded closest-hit extent — is
/// allowed).
#[must_use]
pub fn finite_ray(ray: &Ray) -> bool {
    ray.origin.is_finite()
        && ray.dir.is_finite()
        && ray.dir.length_squared() > 0.0
        && ray.t_beg.is_finite()
        && !ray.t_end.is_nan()
}

/// `true` when every vertex of the triangle is finite.
#[must_use]
pub fn finite_triangle(triangle: &Triangle) -> bool {
    triangle.v0.is_finite() && triangle.v1.is_finite() && triangle.v2.is_finite()
}

/// `true` when the triangle is degenerate: a non-finite vertex or exactly zero area (the three
/// vertices collinear or coincident).  Thin-but-valid slivers are *not* degenerate.
#[must_use]
pub fn degenerate_triangle(triangle: &Triangle) -> bool {
    !finite_triangle(triangle) || triangle.area() == 0.0
}

/// `true` when both corners of the box are finite and ordered (`min ≤ max` component-wise).
/// Deliberately empty boxes (`min > max`, the "never hit" sentinel) are *not* finite boxes —
/// use this on boxes that claim to bound something.
#[must_use]
pub fn finite_aabb(aabb: &Aabb) -> bool {
    aabb.min.is_finite()
        && aabb.max.is_finite()
        && aabb.min.x <= aabb.max.x
        && aabb.min.y <= aabb.max.y
        && aabb.min.z <= aabb.max.z
}

/// `true` when `outer` contains `inner` entirely (closed-interval containment per axis).  An
/// empty `inner` (`min > max`) is contained in anything — it bounds nothing.
#[must_use]
pub fn aabb_contains_aabb(outer: &Aabb, inner: &Aabb) -> bool {
    let empty = inner.min.x > inner.max.x || inner.min.y > inner.max.y || inner.min.z > inner.max.z;
    empty || (outer.contains(inner.min) && outer.contains(inner.max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rays_with_nan_or_zero_direction_are_rejected() {
        let good = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(finite_ray(&good));
        let nan_origin = Ray::new(Vec3::new(f32::NAN, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(!finite_ray(&nan_origin));
        // `Ray::new` rejects a zero direction at construction, but the fields are public, so a
        // corrupted ray can still reach the guard.
        let mut zero_dir = good;
        zero_dir.dir = Vec3::new(0.0, 0.0, 0.0);
        assert!(!finite_ray(&zero_dir));
        let inf_dir = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(f32::INFINITY, 0.0, 0.0));
        assert!(!finite_ray(&inf_dir));
    }

    #[test]
    fn infinite_extent_ends_are_fine_but_nan_extents_are_not() {
        let unbounded = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(unbounded.t_end.is_infinite());
        assert!(finite_ray(&unbounded));
        let nan_extent = Ray::with_extent(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            f32::NAN,
            1.0,
        );
        assert!(!finite_ray(&nan_extent));
    }

    #[test]
    fn triangle_guards_flag_nan_and_zero_area() {
        let good = Triangle::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        assert!(finite_triangle(&good) && !degenerate_triangle(&good));
        let nan = Triangle::new(
            Vec3::new(f32::NAN, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        assert!(!finite_triangle(&nan) && degenerate_triangle(&nan));
        let collinear = Triangle::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
        );
        assert!(degenerate_triangle(&collinear));
    }

    #[test]
    fn aabb_containment_is_closed_and_tolerates_empty_inners() {
        let outer = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        assert!(finite_aabb(&outer));
        assert!(aabb_contains_aabb(&outer, &outer), "containment is closed");
        let inner = Aabb::new(Vec3::splat(-0.5), Vec3::splat(0.5));
        assert!(aabb_contains_aabb(&outer, &inner));
        assert!(!aabb_contains_aabb(&inner, &outer));
        let empty = Aabb::new(Vec3::splat(1.0), Vec3::splat(-1.0));
        assert!(!finite_aabb(&empty));
        assert!(aabb_contains_aabb(&inner, &empty), "empty bounds nothing");
    }
}
