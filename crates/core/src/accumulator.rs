//! Accumulator registers of the extended datapath (paper §V-A, Fig. 6c stages 9 and 10).

use rayflex_softfloat::RecF32;

/// The three accumulator registers added by the extended datapath: the Euclidean partial-sum
/// register at stage 10 and the cosine dot-product / candidate-norm registers at stage 9.
///
/// A pair of vectors longer than one beat is streamed through the datapath over multiple beats;
/// each beat adds its partial sum into the matching accumulator and the `reset_accumulator`
/// input, asserted on the last beat, clears the register *after* that beat's result is reported.
/// Because the Euclidean and cosine operations use separate registers, multi-beat jobs of the two
/// kinds (and any number of interleaved ray-box/ray-triangle beats) can be freely interspersed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccumulatorState {
    /// Running squared-Euclidean-distance sum (stage 10).
    pub euclidean: RecF32,
    /// Running dot-product sum (stage 9).
    pub angular_dot: RecF32,
    /// Running candidate-norm sum (stage 9).
    pub angular_norm: RecF32,
}

impl AccumulatorState {
    /// Creates cleared accumulators.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a Euclidean partial sum; returns the updated running value and clears the register
    /// afterwards when `reset` is set.
    pub fn accumulate_euclidean(&mut self, partial: RecF32, reset: bool) -> RecF32 {
        let updated = self.euclidean.add(partial);
        self.euclidean = if reset { RecF32::ZERO } else { updated };
        updated
    }

    /// Adds cosine partial sums; returns the updated running `(dot, norm)` values and clears both
    /// registers afterwards when `reset` is set.
    pub fn accumulate_cosine(
        &mut self,
        dot: RecF32,
        norm: RecF32,
        reset: bool,
    ) -> (RecF32, RecF32) {
        let new_dot = self.angular_dot.add(dot);
        let new_norm = self.angular_norm.add(norm);
        if reset {
            self.angular_dot = RecF32::ZERO;
            self.angular_norm = RecF32::ZERO;
        } else {
            self.angular_dot = new_dot;
            self.angular_norm = new_norm;
        }
        (new_dot, new_norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_accumulates_across_beats_and_clears_on_reset() {
        let mut acc = AccumulatorState::new();
        let a = acc.accumulate_euclidean(RecF32::from_f32(1.5), false);
        assert_eq!(a.to_f32(), 1.5);
        let b = acc.accumulate_euclidean(RecF32::from_f32(2.5), true);
        assert_eq!(b.to_f32(), 4.0);
        // The register cleared after the reset beat.
        let c = acc.accumulate_euclidean(RecF32::from_f32(1.0), false);
        assert_eq!(c.to_f32(), 1.0);
    }

    #[test]
    fn cosine_accumulators_are_independent_of_the_euclidean_one() {
        let mut acc = AccumulatorState::new();
        acc.accumulate_euclidean(RecF32::from_f32(10.0), false);
        let (dot, norm) =
            acc.accumulate_cosine(RecF32::from_f32(2.0), RecF32::from_f32(3.0), false);
        assert_eq!(dot.to_f32(), 2.0);
        assert_eq!(norm.to_f32(), 3.0);
        let (dot, norm) = acc.accumulate_cosine(RecF32::from_f32(1.0), RecF32::from_f32(1.0), true);
        assert_eq!(dot.to_f32(), 3.0);
        assert_eq!(norm.to_f32(), 4.0);
        // Cosine cleared, Euclidean untouched.
        assert_eq!(acc.angular_dot, RecF32::ZERO);
        assert_eq!(acc.euclidean.to_f32(), 10.0);
    }
}
