//! Operation codes of the datapath.

/// The operation requested of the datapath for one beat, selected per cycle by the opcode input
/// (paper §III-A: each cycle either the triangle or the box operands are valid; the extended
/// design of §V-A adds the two distance operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// Four parallel ray–box intersection tests plus the sort of the four children by their order
    /// of intersection.
    RayBox,
    /// One watertight ray–triangle intersection test.
    RayTriangle,
    /// One sixteen-lane beat of the squared-Euclidean-distance accumulation (extended design).
    Euclidean,
    /// One eight-lane beat of the cosine-distance accumulation (extended design).
    Cosine,
}

impl Opcode {
    /// All opcodes, in a stable order.
    pub const ALL: [Opcode; 4] = [
        Opcode::RayBox,
        Opcode::RayTriangle,
        Opcode::Euclidean,
        Opcode::Cosine,
    ];

    /// The two opcodes supported by the baseline datapath.
    pub const BASELINE: [Opcode; 2] = [Opcode::RayBox, Opcode::RayTriangle];

    /// Returns `true` if the opcode is only available on the extended datapath.
    #[must_use]
    pub fn requires_extended(self) -> bool {
        matches!(self, Opcode::Euclidean | Opcode::Cosine)
    }

    /// A short lowercase name used in reports (`ray-box`, `ray-triangle`, `euclidean`, `cosine`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Opcode::RayBox => "ray-box",
            Opcode::RayTriangle => "ray-triangle",
            Opcode::Euclidean => "euclidean",
            Opcode::Cosine => "cosine",
        }
    }
}

impl core::fmt::Display for Opcode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The query kinds the RT unit time-multiplexes over the datapath (§V-A): the attribution
/// vocabulary of mixed-opcode passes.
///
/// A query kind is a *workload-level* label, one step above [`Opcode`]: a closest-hit traversal
/// issues ray–box and ray–triangle beats, a candidate-collection filter issues only ray–box
/// beats, a distance scoring run issues Euclidean or cosine beats.  The datapath records
/// per-kind × per-opcode counters (see [`BeatMix`](crate::BeatMix)) when a caller attributes its
/// beats, so a fused pass mixing several kinds can be decomposed in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryKind {
    /// Closest-hit traversal: find the nearest primitive intersection along a ray.
    ClosestHit,
    /// Any-hit / shadow traversal: terminate a ray on its first accepted intersection.
    AnyHit,
    /// Distance scoring: squared-Euclidean or cosine distance of candidate vectors to a query.
    Distance,
    /// Candidate collection: BVH filter traversal gathering every leaf a query volume reaches
    /// (the hierarchy-filter phase of the RT-accelerated search systems).
    Collect,
}

impl QueryKind {
    /// All query kinds, in a stable order.
    pub const ALL: [QueryKind; 4] = [
        QueryKind::ClosestHit,
        QueryKind::AnyHit,
        QueryKind::Distance,
        QueryKind::Collect,
    ];

    /// A short lowercase name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::ClosestHit => "closest-hit",
            QueryKind::AnyHit => "any-hit",
            QueryKind::Distance => "distance",
            QueryKind::Collect => "collect",
        }
    }
}

impl core::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_opcodes_do_not_require_the_extension() {
        assert!(!Opcode::RayBox.requires_extended());
        assert!(!Opcode::RayTriangle.requires_extended());
        assert!(Opcode::Euclidean.requires_extended());
        assert!(Opcode::Cosine.requires_extended());
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::BTreeSet<_> = Opcode::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), 4);
        assert_eq!(Opcode::RayBox.to_string(), "ray-box");
    }

    #[test]
    fn query_kind_names_are_distinct() {
        let names: std::collections::BTreeSet<_> =
            QueryKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), QueryKind::ALL.len());
        assert_eq!(QueryKind::AnyHit.to_string(), "any-hit");
        assert_eq!(QueryKind::Collect.to_string(), "collect");
    }
}
