//! Operation codes of the datapath.

/// The operation requested of the datapath for one beat, selected per cycle by the opcode input
/// (paper §III-A: each cycle either the triangle or the box operands are valid; the extended
/// design of §V-A adds the two distance operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// Four parallel ray–box intersection tests plus the sort of the four children by their order
    /// of intersection.
    RayBox,
    /// One watertight ray–triangle intersection test.
    RayTriangle,
    /// One sixteen-lane beat of the squared-Euclidean-distance accumulation (extended design).
    Euclidean,
    /// One eight-lane beat of the cosine-distance accumulation (extended design).
    Cosine,
}

impl Opcode {
    /// All opcodes, in a stable order.
    pub const ALL: [Opcode; 4] = [
        Opcode::RayBox,
        Opcode::RayTriangle,
        Opcode::Euclidean,
        Opcode::Cosine,
    ];

    /// The two opcodes supported by the baseline datapath.
    pub const BASELINE: [Opcode; 2] = [Opcode::RayBox, Opcode::RayTriangle];

    /// Returns `true` if the opcode is only available on the extended datapath.
    #[must_use]
    pub fn requires_extended(self) -> bool {
        matches!(self, Opcode::Euclidean | Opcode::Cosine)
    }

    /// A short lowercase name used in reports (`ray-box`, `ray-triangle`, `euclidean`, `cosine`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Opcode::RayBox => "ray-box",
            Opcode::RayTriangle => "ray-triangle",
            Opcode::Euclidean => "euclidean",
            Opcode::Cosine => "cosine",
        }
    }
}

impl core::fmt::Display for Opcode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_opcodes_do_not_require_the_extension() {
        assert!(!Opcode::RayBox.requires_extended());
        assert!(!Opcode::RayTriangle.requires_extended());
        assert!(Opcode::Euclidean.requires_extended());
        assert!(Opcode::Cosine.requires_extended());
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::BTreeSet<_> = Opcode::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), 4);
        assert_eq!(Opcode::RayBox.to_string(), "ray-box");
    }
}
