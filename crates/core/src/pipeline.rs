//! The cycle-accurate elastic-pipeline model of the datapath.

use rayflex_hw::ActivityTrace;
use rayflex_rtl::{ElasticPipeline, SkidBuffer, TickResult};

use crate::stages::{self, FIRST_MIDDLE_STAGE, LAST_MIDDLE_STAGE, STAGE_COUNT};
use crate::{
    activity, AccumulatorState, PipelineConfig, RayFlexRequest, RayFlexResponse, SharedRayFlexData,
};

/// The fixed pipeline depth (and therefore the un-stalled latency in cycles) of the datapath:
/// eleven stages, including the two format-conversion stages (paper §III-D).
pub const PIPELINE_DEPTH: usize = STAGE_COUNT;

/// Aggregate timing statistics of a [`RayFlexPipeline`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Beats accepted at the input interface.
    pub issued: u64,
    /// Beats delivered at the output interface.
    pub completed: u64,
    /// Clock cycles simulated.
    pub cycles: u64,
    /// Stall cycles accumulated across all stages (back-pressure visibility).
    pub stall_cycles: u64,
}

/// The cycle-accurate RayFlex pipeline: eleven skid-buffer stages carrying the Shared RayFlex
/// Data Structure, with a throughput of one operation per cycle and a fixed latency of eleven
/// cycles when un-stalled.
///
/// Besides producing bit-exact results (it shares its stage logic with
/// [`RayFlexDatapath`](crate::RayFlexDatapath)), the pipeline records an [`ActivityTrace`] of
/// functional-unit operations and register writes, which the `rayflex-synth` power model consumes
/// in place of the paper's VCD stimulus files.
///
/// # Example
///
/// ```
/// use rayflex_core::{PipelineConfig, RayFlexPipeline, RayFlexRequest, PIPELINE_DEPTH};
/// use rayflex_geometry::{Aabb, Ray, Vec3};
///
/// let mut pipe = RayFlexPipeline::new(PipelineConfig::baseline_unified());
/// let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
/// let boxes = [Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)); 4];
/// let requests = vec![RayFlexRequest::ray_box(0, &ray, &boxes); 8];
/// let responses = pipe.execute_batch(&requests);
/// assert_eq!(responses.len(), 8);
/// // 8 beats at one per cycle through an 11-stage pipeline.
/// assert_eq!(pipe.stats().cycles, (PIPELINE_DEPTH + 8) as u64);
/// ```
pub struct RayFlexPipeline {
    config: PipelineConfig,
    inner: ElasticPipeline<RayFlexRequest, SharedRayFlexData, RayFlexResponse>,
    trace: ActivityTrace,
    stats: PipelineStats,
}

impl RayFlexPipeline {
    /// Builds the pipeline for a configuration.
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        let entry = SkidBuffer::from_fn("stage01-format-in", |request: &RayFlexRequest| {
            SharedRayFlexData::from_request(request)
        });
        let middle = (FIRST_MIDDLE_STAGE..=LAST_MIDDLE_STAGE)
            .map(|stage| {
                // Stages 9 and 10 own the accumulator registers of the extended design; giving
                // every stage its own (mostly unused) accumulator keeps the closure uniform.
                let mut acc = AccumulatorState::new();
                SkidBuffer::from_fn(
                    format!("stage{stage:02}"),
                    move |data: &SharedRayFlexData| {
                        stages::apply_middle_stage(stage, data, &mut acc)
                    },
                )
            })
            .collect();
        let exit = SkidBuffer::from_fn("stage11-format-out", |data: &SharedRayFlexData| {
            data.to_response()
        });
        RayFlexPipeline {
            config,
            inner: ElasticPipeline::new(entry, middle, exit),
            trace: ActivityTrace::new(),
            stats: PipelineStats::default(),
        }
    }

    /// The configuration this pipeline models.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The pipeline depth in stages (equal to the un-stalled latency in cycles).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.depth()
    }

    /// Whether a new beat can be accepted this cycle.
    #[must_use]
    pub fn input_ready(&self) -> bool {
        self.inner.input_ready()
    }

    /// Number of beats currently in flight.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.inner.occupancy()
    }

    /// The aggregate timing statistics so far.
    #[must_use]
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            stall_cycles: self.inner.total_stall_cycles(),
            ..self.stats
        }
    }

    /// The activity trace recorded so far (the power-model stimulus).
    #[must_use]
    pub fn activity(&self) -> &ActivityTrace {
        &self.trace
    }

    /// Simulates one clock cycle, offering `input` (if any) at the request interface and a
    /// consumer that is ready when `output_ready` is true.
    ///
    /// # Panics
    ///
    /// Panics if the offered beat's opcode is not supported by this configuration.
    pub fn tick(
        &mut self,
        input: Option<&RayFlexRequest>,
        output_ready: bool,
    ) -> TickResult<RayFlexResponse> {
        if let Some(request) = input {
            assert!(
                self.config.supports(request.opcode),
                "opcode {} is not supported by the {} configuration",
                request.opcode,
                self.config.name()
            );
        }
        let result = self.inner.tick(input, output_ready);
        self.stats.cycles += 1;
        self.trace.advance_cycle();
        if result.input_accepted {
            self.stats.issued += 1;
            let Some(request) = input else {
                unreachable!("accepted input implies an offered input");
            };
            activity::record_op(&mut self.trace, request.opcode, &self.config);
        }
        if result.output.is_some() {
            self.stats.completed += 1;
        }
        result
    }

    /// Feeds a batch of beats as fast as the pipeline accepts them (with an always-ready
    /// consumer), runs until every response has drained, and returns the responses in order.
    ///
    /// # Panics
    ///
    /// Panics if any beat's opcode is unsupported, or if the pipeline stops making progress.
    pub fn execute_batch(&mut self, requests: &[RayFlexRequest]) -> Vec<RayFlexResponse> {
        let mut responses = Vec::with_capacity(requests.len());
        let mut next = 0usize;
        let mut idle = 0u32;
        while responses.len() < requests.len() {
            let tick = self.tick(requests.get(next), true);
            let mut progressed = false;
            if tick.input_accepted {
                next += 1;
                progressed = true;
            }
            if let Some(response) = tick.output {
                responses.push(response);
                progressed = true;
            }
            idle = if progressed { 0 } else { idle + 1 };
            assert!(idle < 10_000, "pipeline made no progress for 10k cycles");
        }
        responses
    }
}

impl core::fmt::Debug for RayFlexPipeline {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RayFlexPipeline")
            .field("config", &self.config.name())
            .field("depth", &self.depth())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayflex_geometry::{Aabb, Ray, Triangle, Vec3};

    fn ray() -> Ray {
        Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0))
    }

    fn boxes() -> [Aabb; 4] {
        [
            Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)),
            Aabb::new(Vec3::new(-1.0, -1.0, 3.0), Vec3::new(1.0, 1.0, 4.0)),
            Aabb::new(Vec3::new(9.0, 9.0, 9.0), Vec3::new(10.0, 10.0, 10.0)),
            Aabb::new(Vec3::new(-1.0, -1.0, 6.0), Vec3::new(1.0, 1.0, 7.0)),
        ]
    }

    #[test]
    fn depth_is_eleven_stages() {
        let pipe = RayFlexPipeline::new(PipelineConfig::baseline_unified());
        assert_eq!(pipe.depth(), PIPELINE_DEPTH);
        assert_eq!(PIPELINE_DEPTH, 11);
        assert!(pipe.input_ready());
        assert_eq!(pipe.occupancy(), 0);
    }

    #[test]
    fn latency_is_fixed_at_eleven_cycles() {
        let mut pipe = RayFlexPipeline::new(PipelineConfig::baseline_unified());
        let request = RayFlexRequest::ray_box(77, &ray(), &boxes());
        let mut offered: Option<&RayFlexRequest> = Some(&request);
        let mut issue = 0u64;
        for _ in 0..20 {
            let tick = pipe.tick(offered, true);
            if tick.input_accepted {
                issue = tick.cycle;
                offered = None;
            }
            if let Some(response) = tick.output {
                assert_eq!(response.tag, 77);
                assert_eq!(tick.cycle - issue, PIPELINE_DEPTH as u64);
                return;
            }
        }
        panic!("response never emerged");
    }

    #[test]
    fn throughput_is_one_beat_per_cycle() {
        let mut pipe = RayFlexPipeline::new(PipelineConfig::baseline_unified());
        let requests: Vec<RayFlexRequest> = (0..100)
            .map(|i| RayFlexRequest::ray_box(i, &ray(), &boxes()))
            .collect();
        let responses = pipe.execute_batch(&requests);
        assert_eq!(responses.len(), 100);
        assert_eq!(pipe.stats().cycles, 100 + PIPELINE_DEPTH as u64);
        assert_eq!(pipe.stats().issued, 100);
        assert_eq!(pipe.stats().completed, 100);
        // Responses arrive in issue order with their tags intact.
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.tag, i as u64);
        }
    }

    #[test]
    fn pipelined_results_match_the_functional_model() {
        let mut pipe = RayFlexPipeline::new(PipelineConfig::extended_unified());
        let mut functional = crate::RayFlexDatapath::new(PipelineConfig::extended_unified());
        let tri = Triangle::new(
            Vec3::new(-1.0, -1.0, 3.0),
            Vec3::new(1.0, -1.0, 3.0),
            Vec3::new(0.0, 1.0, 3.0),
        );
        let requests = vec![
            RayFlexRequest::ray_box(0, &ray(), &boxes()),
            RayFlexRequest::euclidean(1, [1.0; 16], [3.0; 16], u16::MAX, false),
            RayFlexRequest::ray_triangle(2, &ray(), &tri),
            RayFlexRequest::cosine(3, [1.0; 8], [2.0; 8], u8::MAX, false),
            RayFlexRequest::euclidean(4, [0.5; 16], [0.0; 16], u16::MAX, true),
            RayFlexRequest::cosine(5, [2.0; 8], [1.0; 8], u8::MAX, true),
        ];
        let piped = pipe.execute_batch(&requests);
        let funct = functional.execute_batch(&requests);
        assert_eq!(piped, funct);
    }

    #[test]
    fn activity_is_recorded_per_issued_beat() {
        let mut pipe = RayFlexPipeline::new(PipelineConfig::baseline_unified());
        let requests: Vec<RayFlexRequest> = (0..10)
            .map(|i| RayFlexRequest::ray_box(i, &ray(), &boxes()))
            .collect();
        pipe.execute_batch(&requests);
        let trace = pipe.activity();
        assert_eq!(trace.cycles(), pipe.stats().cycles);
        // Every ray-box beat exercises the 24 stage-2 adders.
        assert_eq!(trace.fu_ops(2, rayflex_hw::FuKind::Adder), 240);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn unsupported_opcodes_are_rejected_at_the_input() {
        let mut pipe = RayFlexPipeline::new(PipelineConfig::baseline_unified());
        let request = RayFlexRequest::cosine(0, [0.0; 8], [0.0; 8], u8::MAX, false);
        let _ = pipe.tick(Some(&request), true);
    }
}
