//! Property-based tests: for *arbitrary* operands, the datapath model must agree bit-for-bit with
//! the golden software models, and its structural invariants must hold.

use proptest::prelude::*;

use rayflex_core::{PipelineConfig, RayFlexDatapath, RayFlexPipeline, RayFlexRequest};
use rayflex_geometry::{golden, Aabb, Ray, Triangle, Vec3};

/// Scene-scale coordinates (finite, non-degenerate) for geometric operands.
fn coordinate() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-1000.0f32..1000.0),
        (-1.0f32..1.0),
        Just(0.0f32),
        (-1e-3f32..1e-3),
    ]
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (coordinate(), coordinate(), coordinate()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn direction() -> impl Strategy<Value = Vec3> {
    vec3().prop_filter("non-zero direction", |v| {
        v.x != 0.0 || v.y != 0.0 || v.z != 0.0
    })
}

fn ray() -> impl Strategy<Value = Ray> {
    (vec3(), direction(), 0.0f32..10.0, 10.0f32..1e6)
        .prop_map(|(origin, dir, t_beg, t_end)| Ray::with_extent(origin, dir, t_beg, t_end))
}

fn aabb() -> impl Strategy<Value = Aabb> {
    (vec3(), vec3()).prop_map(|(a, b)| Aabb::new(a.min(b), a.max(b)))
}

fn triangle() -> impl Strategy<Value = Triangle> {
    (vec3(), vec3(), vec3()).prop_map(|(a, b, c)| Triangle::new(a, b, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn ray_box_beats_match_the_golden_model(ray in ray(), boxes in [aabb(), aabb(), aabb(), aabb()]) {
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let response = datapath.execute(&RayFlexRequest::ray_box(0, &ray, &boxes));
        let result = response.box_result.expect("box beat");
        for (i, b) in boxes.iter().enumerate() {
            let gold = golden::slab::ray_box(&ray, b);
            prop_assert_eq!(result.hit[i], gold.hit, "box {}", i);
            if gold.hit {
                prop_assert_eq!(result.t_entry[i].to_bits(), gold.t_entry.to_bits(), "box {}", i);
            }
        }
        // The traversal order is a permutation of 0..4 with hits (sorted by distance) first.
        let mut seen = [false; 4];
        for &slot in &result.traversal_order {
            prop_assert!(!seen[slot as usize]);
            seen[slot as usize] = true;
        }
        let hits_in_order: Vec<f32> = result
            .traversal_order
            .iter()
            .filter(|&&s| result.hit[s as usize])
            .map(|&s| result.t_entry[s as usize])
            .collect();
        for pair in hits_in_order.windows(2) {
            // NaN never appears for hits, so plain comparison is sound.
            prop_assert!(pair[0] <= pair[1], "hits must be sorted by entry distance");
        }
        let first_miss = result
            .traversal_order
            .iter()
            .position(|&s| !result.hit[s as usize])
            .unwrap_or(4);
        prop_assert!(
            result.traversal_order[first_miss..].iter().all(|&s| !result.hit[s as usize]),
            "no hit may follow a miss in the traversal order"
        );
    }

    #[test]
    fn ray_triangle_beats_match_the_golden_model(ray in ray(), tri in triangle()) {
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let response = datapath.execute(&RayFlexRequest::ray_triangle(0, &ray, &tri));
        let result = response.triangle_result.expect("triangle beat");
        let gold = golden::watertight::ray_triangle(&ray, &tri);
        prop_assert_eq!(result.hit, gold.hit);
        prop_assert_eq!(result.t_num.to_bits(), gold.t_num.to_bits());
        prop_assert_eq!(result.det.to_bits(), gold.det.to_bits());
        // Backface culling invariant: a reported hit always has a strictly positive determinant
        // and all barycentrics non-negative.
        if result.hit {
            prop_assert!(result.det > 0.0);
            prop_assert!(result.u >= 0.0 && result.v >= 0.0 && result.w >= 0.0);
            prop_assert!(result.t_num >= 0.0);
        }
    }

    #[test]
    fn flipping_the_winding_never_creates_a_double_hit(ray in ray(), tri in triangle()) {
        // With backface culling, at most one of the two windings of the same geometry can hit.
        let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
        let front = datapath
            .execute(&RayFlexRequest::ray_triangle(0, &ray, &tri))
            .triangle_result
            .expect("beat");
        let back = datapath
            .execute(&RayFlexRequest::ray_triangle(1, &ray, &tri.flipped()))
            .triangle_result
            .expect("beat");
        prop_assert!(!(front.hit && back.hit));
    }

    #[test]
    fn euclidean_beats_match_the_golden_reduction(
        a in prop::array::uniform16(-1000.0f32..1000.0),
        b in prop::array::uniform16(-1000.0f32..1000.0),
        mask in any::<u16>(),
    ) {
        let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let response = datapath.execute(&RayFlexRequest::euclidean(0, a, b, mask, true));
        let got = response.distance_result.expect("beat").euclidean_accumulator;
        let gold = golden::distance::euclidean_partial(&a, &b, mask);
        prop_assert_eq!(got.to_bits(), gold.to_bits());
        // A squared distance over finite inputs is never negative.
        prop_assert!(got >= 0.0);
    }

    #[test]
    fn cosine_beats_match_the_golden_reduction(
        a in prop::array::uniform8(-1000.0f32..1000.0),
        b in prop::array::uniform8(-1000.0f32..1000.0),
        mask in any::<u8>(),
    ) {
        let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let response = datapath.execute(&RayFlexRequest::cosine(0, a, b, mask, true));
        let result = response.distance_result.expect("beat");
        let gold = golden::distance::cosine_partial(&a, &b, mask);
        prop_assert_eq!(result.angular_dot_product.to_bits(), gold.dot.to_bits());
        prop_assert_eq!(result.angular_norm.to_bits(), gold.norm_sq.to_bits());
        prop_assert!(result.angular_norm >= 0.0, "a sum of squares is non-negative");
    }

    #[test]
    fn multi_beat_accumulation_is_the_sum_of_its_beats(
        beats in prop::collection::vec(
            (prop::array::uniform16(-100.0f32..100.0), prop::array::uniform16(-100.0f32..100.0)),
            1..6,
        )
    ) {
        // Streaming N beats with reset only on the last must equal accumulating the golden
        // per-beat partial sums in the same order (same rounding, same order of additions).
        let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let mut expected = 0.0f32;
        let mut last = 0.0f32;
        let count = beats.len();
        for (i, (a, b)) in beats.iter().enumerate() {
            let reset = i == count - 1;
            let response = datapath.execute(&RayFlexRequest::euclidean(i as u64, *a, *b, u16::MAX, reset));
            last = response.distance_result.expect("beat").euclidean_accumulator;
            expected += golden::distance::euclidean_partial(a, b, u16::MAX);
        }
        prop_assert_eq!(last.to_bits(), expected.to_bits());
        // The accumulator is clear again afterwards.
        let probe = datapath
            .execute(&RayFlexRequest::euclidean(99, [0.0; 16], [0.0; 16], u16::MAX, true))
            .distance_result
            .expect("beat")
            .euclidean_accumulator;
        prop_assert_eq!(probe, 0.0);
    }
}

proptest! {
    // The cycle-accurate pipeline is slower, so fewer cases suffice here.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn the_pipeline_agrees_with_the_functional_model_for_arbitrary_streams(
        seeds in prop::collection::vec(any::<u32>(), 1..24)
    ) {
        // Build a mixed request stream from the seeds (deterministic per seed value).
        let requests: Vec<RayFlexRequest> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let f = |k: u32| ((seed.wrapping_mul(2654435761).wrapping_add(k)) % 2000) as f32 / 10.0 - 100.0;
                match seed % 4 {
                    0 => {
                        let ray = Ray::new(Vec3::new(f(1), f(2), f(3)), Vec3::new(f(4), f(5), f(6) + 0.1));
                        let boxes = core::array::from_fn(|b| {
                            let c = Vec3::new(f(7 + b as u32), f(8 + b as u32), f(9 + b as u32));
                            Aabb::new(c - Vec3::splat(5.0), c + Vec3::splat(5.0))
                        });
                        RayFlexRequest::ray_box(i as u64, &ray, &boxes)
                    }
                    1 => {
                        let ray = Ray::new(Vec3::new(f(1), f(2), f(3)), Vec3::new(f(4), f(5), f(6) + 0.1));
                        let tri = Triangle::new(
                            Vec3::new(f(7), f(8), f(9)),
                            Vec3::new(f(10), f(11), f(12)),
                            Vec3::new(f(13), f(14), f(15)),
                        );
                        RayFlexRequest::ray_triangle(i as u64, &ray, &tri)
                    }
                    2 => RayFlexRequest::euclidean(
                        i as u64,
                        core::array::from_fn(|k| f(k as u32)),
                        core::array::from_fn(|k| f(k as u32 + 16)),
                        (seed >> 8) as u16,
                        seed % 3 == 0,
                    ),
                    _ => RayFlexRequest::cosine(
                        i as u64,
                        core::array::from_fn(|k| f(k as u32)),
                        core::array::from_fn(|k| f(k as u32 + 8)),
                        (seed >> 16) as u8,
                        seed % 3 == 0,
                    ),
                }
            })
            .collect();
        let mut functional = RayFlexDatapath::new(PipelineConfig::extended_unified());
        let mut pipeline = RayFlexPipeline::new(PipelineConfig::extended_unified());
        let expected = functional.execute_batch(&requests);
        let got = pipeline.execute_batch(&requests);
        prop_assert_eq!(expected, got);
        prop_assert_eq!(pipeline.stats().cycles, requests.len() as u64 + 11);
    }
}
