//! Property-based tests of the batched execution layer: for arbitrary mixed beat streams,
//! `execute_batch` (the native fast model) must match per-beat `execute` (the recoded-format
//! stage emulation) bit-for-bit on every evaluated pipeline configuration, including NaN payloads
//! of degenerate beats and the shared accumulator state of multi-beat distance jobs.

use proptest::prelude::*;

use rayflex_core::{PipelineConfig, RayFlexDatapath, RayFlexRequest, RayFlexResponse};
use rayflex_geometry::{Aabb, Ray, Triangle, Vec3};

fn coordinate() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-1000.0f32..1000.0),
        (-1.0f32..1.0),
        Just(0.0f32),
        (-1e-3f32..1e-3),
    ]
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (coordinate(), coordinate(), coordinate()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn direction() -> impl Strategy<Value = Vec3> {
    // Includes axis-aligned directions (zero components), which drive the NaN slab semantics.
    prop_oneof![
        vec3().prop_filter("non-zero direction", |v| {
            v.x != 0.0 || v.y != 0.0 || v.z != 0.0
        }),
        Just(Vec3::new(1.0, 0.0, 0.0)),
        Just(Vec3::new(0.0, 0.0, -1.0)),
    ]
}

fn ray() -> impl Strategy<Value = Ray> {
    (vec3(), direction(), 0.0f32..10.0, 10.0f32..1e6)
        .prop_map(|(origin, dir, t_beg, t_end)| Ray::with_extent(origin, dir, t_beg, t_end))
}

fn aabb() -> impl Strategy<Value = Aabb> {
    (vec3(), vec3()).prop_map(|(a, b)| Aabb::new(a.min(b), a.max(b)))
}

/// One arbitrary beat; `kind` selects the operation, downgraded for baseline configurations.
fn request() -> impl Strategy<Value = RayFlexRequest> {
    let ray_box = (ray(), [aabb(), aabb(), aabb(), aabb()])
        .prop_map(|(ray, boxes)| RayFlexRequest::ray_box(0, &ray, &boxes));
    let ray_triangle = (ray(), vec3(), vec3(), vec3())
        .prop_map(|(ray, a, b, c)| RayFlexRequest::ray_triangle(0, &ray, &Triangle::new(a, b, c)));
    let euclidean = (
        prop::array::uniform16(-1000.0f32..1000.0),
        prop::array::uniform16(-1000.0f32..1000.0),
        any::<u16>(),
        any::<bool>(),
    )
        .prop_map(|(a, b, mask, reset)| RayFlexRequest::euclidean(0, a, b, mask, reset));
    let cosine = (
        prop::array::uniform8(-1000.0f32..1000.0),
        prop::array::uniform8(-1000.0f32..1000.0),
        any::<u8>(),
        any::<bool>(),
    )
        .prop_map(|(a, b, mask, reset)| RayFlexRequest::cosine(0, a, b, mask, reset));
    prop_oneof![ray_box, ray_triangle, euclidean, cosine]
}

fn stream() -> impl Strategy<Value = Vec<RayFlexRequest>> {
    prop::collection::vec(request(), 1..32)
}

/// Retargets a stream at a configuration: beats whose opcode the configuration cannot execute
/// are replaced by ray-box beats (keeping the stream length and order interesting).
fn supported_stream(config: &PipelineConfig, stream: &[RayFlexRequest]) -> Vec<RayFlexRequest> {
    stream
        .iter()
        .enumerate()
        .map(|(i, request)| {
            let mut request = if config.supports(request.opcode) {
                request.clone()
            } else {
                RayFlexRequest::ray_box(
                    0,
                    &Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0)),
                    &[Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)); 4],
                )
            };
            request.tag = i as u64;
            request
        })
        .collect()
}

/// Bit-level equality of two responses: every floating-point field is compared on its bit
/// pattern, so NaN payloads and signed zeros count.
fn assert_bit_identical(
    expected: &RayFlexResponse,
    got: &RayFlexResponse,
    index: usize,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(expected.opcode, got.opcode, "beat {}", index);
    prop_assert_eq!(expected.tag, got.tag, "beat {}", index);
    match (&expected.box_result, &got.box_result) {
        (None, None) => {}
        (Some(e), Some(g)) => {
            prop_assert_eq!(e.hit, g.hit, "beat {}", index);
            prop_assert_eq!(e.traversal_order, g.traversal_order, "beat {}", index);
            prop_assert_eq!(
                e.t_entry.map(f32::to_bits),
                g.t_entry.map(f32::to_bits),
                "beat {}",
                index
            );
        }
        _ => prop_assert!(false, "beat {}: box_result presence mismatch", index),
    }
    match (&expected.triangle_result, &got.triangle_result) {
        (None, None) => {}
        (Some(e), Some(g)) => {
            prop_assert_eq!(e.hit, g.hit, "beat {}", index);
            prop_assert_eq!(
                [e.t_num, e.det, e.u, e.v, e.w].map(f32::to_bits),
                [g.t_num, g.det, g.u, g.v, g.w].map(f32::to_bits),
                "beat {}",
                index
            );
        }
        _ => prop_assert!(false, "beat {}: triangle_result presence mismatch", index),
    }
    match (&expected.distance_result, &got.distance_result) {
        (None, None) => {}
        (Some(e), Some(g)) => {
            prop_assert_eq!(
                [
                    e.euclidean_accumulator,
                    e.angular_dot_product,
                    e.angular_norm
                ]
                .map(f32::to_bits),
                [
                    g.euclidean_accumulator,
                    g.angular_dot_product,
                    g.angular_norm
                ]
                .map(f32::to_bits),
                "beat {}",
                index
            );
            prop_assert_eq!(e.euclidean_reset, g.euclidean_reset, "beat {}", index);
            prop_assert_eq!(e.angular_reset, g.angular_reset, "beat {}", index);
        }
        _ => prop_assert!(false, "beat {}: distance_result presence mismatch", index),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn batched_execution_matches_per_beat_execution_on_every_configuration(
        beats in stream()
    ) {
        for config in PipelineConfig::evaluated_configs() {
            let beats = supported_stream(&config, &beats);
            let mut scalar = RayFlexDatapath::new(config);
            let expected: Vec<RayFlexResponse> =
                beats.iter().map(|beat| scalar.execute(beat)).collect();
            // Every SIMD lane width must reproduce the per-beat emulation bit-for-bit: lanes = 1
            // is the plain fast path, 4 and 8 engage the lane-batched kernels (grouping ray-box
            // beats within a beat and ray-triangle beats across adjacent beats).
            for lanes in [1usize, 4, 8] {
                let mut batched = RayFlexDatapath::new(config);
                batched.set_simd_lanes(lanes);
                let got = batched.execute_batch(&beats);
                prop_assert_eq!(expected.len(), got.len());
                for (index, (e, g)) in expected.iter().zip(&got).enumerate() {
                    assert_bit_identical(e, g, index)?;
                }
                prop_assert_eq!(scalar.executed_beats(), batched.executed_beats());
                // The shared accumulator state stays bit-compatible between the two paths.
                prop_assert_eq!(scalar.accumulators(), batched.accumulators());
            }
        }
    }

    #[test]
    fn emulated_batches_agree_with_fast_batches(beats in stream()) {
        let config = PipelineConfig::extended_unified();
        let mut fast = RayFlexDatapath::new(config);
        let mut emulated = RayFlexDatapath::new(config);
        let fast_responses = fast.execute_batch(&beats);
        let emulated_responses = emulated.execute_batch_emulated(&beats);
        for (index, (e, g)) in emulated_responses.iter().zip(&fast_responses).enumerate() {
            assert_bit_identical(e, g, index)?;
        }
    }

    #[test]
    fn buffer_reuse_does_not_change_results(beats in stream()) {
        let config = PipelineConfig::extended_unified();
        let mut datapath = RayFlexDatapath::new(config);
        let expected = datapath.execute_batch(&beats);
        let mut reused = RayFlexDatapath::new(config);
        let mut buffer = Vec::new();
        // Run the same stream twice through one buffer; the second run starts from a clean
        // datapath so results must be identical to the first.
        reused.execute_batch_into(&beats, &mut buffer);
        let mut second = RayFlexDatapath::new(config);
        second.execute_batch_into(&beats, &mut buffer);
        prop_assert_eq!(expected.len(), buffer.len());
        for (index, (e, g)) in expected.iter().zip(&buffer).enumerate() {
            // Bit-level comparison: responses may legitimately contain NaN, which `PartialEq`
            // would reject even between identical runs.
            assert_bit_identical(e, g, index)?;
        }
    }
}
