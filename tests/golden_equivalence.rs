//! Cross-crate integration test: the hardware datapath (recoded-format arithmetic, stage-by-stage
//! pipeline) must match the golden software models bit-for-bit over large random sweeps — the
//! Rust equivalent of the paper's random chiseltest benches (§VI).

use rayflex::core::{PipelineConfig, RayFlexDatapath, RayFlexPipeline, RayFlexRequest};
use rayflex::geometry::golden;
use rayflex::workloads::stimulus;

const CASES: usize = 2_000;

#[test]
fn random_ray_box_beats_match_the_golden_slab_model() {
    let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
    for (case, s) in stimulus::ray_box_stimuli(101, CASES).iter().enumerate() {
        let response = datapath.execute(&RayFlexRequest::ray_box(case as u64, &s.ray, &s.boxes));
        let result = response.box_result.expect("box beat");
        for (i, aabb) in s.boxes.iter().enumerate() {
            let gold = golden::slab::ray_box(&s.ray, aabb);
            assert_eq!(result.hit[i], gold.hit, "case {case}, box {i}");
            if gold.hit {
                assert_eq!(
                    result.t_entry[i].to_bits(),
                    gold.t_entry.to_bits(),
                    "case {case}, box {i}: entry distance"
                );
            }
        }
        // The traversal order reported by the quad-sort network matches a reference sort.
        let golden_hits: [golden::slab::BoxHit; 4] =
            core::array::from_fn(|i| golden::slab::ray_box(&s.ray, &s.boxes[i]));
        assert_eq!(
            result.traversal_order,
            golden::slab::sort_boxes(&golden_hits),
            "case {case}: traversal order"
        );
    }
}

#[test]
fn random_ray_triangle_beats_match_the_golden_watertight_model() {
    let mut datapath = RayFlexDatapath::new(PipelineConfig::baseline_unified());
    for (case, s) in stimulus::ray_triangle_stimuli(202, CASES)
        .iter()
        .enumerate()
    {
        let response = datapath.execute(&RayFlexRequest::ray_triangle(
            case as u64,
            &s.ray,
            &s.triangle,
        ));
        let result = response.triangle_result.expect("triangle beat");
        let gold = golden::watertight::ray_triangle(&s.ray, &s.triangle);
        assert_eq!(result.hit, gold.hit, "case {case}");
        assert_eq!(
            result.t_num.to_bits(),
            gold.t_num.to_bits(),
            "case {case}: numerator"
        );
        assert_eq!(
            result.det.to_bits(),
            gold.det.to_bits(),
            "case {case}: determinant"
        );
        assert_eq!(result.u.to_bits(), gold.u.to_bits(), "case {case}: U");
        assert_eq!(result.v.to_bits(), gold.v.to_bits(), "case {case}: V");
        assert_eq!(result.w.to_bits(), gold.w.to_bits(), "case {case}: W");
    }
}

#[test]
fn random_distance_beats_match_the_golden_reduction_trees() {
    let mut datapath = RayFlexDatapath::new(PipelineConfig::extended_unified());
    for (case, s) in stimulus::distance_stimuli(303, CASES).iter().enumerate() {
        let response = datapath.execute(&RayFlexRequest::euclidean(
            case as u64,
            s.a,
            s.b,
            s.mask,
            true,
        ));
        let got = response
            .distance_result
            .expect("euclidean beat")
            .euclidean_accumulator;
        let gold = golden::distance::euclidean_partial(&s.a, &s.b, s.mask);
        assert_eq!(got.to_bits(), gold.to_bits(), "case {case}: euclidean");

        let a8: [f32; 8] = core::array::from_fn(|i| s.b[i]);
        let b8: [f32; 8] = core::array::from_fn(|i| s.a[i]);
        let mask8 = (s.mask >> 8) as u8;
        let response = datapath.execute(&RayFlexRequest::cosine(case as u64, a8, b8, mask8, true));
        let result = response.distance_result.expect("cosine beat");
        let gold = golden::distance::cosine_partial(&a8, &b8, mask8);
        assert_eq!(
            result.angular_dot_product.to_bits(),
            gold.dot.to_bits(),
            "case {case}: dot"
        );
        assert_eq!(
            result.angular_norm.to_bits(),
            gold.norm_sq.to_bits(),
            "case {case}: norm"
        );
    }
}

#[test]
fn the_cycle_accurate_pipeline_matches_the_functional_model_on_mixed_streams() {
    let box_stimuli = stimulus::ray_box_stimuli(404, 200);
    let tri_stimuli = stimulus::ray_triangle_stimuli(405, 200);
    let dist_stimuli = stimulus::distance_stimuli(406, 200);
    // Interleave all four opcodes into one stream, preserving multi-beat accumulator behaviour.
    let mut requests = Vec::new();
    for i in 0..200usize {
        requests.push(RayFlexRequest::ray_box(
            i as u64 * 4,
            &box_stimuli[i].ray,
            &box_stimuli[i].boxes,
        ));
        requests.push(RayFlexRequest::euclidean(
            i as u64 * 4 + 1,
            dist_stimuli[i].a,
            dist_stimuli[i].b,
            dist_stimuli[i].mask,
            dist_stimuli[i].reset,
        ));
        requests.push(RayFlexRequest::ray_triangle(
            i as u64 * 4 + 2,
            &tri_stimuli[i].ray,
            &tri_stimuli[i].triangle,
        ));
        let a8: [f32; 8] = core::array::from_fn(|k| dist_stimuli[i].a[k]);
        let b8: [f32; 8] = core::array::from_fn(|k| dist_stimuli[i].b[k]);
        requests.push(RayFlexRequest::cosine(
            i as u64 * 4 + 3,
            a8,
            b8,
            (dist_stimuli[i].mask & 0xFF) as u8,
            dist_stimuli[i].reset,
        ));
    }

    let mut functional = RayFlexDatapath::new(PipelineConfig::extended_unified());
    let mut pipelined = RayFlexPipeline::new(PipelineConfig::extended_unified());
    let expected = functional.execute_batch(&requests);
    let got = pipelined.execute_batch(&requests);
    assert_eq!(expected.len(), got.len());
    for (e, g) in expected.iter().zip(&got) {
        assert_eq!(e, g);
    }
    // Throughput stays at one beat per cycle even for the mixed stream.
    let stats = pipelined.stats();
    assert_eq!(stats.issued, requests.len() as u64);
    assert_eq!(stats.cycles, requests.len() as u64 + 11);
}
