//! End-to-end integration tests across the whole stack: scenes → BVH → traversal/RT unit →
//! datapath → results, plus the validation suite and figure harnesses exercised through the
//! public facade crate.

use rayflex::core::{validation, PipelineConfig};
use rayflex::geometry::{golden, Ray, Vec3};
use rayflex::rtunit::{
    Bvh4, Camera, ExecPolicy, FrameDesc, KnnEngine, KnnMetric, Renderer, RtUnit, Scene,
    TraceRequest, TraversalEngine,
};
use rayflex::workloads::{scenes, vectors};

#[test]
fn the_twenty_directed_cases_pass_on_every_configuration() {
    for config in PipelineConfig::evaluated_configs() {
        let report = validation::run_directed_suite(config);
        assert!(report.all_green(), "{}: {:?}", config.name(), report);
        assert_eq!(report.passed(), 20);
    }
}

#[test]
fn icosphere_traversal_matches_a_brute_force_golden_scan() {
    let triangles = scenes::icosphere(2, 3.0, Vec3::new(0.0, 0.0, 10.0));
    let world = Scene::flat(triangles.clone());
    let mut engine = TraversalEngine::baseline();
    let mut hits = 0usize;
    let rays: Vec<Ray> = (0..100)
        .map(|i| {
            let x = (i % 10) as f32 * 0.8 - 3.6;
            let y = (i / 10) as f32 * 0.8 - 3.6;
            Ray::new(Vec3::new(x, y, 0.0), Vec3::new(0.0, 0.0, 1.0))
        })
        .collect();
    let traversals = engine
        .trace(
            &TraceRequest::closest_hit(&world, &rays),
            &ExecPolicy::scalar(),
        )
        .into_closest();
    for (i, (ray, traversal)) in rays.iter().zip(traversals).enumerate() {
        // Brute force over every triangle with the golden model.
        let mut best: Option<(usize, f32)> = None;
        for (p, tri) in triangles.iter().enumerate() {
            let hit = golden::watertight::ray_triangle(ray, tri);
            if hit.hit {
                let t = hit.distance();
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((p, t));
                }
            }
        }
        match (traversal, best) {
            (None, None) => {}
            (Some(a), Some((prim, t))) => {
                hits += 1;
                assert_eq!(a.primitive, prim, "ray {i}");
                assert!((a.t - t).abs() < 1e-6, "ray {i}");
            }
            other => panic!("ray {i}: {other:?}"),
        }
    }
    assert!(
        hits > 20,
        "the ray grid should intersect the sphere many times ({hits})"
    );
    // The BVH makes the traversal cheaper than testing every triangle for every ray.
    let stats = engine.stats();
    assert!(stats.triangle_ops < (triangles.len() * 100) as u64 / 4);
}

#[test]
fn rendering_and_rt_unit_timing_work_through_the_facade() {
    let triangles = scenes::icosphere(2, 3.0, Vec3::new(0.0, 0.0, 12.0));
    let bvh = Bvh4::build(&triangles);
    let world = Scene::from_parts(bvh.clone(), triangles.clone());
    let camera = Camera::looking_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 12.0));
    let mut renderer = Renderer::new();
    let image = renderer.render(
        &world,
        &FrameDesc::primary(camera, 32, 32),
        &ExecPolicy::wavefront(),
    );
    assert!(image.coverage() > 0.1 && image.coverage() < 0.9);
    assert!(image.pixel(16, 16) > 0.0, "sphere centre must be shaded");

    let rays: Vec<Ray> = (0..64)
        .map(|i| camera.primary_ray((i % 8) * 4, (i / 8) * 4, 32, 32))
        .collect();
    let (hits, stats) = RtUnit::new().trace_rays(&bvh, &triangles, &rays);
    assert_eq!(hits.len(), 64);
    assert!(stats.cycles > 0);
    assert!(stats.ops_per_ray() >= 1.0);
}

#[test]
fn knn_results_are_consistent_between_metrics_and_reference_scans() {
    let dataset = vectors::clustered_dataset(11, 150, 20, 5, 2.0);
    let queries = vectors::queries_near_dataset(12, &dataset, 3, 0.5);
    let mut engine = KnnEngine::new();
    for query in &queries {
        let neighbors = engine.k_nearest(
            query,
            &dataset.vectors,
            10,
            KnnMetric::Euclidean,
            &ExecPolicy::wavefront(),
        );
        assert_eq!(neighbors.len(), 10);
        // Distances agree bit-exactly with the golden streaming reference.
        for n in &neighbors {
            let gold =
                golden::distance::euclidean_distance_squared(query, &dataset.vectors[n.index]);
            assert_eq!(n.distance.to_bits(), gold.to_bits());
        }
        // Monotone distances.
        for pair in neighbors.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        // Most of the ten nearest neighbours of a query drawn next to a cluster member belong to
        // that member's cluster.
        let dominant = dataset.assignments[neighbors[0].index];
        let same_cluster = neighbors
            .iter()
            .filter(|n| dataset.assignments[n.index] == dominant)
            .count();
        assert!(
            same_cluster >= 6,
            "only {same_cluster}/10 neighbours share the cluster"
        );
    }
}

#[test]
fn figure_harnesses_regenerate_through_the_bench_crate() {
    // Keep the integration-test cost modest: the full sweeps run under `cargo bench`.
    let fig7 = rayflex_bench::fig7_headline_summary();
    assert!(fig7.contains("paper +13%"));
    let report = rayflex_bench::validation_report(50);
    assert!(report.contains("all green: true"));
    let counts = rayflex_bench::random_equivalence_counts(100, 99);
    assert_eq!(counts.total_mismatches(), 0);
}

#[test]
fn ray_streams_trace_identically_across_all_frontends() {
    // The full stack through the facade: SoA packet -> wavefront + parallel policies ->
    // bit-identical hits and statistics versus the scalar reference.
    use rayflex::core::RayFlexDatapath;
    use rayflex::geometry::RayPacket;
    use rayflex::workloads::rays;

    let triangles = scenes::icosphere(2, 3.0, Vec3::new(0.0, 0.0, 10.0));
    let world = Scene::flat(triangles.clone());
    let stream = rays::camera_grid_packet(12, 12, 7.0);
    assert_eq!(stream.to_rays().len(), stream.len());
    let slice: Vec<rayflex::geometry::Ray> = stream.to_rays();
    assert_eq!(
        RayPacket::from_rays(&slice),
        stream,
        "SoA round trip is lossless"
    );

    let config = PipelineConfig::baseline_unified();
    let request = TraceRequest::closest_hit(&world, &slice);
    let mut scalar = TraversalEngine::with_config(config);
    let expected = scalar.trace(&request, &ExecPolicy::scalar()).into_closest();
    let mut wavefront = TraversalEngine::with_config(config);
    let wavefront_hits = wavefront
        .trace(&request, &ExecPolicy::wavefront())
        .into_closest();
    let mut parallel = TraversalEngine::with_config(config);
    let parallel_hits = parallel
        .trace(&request, &ExecPolicy::parallel(3))
        .into_closest();
    assert_eq!(expected, wavefront_hits);
    assert_eq!(expected, parallel_hits);
    assert_eq!(scalar.stats(), wavefront.stats());
    assert_eq!(scalar.stats(), parallel.stats());

    // The batched datapath interface matches the per-beat interface on a real beat stream.
    let requests = rayflex_bench::random_ray_box_requests(64, 5);
    let mut per_beat = RayFlexDatapath::new(config);
    let expected_responses: Vec<_> = requests.iter().map(|r| per_beat.execute(r)).collect();
    let mut batched = RayFlexDatapath::new(config);
    assert_eq!(batched.execute_batch(&requests), expected_responses);
}
